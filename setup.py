"""Package metadata for the HyperPRAW reproduction.

Editable install from a source tree::

    pip install -e .[dev]

which also installs the ``hyperpraw-repro`` console script (the CLI the
docstring of :mod:`repro.experiments.cli` advertises; ``python -m
repro.experiments.cli`` remains equivalent without installing).
"""

from pathlib import Path

from setuptools import find_namespace_packages, setup

_here = Path(__file__).parent
_readme = _here / "README.md"

setup(
    name="hyperpraw-repro",
    version="0.8.0",
    description=(
        "Reproduction of HyperPRAW: architecture-aware hypergraph "
        "restreaming partitioning (ICPP 2019), with out-of-core streaming "
        "and an HTTP partition service (hyperpraw-repro serve)"
    ),
    long_description=_readme.read_text() if _readme.exists() else "",
    long_description_content_type="text/markdown",
    # src/repro is an implicit namespace package (no __init__.py).
    packages=find_namespace_packages("src", include=["repro", "repro.*"]),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        "dev": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
        # Optional compiled pass kernel (kernel="njit"/"auto"); the
        # pure-python path is bit-identical, just interpreter speed.
        "fast": [
            "numba>=0.57",
        ],
    },
    entry_points={
        "console_scripts": [
            "hyperpraw-repro = repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Operating System :: OS Independent",
    ],
)
