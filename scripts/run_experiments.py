#!/usr/bin/env python
"""Reproducible multi-worker cluster experiments in one command.

Launches N local ``hyperpraw-repro worker`` processes on deterministic
ports with deterministically derived seeds, partitions a matrix of
(suite instance x merge payload) runs through
:class:`repro.cluster.DistributedStreamer` over real loopback sockets,
tails the workers' JSONL logs into the run directory, and writes
``meta.json`` / ``summary.json`` artifacts — so a multi-node experiment
is one command and two JSON files (docs/cluster.md).

Typical invocations::

    # CI smoke: 3 loopback workers, golden-checked vs ShardedStreamer
    python scripts/run_experiments.py --workers 3 --loopback --check-golden

    # refresh the committed benchmark baseline
    python scripts/run_experiments.py --workers 3 --loopback \
        --payloads boundary full --bench-out BENCH_CLUSTER.json

    # verify a rerun reproduces the committed numbers (same seeds ->
    # same cut; wall-time drift only warns)
    python scripts/run_experiments.py --workers 3 --loopback \
        --payloads boundary full --diff-against BENCH_CLUSTER.json

    # drive pre-started remote workers instead of launching local ones
    python scripts/run_experiments.py --hosts hostA:7311 hostB:7311

    # compare the lean v2 wire (tailored rows + zlib) against the
    # legacy v1 broadcast, authenticated, through a flaky network
    python scripts/run_experiments.py --workers 2 --loopback \
        --wire lean v1 --netem clean flaky --psk-file cluster.key

Teardown is SIGINT first (workers exit their accept loop cleanly), then
SIGKILL after a grace period — a wedged worker can never wedge the
harness.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import time
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
TESTS = REPO / "tests"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
if str(TESTS) not in sys.path:
    sys.path.insert(0, str(TESTS))  # netsim lives with the tests

import numpy as np  # noqa: E402

from netsim import NETEM_PROFILES, FaultyProxy, netem_profile  # noqa: E402
from repro.cluster import DistributedStreamer  # noqa: E402
from repro.cluster.protocol import load_psk  # noqa: E402
from repro.core.metrics import hyperedge_cut, imbalance  # noqa: E402
from repro.hypergraph.suite import STREAMING_INSTANCE, load_instance  # noqa: E402
from repro.streaming import (  # noqa: E402
    HypergraphChunkStream,
    OnePassStreamer,
    ShardedStreamer,
)
from repro.utils.rng import derive_seed  # noqa: E402

#: Schema version of BENCH_CLUSTER.json; bump on layout changes.
#: v2 added the ``wire`` (lean vs v1 legacy broadcast) and ``netem``
#: (netsim degradation profile) matrix dimensions to every record.
BENCH_SCHEMA_VERSION = 2

#: wire modes: what the coordinator puts on the socket per cell.
#: ``lean`` = tailored boundary rows + zlib frames (the v2 default);
#: ``v1``   = full-snapshot broadcast, uncompressed (the PR 6 wire).
WIRE_MODES = {
    "lean": {"tailored": True, "compress": True},
    "v1": {"tailored": False, "compress": False},
}

_LISTEN_TIMEOUT_S = 30.0
_SIGINT_GRACE_S = 5.0


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--loopback",
        action="store_true",
        help="launch --workers local worker processes and drive them "
        "over 127.0.0.1",
    )
    mode.add_argument(
        "--hosts",
        nargs="+",
        default=None,
        metavar="HOST:PORT",
        help="drive these pre-started workers instead of launching any",
    )
    parser.add_argument(
        "--workers", type=int, default=3, help="loopback worker count"
    )
    parser.add_argument(
        "--base-port",
        type=int,
        default=0,
        help="first loopback worker port (worker k binds base+k); 0 "
        "binds ephemeral ports read back from the 'listening' events",
    )
    parser.add_argument("--seed", type=int, default=20190805, help="master seed")
    parser.add_argument(
        "--instances",
        nargs="+",
        default=[STREAMING_INSTANCE],
        help="suite instances to partition",
    )
    parser.add_argument("--scale", type=float, default=0.05, help="instance scale")
    parser.add_argument("--num-parts", type=int, default=8)
    parser.add_argument("--chunk-size", type=int, default=128)
    parser.add_argument(
        "--workers-matrix",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="also matrix over these worker counts (each <= --workers; "
        "cells drive the first N fleet endpoints); default: just "
        "--workers",
    )
    parser.add_argument(
        "--payloads",
        nargs="+",
        choices=("boundary", "full"),
        default=["boundary"],
        help="merge payload modes to matrix over",
    )
    parser.add_argument(
        "--wire",
        nargs="+",
        choices=sorted(WIRE_MODES),
        default=["lean"],
        help="wire modes to matrix over: 'lean' ships tailored boundary "
        "rows in zlib frames, 'v1' reproduces the legacy uncompressed "
        "broadcast (assignments are bit-identical either way)",
    )
    parser.add_argument(
        "--netem",
        nargs="+",
        choices=sorted(NETEM_PROFILES),
        default=["clean"],
        help="netsim degradation profiles to matrix over; non-clean "
        "cells route every worker link through a tests/netsim.py "
        "FaultyProxy with that profile's latency/bandwidth shaping",
    )
    parser.add_argument(
        "--psk-file",
        default=None,
        metavar="PATH",
        help="pre-shared key file: loopback workers are launched with "
        "it and the coordinator authenticates every session",
    )
    parser.add_argument(
        "--scorer",
        choices=("eq1", "fennel"),
        default="eq1",
        help="OnePassStreamer scorer run on the workers",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="boundary restream round cap (default: streamer default)",
    )
    parser.add_argument(
        "--check-golden",
        action="store_true",
        help="also run ShardedStreamer(workers=N) on each matrix cell "
        "and require bit-identical assignments",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help="write the versioned benchmark baseline JSON here",
    )
    parser.add_argument(
        "--diff-against",
        default=None,
        metavar="PATH",
        help="compare against a committed baseline: cut/digest mismatch "
        "fails, wall-time regression only warns",
    )
    parser.add_argument(
        "--outdir",
        default=str(REPO / "logs" / "cluster"),
        help="run artifacts root (a timestamp-free, seed-keyed run dir "
        "is created inside)",
    )
    parser.add_argument(
        "--run-timeout-seconds",
        type=float,
        default=600.0,
        help="hard cap on a single matrix cell",
    )
    return parser.parse_args(argv)


def _port_free(port: int) -> bool:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            s.bind(("127.0.0.1", port))
        except OSError:
            return False
    return True


def _wait_listening(log_path: Path, proc, deadline: float) -> dict:
    """Poll a worker's JSONL log until its ``listening`` event appears."""
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"worker exited with code {proc.returncode} before "
                f"listening (see {log_path})"
            )
        if log_path.exists():
            for line in log_path.read_text().splitlines():
                event = json.loads(line)
                if event.get("event") == "listening":
                    return event
        time.sleep(0.05)
    raise RuntimeError(f"worker never reported listening (see {log_path})")


class WorkerFleet:
    """N local worker subprocesses with deterministic seeds and logs."""

    def __init__(self, args, run_dir: Path):
        self.procs = []
        self.endpoints = []
        self.records = []
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        deadline = time.monotonic() + _LISTEN_TIMEOUT_S
        for k in range(args.workers):
            port = 0 if args.base_port == 0 else args.base_port + k
            if port and not _port_free(port):
                self.shutdown()
                raise RuntimeError(f"port {port} is busy; pick another --base-port")
            worker_seed = derive_seed(args.seed, "cluster-worker", k)
            log_path = run_dir / f"worker_{k}.jsonl"
            stdout_path = run_dir / f"worker_{k}_stdout.log"
            # The run dir is seed-keyed, not timestamped, so a rerun
            # reuses it: drop stale logs or _wait_listening would read
            # a dead port from the previous fleet's 'listening' event.
            log_path.unlink(missing_ok=True)
            argv = [
                sys.executable,
                "-m",
                "repro.experiments.cli",
                "worker",
                "--port",
                str(port),
                "--seed",
                str(worker_seed),
                "--log-file",
                str(log_path),
            ]
            if args.psk_file:
                argv += ["--psk-file", str(args.psk_file)]
            proc = subprocess.Popen(
                argv,
                stdout=open(stdout_path, "w"),
                stderr=subprocess.STDOUT,
                env=env,
            )
            self.procs.append(proc)
            self.records.append(
                {"index": k, "pid": proc.pid, "seed": worker_seed,
                 "log": log_path.name}
            )
        for k, proc in enumerate(self.procs):
            event = _wait_listening(run_dir / f"worker_{k}.jsonl", proc, deadline)
            self.endpoints.append(f"127.0.0.1:{event['port']}")
            self.records[k]["port"] = event["port"]

    def shutdown(self):
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + _SIGINT_GRACE_S
        for proc in self.procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _digest(assignment: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(assignment, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


def _run_cell(args, endpoints, instance: str, payload: str, wire: str,
              netem: str, psk) -> dict:
    """One matrix cell: distributed run (+ optional golden twin)."""
    hg = load_instance(instance, scale=args.scale)
    base_kwargs = dict(scorer=args.scorer)

    def streamer_kwargs():
        kw = dict(payload=payload, chunk_size=args.chunk_size)
        if args.max_iterations is not None:
            kw["boundary_max_iterations"] = args.max_iterations
        return kw

    proxies = []
    cell_endpoints = list(endpoints)
    if netem != "clean":
        # route every worker link through a per-cell fault proxy; the
        # shaping applies to this cell only and is torn down after it
        knobs = netem_profile(netem)
        for ep in endpoints:
            host, port = ep.rsplit(":", 1)
            proxies.append(FaultyProxy((host, int(port)), **knobs))
        cell_endpoints = [f"127.0.0.1:{p.port}" for p in proxies]
    try:
        stream = HypergraphChunkStream(hg, args.chunk_size)
        streamer = DistributedStreamer(
            OnePassStreamer(**base_kwargs),
            hosts=cell_endpoints,
            timeout=args.run_timeout_seconds,
            psk=psk,
            **WIRE_MODES[wire],
            **streamer_kwargs(),
        )
        t0 = time.perf_counter()
        result = streamer.partition_stream(
            stream, args.num_parts, seed=args.seed
        )
        wall = time.perf_counter() - t0
    finally:
        for proxy in proxies:
            proxy.close()
    md = result.metadata
    saved = md.get("broadcast_bytes_saved")
    record = {
        "instance": instance,
        "scale": args.scale,
        "workers": len(endpoints),
        "payload": payload,
        "wire": wire,
        "netem": netem,
        "scorer": args.scorer,
        "num_parts": args.num_parts,
        "chunk_size": args.chunk_size,
        "seed": args.seed,
        "wall_s": round(wall, 4),
        "cut": hyperedge_cut(hg, result.assignment, args.num_parts),
        "imbalance": round(imbalance(hg, result.assignment, args.num_parts), 6),
        "wire_bytes": md.get("cluster_wire_bytes"),
        "wire_versions": md.get("cluster_wire_versions"),
        "compressed_links": md.get("cluster_compress"),
        "broadcast_bytes_saved": int(sum(saved)) if saved else 0,
        "parallel_mode": md.get("parallel_mode"),
        "degraded_shards": md.get("degraded_shards"),
        "assignment_digest": _digest(result.assignment),
    }
    if args.check_golden:
        golden_stream = HypergraphChunkStream(hg, args.chunk_size)
        golden = ShardedStreamer(
            OnePassStreamer(**base_kwargs),
            workers=len(endpoints),
            **streamer_kwargs(),
        ).partition_stream(golden_stream, args.num_parts, seed=args.seed)
        record["golden_match"] = bool(
            np.array_equal(result.assignment, golden.assignment)
        )
        record["golden_digest"] = _digest(golden.assignment)
    return record


def _bench_payload(args, records) -> dict:
    return {
        "schema": "bench-cluster",
        "version": BENCH_SCHEMA_VERSION,
        "seed": args.seed,
        "scale": args.scale,
        "num_parts": args.num_parts,
        "chunk_size": args.chunk_size,
        "scorer": args.scorer,
        "records": [
            {
                k: r[k]
                for k in (
                    "instance", "workers", "payload", "wire", "netem",
                    "wall_s", "cut", "imbalance", "wire_bytes",
                    "broadcast_bytes_saved", "assignment_digest",
                )
            }
            for r in records
        ],
    }


def _cell_key(r: dict):
    """Identity of a benchmark cell across the full matrix."""
    return (
        r["instance"],
        r["workers"],
        r["payload"],
        r.get("wire", "lean"),
        r.get("netem", "clean"),
    )


def _write_bench(path: Path, args, records) -> None:
    """Write (or merge into) the committed benchmark baseline.

    If ``path`` already holds a same-version baseline, records for the
    cells just run replace their old rows and every other row is kept —
    so the netem rows and the clean matrix can be regenerated by
    separate invocations of this script into one file.
    """
    payload = _bench_payload(args, records)
    if path.exists():
        try:
            old = json.loads(path.read_text())
        except ValueError:
            old = {}
        if (
            old.get("schema") == "bench-cluster"
            and old.get("version") == BENCH_SCHEMA_VERSION
        ):
            fresh = {_cell_key(r) for r in payload["records"]}
            payload["records"] = [
                r for r in old["records"] if _cell_key(r) not in fresh
            ] + payload["records"]
            payload["records"].sort(key=_cell_key)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _diff_against(path: Path, args, records) -> list:
    """Compare a rerun against the committed baseline.

    Determinism (cut + assignment digest) is a hard failure; wall-time
    regressions only warn — CI boxes are not benchmark boxes.
    """
    baseline = json.loads(path.read_text())
    if baseline.get("schema") != "bench-cluster":
        raise SystemExit(f"{path} is not a bench-cluster baseline")
    if baseline.get("version") != BENCH_SCHEMA_VERSION:
        warnings.warn(
            f"baseline schema v{baseline.get('version')} != "
            f"v{BENCH_SCHEMA_VERSION}; skipping diff",
            RuntimeWarning,
            stacklevel=2,
        )
        return []
    base_by_key = {_cell_key(r): r for r in baseline["records"]}
    failures = []
    for record in records:
        base = base_by_key.get(_cell_key(record))
        if base is None:
            continue
        for field in ("cut", "assignment_digest"):
            if record[field] != base[field]:
                failures.append(
                    f"{_cell_key(record)}: {field} {record[field]!r} != "
                    f"baseline {base[field]!r}"
                )
        if base["wall_s"] and record["wall_s"] > 1.5 * base["wall_s"]:
            warnings.warn(
                f"{_cell_key(record)}: wall {record['wall_s']:.3f}s > 1.5x "
                f"baseline {base['wall_s']:.3f}s",
                RuntimeWarning,
                stacklevel=2,
            )
    return failures


def main(argv=None) -> int:
    args = parse_args(argv)
    run_dir = Path(args.outdir) / (
        f"w{args.workers}_seed{args.seed}_{args.scorer}"
    )
    run_dir.mkdir(parents=True, exist_ok=True)
    t_start = time.time()

    fleet = None
    if args.loopback:
        fleet = WorkerFleet(args, run_dir)
        endpoints = fleet.endpoints
    else:
        endpoints = list(args.hosts)
    meta = {
        "argv": sys.argv[1:] if argv is None else list(argv),
        "seed": args.seed,
        "endpoints": endpoints,
        "workers": fleet.records if fleet else None,
        "python": sys.version.split()[0],
        "start_ts": t_start,
    }
    (run_dir / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")

    counts = sorted(set(args.workers_matrix or [len(endpoints)]))
    if counts[-1] > len(endpoints) or counts[0] < 1:
        raise SystemExit(
            f"--workers-matrix must be within 1..{len(endpoints)}, got {counts}"
        )
    psk = load_psk(args.psk_file) if args.psk_file else None
    records, status, failures = [], "ok", []
    cells = [
        (instance, nworkers, payload, wire, netem)
        for instance in args.instances
        for nworkers in counts
        for payload in args.payloads
        for wire in args.wire
        for netem in args.netem
    ]
    try:
        for instance, nworkers, payload, wire, netem in cells:
            record = _run_cell(
                args, endpoints[:nworkers], instance, payload, wire,
                netem, psk,
            )
            records.append(record)
            cell = (
                f"{instance} x w{nworkers} x {payload} x {wire} x {netem}"
            )
            print(
                f"[{cell}] wall={record['wall_s']}s "
                f"cut={record['cut']} wire={record['wire_bytes']}B "
                f"digest={record['assignment_digest']}"
                + (
                    f" golden_match={record['golden_match']}"
                    if "golden_match" in record
                    else ""
                )
            )
            if record.get("golden_match") is False:
                failures.append(
                    f"{cell}: assignment differs from "
                    f"ShardedStreamer golden"
                )
            if record.get("degraded_shards"):
                failures.append(
                    f"{cell}: shards "
                    f"{record['degraded_shards']} degraded to local "
                    f"— not a clean distributed measurement"
                )
        if args.diff_against:
            failures.extend(_diff_against(Path(args.diff_against), args, records))
    except Exception as exc:  # noqa: BLE001 — recorded in summary.json
        status = "error"
        failures.append(f"{type(exc).__name__}: {exc}")
        raise
    finally:
        if failures:
            status = "failed"
        meta["end_ts"] = time.time()
        meta["duration_s"] = round(meta["end_ts"] - t_start, 3)
        (run_dir / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
        summary = {"status": status, "failures": failures, "records": records}
        (run_dir / "summary.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        if fleet is not None:
            fleet.shutdown()
        print(f"artifacts: {run_dir}")

    if args.bench_out and not failures:
        _write_bench(Path(args.bench_out), args, records)
        print(f"baseline written: {args.bench_out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
