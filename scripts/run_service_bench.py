#!/usr/bin/env python
"""Record / verify the committed service-perf baseline.

Runs the HTTP traffic scenario (:func:`repro.bench.service.compare_service`)
plus the thread-vs-process pool ladder
(:func:`repro.bench.service.compare_pools`) and writes a versioned
``BENCH_SERVICE.json`` baseline — the service twin of
``BENCH_STREAMING.json`` (scripts/run_streaming_bench.py) and
``BENCH_CLUSTER.json``.

Typical invocations::

    # refresh the committed baseline (run on a quiet box)
    python scripts/run_service_bench.py --bench-out BENCH_SERVICE.json

    # verify a rerun reproduces the committed numbers: store shape +
    # assignment digest must match exactly, wall-time drift only warns
    python scripts/run_service_bench.py --diff-against BENCH_SERVICE.json

    # additionally require the process pool to beat the thread pool
    # (CI runs this only on multi-core boxes)
    python scripts/run_service_bench.py --diff-against BENCH_SERVICE.json \\
        --assert-speedup 1.3

The determinism contract: every ladder instance records its parsed
shape (vertices/edges/pins) and upload byte count, and each pool run
records a sha256 of the assignment text it served — a rerun with the
same seed must reproduce all of those bit-exactly on any box, and the
two pools must serve identical bytes to each other.  Wall-clock and rps
are only sanity-checked with 1.5x slack — CI boxes are not benchmark
boxes.  ``benchmarks/bench_service.py::test_service_baseline_diff``
runs the cheap subset of this diff in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.service import compare_pools, compare_service  # noqa: E402

#: Schema version of BENCH_SERVICE.json; bump on layout changes.
BENCH_SCHEMA_VERSION = 1

DEFAULT_INSTANCES = ("2cubes_sphere", "ABACUS_shell_hd", "sparsine")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "--instances",
        nargs="+",
        default=list(DEFAULT_INSTANCES),
        help="suite instances for the latency ladder",
    )
    parser.add_argument("--scale", type=float, default=0.05, help="instance scale")
    parser.add_argument("--num-parts", type=int, default=8)
    parser.add_argument("--partitioner", default="onepass")
    parser.add_argument("--chunk-size", type=int, default=256)
    parser.add_argument(
        "--threads", type=int, default=4, help="concurrent client threads"
    )
    parser.add_argument(
        "--requests", type=int, default=16, help="total sync replay requests"
    )
    parser.add_argument("--seed", type=int, default=20190805, help="master seed")
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help="write the versioned benchmark baseline JSON here",
    )
    parser.add_argument(
        "--diff-against",
        default=None,
        metavar="PATH",
        help="compare against a committed baseline: shape/digest mismatch "
        "fails, wall-time regression only warns",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail unless process rps >= RATIO * thread rps; skipped (with "
        "a notice) on single-core boxes or where fork is unavailable",
    )
    return parser.parse_args(argv)


def run_benches(args) -> dict:
    """Latency ladder + pool ladder; returns the two report payloads."""
    t0 = time.perf_counter()
    report = compare_service(
        tuple(args.instances),
        scale=args.scale,
        k=args.num_parts,
        partitioner=args.partitioner,
        chunk_size=args.chunk_size,
        threads=args.threads,
        requests=args.requests,
        seed=args.seed,
    )
    print(f"latency ladder in {time.perf_counter() - t0:.2f}s")
    print(report.render())

    smallest = min(report.records, key=lambda r: r.upload_bytes)
    t0 = time.perf_counter()
    ladder = compare_pools(
        smallest.instance,
        scale=args.scale,
        k=args.num_parts,
        partitioner=args.partitioner,
        chunk_size=args.chunk_size,
        threads=args.threads,
        requests=args.requests,
        seed=args.seed,
    )
    print(f"pool ladder in {time.perf_counter() - t0:.2f}s")
    print(ladder.render())

    latency = [
        {
            "instance": r.instance,
            "num_vertices": r.num_vertices,
            "num_edges": r.num_edges,
            "num_pins": r.num_pins,
            "upload_bytes": r.upload_bytes,
            "store_ingest_s": round(r.store_ingest_s, 4),
            "upload_partition_s": round(r.upload_partition_s, 4),
            "replay_partition_s": round(r.replay_partition_s, 4),
        }
        for r in report.records
    ]
    t = report.throughput
    throughput = {
        "instance": t.instance,
        "threads": t.threads,
        "requests": t.requests,
        "wall_s": round(t.wall_s, 4),
        "errors": t.errors,
        "rps": round(t.rps, 2),
    }
    pool_ladder = {
        "instance": ladder.instance,
        "runs": [
            {
                "pool": r.pool,
                "threads": r.threads,
                "requests": r.requests,
                "wall_s": round(r.wall_s, 4),
                "errors": r.errors,
                "rps": round(r.rps, 2),
                "assignment_digest": r.assignment_digest,
            }
            for r in ladder.runs
        ],
        "speedup": round(ladder.speedup, 3) if ladder.speedup else None,
    }
    return {"latency": latency, "throughput": throughput, "pool_ladder": pool_ladder}


def bench_payload(args, results) -> dict:
    return {
        "schema": "bench-service",
        "version": BENCH_SCHEMA_VERSION,
        "seed": args.seed,
        "scale": args.scale,
        "num_parts": args.num_parts,
        "partitioner": args.partitioner,
        "chunk_size": args.chunk_size,
        "threads": args.threads,
        "requests": args.requests,
        **results,
    }


def diff_against(path: Path, results) -> list:
    """Compare a rerun against the committed baseline.

    Determinism (parsed shape, upload bytes, assignment digests) is a
    hard failure; wall-time / rps regressions only warn — CI boxes are
    not benchmark boxes.
    """
    baseline = json.loads(path.read_text())
    if baseline.get("schema") != "bench-service":
        raise SystemExit(f"{path} is not a bench-service baseline")
    if baseline.get("version") != BENCH_SCHEMA_VERSION:
        warnings.warn(
            f"baseline schema v{baseline.get('version')} != "
            f"v{BENCH_SCHEMA_VERSION}; skipping diff",
            RuntimeWarning,
            stacklevel=2,
        )
        return []
    failures = []

    base_by_inst = {r["instance"]: r for r in baseline["latency"]}
    for record in results["latency"]:
        base = base_by_inst.get(record["instance"])
        if base is None:
            continue
        for field in ("num_vertices", "num_edges", "num_pins", "upload_bytes"):
            if record[field] != base[field]:
                failures.append(
                    f"{record['instance']}: {field} {record[field]!r} != "
                    f"baseline {base[field]!r}"
                )
        for field in (
            "store_ingest_s", "upload_partition_s", "replay_partition_s",
        ):
            if base[field] and record[field] > 1.5 * base[field]:
                warnings.warn(
                    f"{record['instance']}: {field} {record[field]:.3f}s > "
                    f"1.5x baseline {base[field]:.3f}s",
                    RuntimeWarning,
                    stacklevel=2,
                )

    if results["throughput"]["errors"]:
        failures.append(
            f"throughput phase had {results['throughput']['errors']} errors"
        )

    base_runs = {r["pool"]: r for r in baseline["pool_ladder"]["runs"]}
    rerun_digests = set()
    for run in results["pool_ladder"]["runs"]:
        rerun_digests.add(run["assignment_digest"])
        if run["errors"]:
            failures.append(f"pool {run['pool']}: {run['errors']} errors")
        base = base_runs.get(run["pool"])
        if base is None:
            continue
        if run["assignment_digest"] != base["assignment_digest"]:
            failures.append(
                f"pool {run['pool']}: assignment_digest "
                f"{run['assignment_digest']} != baseline "
                f"{base['assignment_digest']}"
            )
    if len(rerun_digests) > 1:
        failures.append(
            f"pools disagree on assignment bytes: {sorted(rerun_digests)}"
        )
    return failures


def check_speedup(ratio: float, results) -> "str | None":
    """--assert-speedup: only meaningful where forked jobs can use
    extra cores; single-core / no-fork boxes get a notice, not a fail."""
    cores = os.cpu_count() or 1
    speedup = results["pool_ladder"]["speedup"]
    if speedup is None:
        print("speedup assert skipped: no process-pool run (fork unavailable)")
        return None
    if cores < 2:
        print(
            f"speedup assert skipped: {cores} core(s) — the process pool "
            f"cannot beat the GIL without parallel hardware "
            f"(measured {speedup:.2f}x)"
        )
        return None
    if speedup < ratio:
        return (
            f"process/thread speedup {speedup:.2f}x < required {ratio:.2f}x "
            f"on a {cores}-core box"
        )
    print(f"speedup ok: {speedup:.2f}x >= {ratio:.2f}x on {cores} cores")
    return None


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.diff_against:
        # The diff must rerun the baseline's own matrix, not the CLI
        # defaults, or every knob change would read as a digest drift.
        baseline = json.loads(Path(args.diff_against).read_text())
        for field in (
            "seed", "scale", "num_parts", "partitioner", "chunk_size",
            "threads", "requests",
        ):
            if field in baseline:
                setattr(args, field, baseline[field])
        args.instances = [r["instance"] for r in baseline["latency"]]
    results = run_benches(args)
    failures = []
    if args.diff_against:
        failures = diff_against(Path(args.diff_against), results)
    if args.assert_speedup is not None:
        failure = check_speedup(args.assert_speedup, results)
        if failure:
            failures.append(failure)
    if args.bench_out and not failures:
        Path(args.bench_out).write_text(
            json.dumps(bench_payload(args, results), indent=2) + "\n"
        )
        print(f"baseline written: {args.bench_out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
