#!/usr/bin/env python
"""Record / verify the committed partitioner-family baseline.

Runs the family head-to-head
(:func:`repro.bench.families.compare_families`) on a matrix of suite
instances and writes a versioned ``BENCH_FAMILIES.json`` baseline — the
competitor twin of ``BENCH_STREAMING.json`` (docs/performance.md).

Typical invocations::

    # refresh the committed baseline (run on a quiet box)
    python scripts/run_families_bench.py --bench-out BENCH_FAMILIES.json

    # verify a rerun reproduces the committed numbers: cut + assignment
    # digest must match exactly, wall-time drift only warns
    python scripts/run_families_bench.py --diff-against BENCH_FAMILIES.json

Every row records the hyperedge cut, PC cost, imbalance, wall time,
peak resident pins, presence-table size and a sha256 digest of the
assignment, so the committed numbers double as a determinism contract:
a rerun with the same seed must reproduce cut and digest bit-exactly on
any box, while wall-clock is only sanity-checked with 1.5x slack — CI
boxes are not benchmark boxes.  ``benchmarks/bench_families.py::
test_families_baseline_diff`` runs the cheap subset of this diff in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench.families import compare_families  # noqa: E402
from repro.hypergraph.suite import load_instance  # noqa: E402

#: Schema version of BENCH_FAMILIES.json; bump on layout changes.
BENCH_SCHEMA_VERSION = 1

#: Default instance matrix: the quality-ladder mesh, the power-law
#: stress instance and the banded boundary-sparse shell mesh — three
#: structurally different workloads for the head-to-head.
DEFAULT_INSTANCES = ("2cubes_sphere", "sparsine", "ABACUS_shell_hd")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "--instances",
        nargs="+",
        default=list(DEFAULT_INSTANCES),
        help="suite instances to run the head-to-head on",
    )
    parser.add_argument("--scale", type=float, default=0.25, help="instance scale")
    parser.add_argument("--num-parts", type=int, default=8)
    parser.add_argument("--chunk-size", type=int, default=64)
    parser.add_argument("--max-iterations", type=int, default=20)
    parser.add_argument(
        "--refine-passes",
        type=int,
        default=4,
        help="FM polish rounds for the hyperpraw+fm row",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "njit"),
        default="python",
        help="pass-kernel mode recorded in the baseline; the committed "
        "file uses 'python' so the digests reproduce on boxes without "
        "numba",
    )
    parser.add_argument("--seed", type=int, default=20190805, help="master seed")
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help="write the versioned benchmark baseline JSON here",
    )
    parser.add_argument(
        "--diff-against",
        default=None,
        metavar="PATH",
        help="compare against a committed baseline: cut/digest mismatch "
        "fails, wall-time regression only warns",
    )
    return parser.parse_args(argv)


def run_matrix(args) -> list:
    """One compare_families table per instance; flat record list."""
    records = []
    for instance in args.instances:
        hg = load_instance(instance, scale=args.scale)
        t0 = time.perf_counter()
        report = compare_families(
            hg,
            args.num_parts,
            chunk_size=args.chunk_size,
            max_iterations=args.max_iterations,
            refine_passes=args.refine_passes,
            kernel=args.kernel,
            seed=args.seed,
        )
        print(
            f"[{instance}] head-to-head of {len(report.records)} families "
            f"in {time.perf_counter() - t0:.2f}s"
        )
        print(report.render())
        for r in report.records:
            rec = {
                "instance": instance,
                "algorithm": r.algorithm,
                "wall_s": round(r.wall_time_s, 4),
                "cut": float(r.quality.hyperedge_cut),
                "pc_cost": round(float(r.quality.pc_cost), 6),
                "imbalance": round(float(r.quality.imbalance), 6),
                "peak_resident_pins": r.peak_resident_pins,
                "peak_tracked_edges": r.peak_tracked_edges,
                "kernel_mode": r.kernel_mode,
                "assignment_digest": r.assignment_digest,
            }
            if r.refine_moves is not None:
                rec["refine_cut_before"] = float(r.refine_cut_before)
                rec["refine_cut_after"] = float(r.refine_cut_after)
                rec["refine_moves"] = int(r.refine_moves)
            records.append(rec)
    return records


def bench_payload(args, records) -> dict:
    return {
        "schema": "bench-families",
        "version": BENCH_SCHEMA_VERSION,
        "seed": args.seed,
        "scale": args.scale,
        "num_parts": args.num_parts,
        "chunk_size": args.chunk_size,
        "max_iterations": args.max_iterations,
        "refine_passes": args.refine_passes,
        "kernel": args.kernel,
        "records": records,
    }


def diff_against(path: Path, records) -> list:
    """Compare a rerun against the committed baseline.

    Determinism (cut + assignment digest) is a hard failure; wall-time
    regressions only warn — CI boxes are not benchmark boxes.
    """
    baseline = json.loads(path.read_text())
    if baseline.get("schema") != "bench-families":
        raise SystemExit(f"{path} is not a bench-families baseline")
    if baseline.get("version") != BENCH_SCHEMA_VERSION:
        warnings.warn(
            f"baseline schema v{baseline.get('version')} != "
            f"v{BENCH_SCHEMA_VERSION}; skipping diff",
            RuntimeWarning,
            stacklevel=2,
        )
        return []
    key = lambda r: (r["instance"], r["algorithm"])  # noqa: E731
    base_by_key = {key(r): r for r in baseline["records"]}
    failures = []
    for record in records:
        base = base_by_key.get(key(record))
        if base is None:
            continue
        for field in ("cut", "assignment_digest"):
            if record[field] != base[field]:
                failures.append(
                    f"{key(record)}: {field} {record[field]!r} != "
                    f"baseline {base[field]!r}"
                )
        if base["wall_s"] and record["wall_s"] > 1.5 * base["wall_s"]:
            warnings.warn(
                f"{key(record)}: wall {record['wall_s']:.3f}s > 1.5x "
                f"baseline {base['wall_s']:.3f}s",
                RuntimeWarning,
                stacklevel=2,
            )
    return failures


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.diff_against:
        # The diff must rerun the baseline's own matrix, not the CLI
        # defaults, or every knob change would read as a digest drift.
        baseline = json.loads(Path(args.diff_against).read_text())
        for field in (
            "seed", "scale", "num_parts", "chunk_size", "max_iterations",
            "refine_passes", "kernel",
        ):
            if field in baseline:
                setattr(args, field, baseline[field])
        args.instances = sorted(
            {r["instance"] for r in baseline["records"]}
        )
    records = run_matrix(args)
    failures = []
    if args.diff_against:
        failures = diff_against(Path(args.diff_against), records)
    if args.bench_out and not failures:
        Path(args.bench_out).write_text(
            json.dumps(bench_payload(args, records), indent=2) + "\n"
        )
        print(f"baseline written: {args.bench_out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
