"""Benchmarks: design-choice ablations (beyond the paper's figures).

Each sweep exercises one tunable the paper names but does not chart:
refinement factor, tempering update, the Eq. 3 threshold ambiguity,
stream order, the initial-alpha formula discrepancy, profiling noise and
the imbalance tolerance.
"""

from repro.experiments import ablations


def test_refinement_factor(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.refinement_factor_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["best_factor"] = result.best()
    print()
    print(result.render())


def test_alpha_update(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.alpha_update_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["best_update"] = result.best()
    print()
    print(result.render())


def test_presence_threshold(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.presence_threshold_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["values"] = {str(k): round(v, 1) for k, v in result.values.items()}
    print()
    print(result.render())


def test_stream_order(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.stream_order_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["best_order"] = result.best()
    print()
    print(result.render())


def test_alpha_initial(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.alpha_initial_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["best_mode"] = result.best()
    print()
    print(result.render())


def test_profiling_noise(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.profiling_noise_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["values"] = {str(k): round(v, 1) for k, v in result.values.items()}
    print()
    print(result.render())


def test_imbalance_tolerance(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: ablations.tolerance_sweep(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["values"] = {str(k): round(v, 1) for k, v in result.values.items()}
    print()
    print(result.render())
