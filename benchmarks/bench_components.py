"""Micro-benchmarks of the library's hot components.

These time the pieces a downstream user pays for repeatedly: one
restreaming pass, a full multilevel bisection, the metric kernels, the
ring profiler and a benchmark exchange simulation.  Unlike the figure
benchmarks they use multiple rounds, since each call is cheap.
"""

import numpy as np

from repro.architecture.bandwidth import archer_like_bandwidth
from repro.architecture.cost import cost_matrix_from_bandwidth, uniform_cost_matrix
from repro.architecture.profiling import RingProfiler
from repro.architecture.topology import archer_like_topology
from repro.bench.synthetic import SyntheticBenchmark
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.core.metrics import evaluate_partition
from repro.hypergraph.suite import load_instance
from repro.partitioning.multilevel import MultilevelRB
from repro.simcomm.network import LinkModel


def _machine(num_nodes=1):
    topo = archer_like_topology(num_nodes=num_nodes)
    bw, lat = archer_like_bandwidth(topo).matrices(seed=0)
    return topo, LinkModel(bw, lat), cost_matrix_from_bandwidth(bw)


def test_hyperpraw_single_pass(benchmark):
    """One full restreaming pass over the sparsine stand-in (24 parts)."""
    hg = load_instance("sparsine", scale=0.3)
    cfg = HyperPRAWConfig(max_iterations=1, record_history=False)
    partitioner = HyperPRAW.basic(cfg)
    benchmark(lambda: partitioner.partition(hg, 24))


def test_hyperpraw_full_convergence(benchmark):
    """Complete HyperPRAW-aware run to convergence (24 parts)."""
    hg = load_instance("2cubes_sphere", scale=0.3)
    _, _, cost = _machine()
    partitioner = HyperPRAW.aware(HyperPRAWConfig(max_iterations=60))
    benchmark.pedantic(
        lambda: partitioner.partition(hg, 24, cost_matrix=cost), rounds=2, iterations=1
    )


def test_multilevel_partition(benchmark):
    """Full multilevel recursive bisection into 24 parts."""
    hg = load_instance("2cubes_sphere", scale=0.3)
    benchmark.pedantic(
        lambda: MultilevelRB().partition(hg, 24, seed=0), rounds=2, iterations=1
    )


def test_metrics_kernel(benchmark):
    """All Section 5.2 metrics on one partition (the per-pass cost)."""
    hg = load_instance("sparsine", scale=0.5)
    assignment = np.arange(hg.num_vertices) % 24
    cost = uniform_cost_matrix(24)
    benchmark(lambda: evaluate_partition(hg, assignment, 24, cost))


def test_ring_profiler(benchmark):
    """Full ring-profiling sweep of a 24-rank machine."""
    _, link, _ = _machine()
    profiler = RingProfiler(link, repeats=1)
    benchmark(lambda: profiler.profile(seed=1))


def test_exchange_simulation(benchmark):
    """One synthetic-benchmark run (traffic build + blocking model)."""
    hg = load_instance("sparsine", scale=0.5)
    _, link, _ = _machine()
    bench = SyntheticBenchmark(link, timesteps=5)
    assignment = np.arange(hg.num_vertices) % 24
    benchmark(lambda: bench.run(hg, assignment, 24))
