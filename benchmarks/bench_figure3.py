"""Benchmark: regenerate Figure 3 (refinement-strategy histories).

Expected shape (paper Section 6.1): refinement 0.95 reaches the lowest
final partitioning communication cost, no-refinement the highest.
"""

from repro.experiments import figure3


def test_figure3(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: figure3.run(bench_ctx), rounds=1, iterations=1
    )
    ok = {inst: result.strategy_ordering_ok(inst) for inst in result.final_costs}
    benchmark.extra_info["paper_ordering"] = ok
    print()
    print(result.render())
