"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper via
its :mod:`repro.experiments` driver and reports the wall-clock cost of
doing so through pytest-benchmark.  The *simulated* results (speedups,
costs) are attached to the benchmark's ``extra_info`` so
``pytest benchmarks/ --benchmark-only`` both times the reproduction and
prints what it reproduced.

Benchmarks default to a reduced world (one or two simulated nodes, scaled
instances, single job) so the whole harness completes in minutes; the
``REPRO_BENCH_FULL=1`` environment variable switches to the full
4-node / scale-1.0 / 3-job configuration used for EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments.common import ExperimentContext

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_ctx() -> ExperimentContext:
    """Benchmark world: reduced by default, full with REPRO_BENCH_FULL=1."""
    if FULL:
        return ExperimentContext(num_nodes=4, scale=1.0, num_jobs=3, iterations=2)
    return ExperimentContext(
        num_nodes=2,
        scale=0.3,
        num_jobs=1,
        iterations=1,
        timesteps=5,
        max_iterations=60,
    )
