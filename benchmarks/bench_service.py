"""Benchmark: the streaming partition service over a real socket.

Runs :func:`repro.bench.service.compare_service` against an in-process
:class:`~repro.service.app.PartitionService` on an ephemeral port and
attaches the traffic figures to ``extra_info``: per-instance
upload-to-result and replay-to-result latency (the digest-reuse
speedup), and sync requests-per-second on the replay hot path with
concurrent client threads.

Reduced sizes by default (CI smoke finishes in seconds);
``REPRO_BENCH_FULL=1`` scales the ladder up and
``REPRO_BENCH_CLIENTS=N`` sets the throughput phase's client thread
count (default 4).
"""

import os

from repro.bench.service import compare_service

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "4"))


def test_service_traffic(benchmark):
    report = benchmark.pedantic(
        lambda: compare_service(
            scale=0.3 if FULL else 0.05,
            k=8,
            chunk_size=512 if FULL else 128,
            threads=CLIENTS,
            requests=64 if FULL else 16,
        ),
        rounds=1,
        iterations=1,
    )
    for record in report.records:
        benchmark.extra_info[f"upload_s[{record.instance}]"] = round(
            record.upload_partition_s, 4
        )
        benchmark.extra_info[f"replay_s[{record.instance}]"] = round(
            record.replay_partition_s, 4
        )
        benchmark.extra_info[f"reuse[{record.instance}]"] = round(
            record.replay_speedup, 2
        )
    benchmark.extra_info["rps"] = round(report.throughput.rps, 2)
    benchmark.extra_info["rps_threads"] = report.throughput.threads
    # The service must actually serve: every request completes, and the
    # digest-reuse path must never lose to re-uploading the text.
    assert report.throughput.errors == 0
    assert all(r.replay_partition_s > 0 for r in report.records)
    print()
    print(report.render())
