"""Benchmark: the streaming partition service over a real socket.

Runs :func:`repro.bench.service.compare_service` against an in-process
:class:`~repro.service.app.PartitionService` on an ephemeral port and
attaches the traffic figures to ``extra_info``: per-instance
upload-to-result and replay-to-result latency (the digest-reuse
speedup), and sync requests-per-second on the replay hot path with
concurrent client threads.

``test_pool_ladder`` runs :func:`repro.bench.service.compare_pools`
(thread pool vs process pool under the same concurrent replay load) and
asserts the bit-identity contract between the two pools; the speedup is
reported, not asserted — CI enforces the ratio separately on multi-core
boxes via ``scripts/run_service_bench.py --assert-speedup``.

``test_service_baseline_diff`` diffs the committed ``BENCH_SERVICE.json``
(written by ``scripts/run_service_bench.py --bench-out``,
docs/performance.md) against a live rerun: parsed store shapes and the
pool ladder's assignment digests must reproduce exactly, wall-clock and
rps drift only warn with 1.5x slack — CI boxes are not benchmark boxes.
The default subset reruns only the pool-ladder instance;
``REPRO_BENCH_FULL=1`` reruns the whole latency ladder.

Reduced sizes by default (CI smoke finishes in seconds);
``REPRO_BENCH_FULL=1`` scales the ladder up and
``REPRO_BENCH_CLIENTS=N`` sets the throughput phase's client thread
count (default 4).
"""

import json
import os
import warnings
from pathlib import Path

import pytest

from repro.bench.service import compare_pools, compare_service
from repro.engine.parallel import fork_available

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "4"))


def test_service_traffic(benchmark):
    report = benchmark.pedantic(
        lambda: compare_service(
            scale=0.3 if FULL else 0.05,
            k=8,
            chunk_size=512 if FULL else 128,
            threads=CLIENTS,
            requests=64 if FULL else 16,
        ),
        rounds=1,
        iterations=1,
    )
    for record in report.records:
        benchmark.extra_info[f"upload_s[{record.instance}]"] = round(
            record.upload_partition_s, 4
        )
        benchmark.extra_info[f"replay_s[{record.instance}]"] = round(
            record.replay_partition_s, 4
        )
        benchmark.extra_info[f"reuse[{record.instance}]"] = round(
            record.replay_speedup, 2
        )
    benchmark.extra_info["rps"] = round(report.throughput.rps, 2)
    benchmark.extra_info["rps_threads"] = report.throughput.threads
    # The service must actually serve: every request completes, and the
    # digest-reuse path must never lose to re-uploading the text.
    assert report.throughput.errors == 0
    assert all(r.replay_partition_s > 0 for r in report.records)
    print()
    print(report.render())


def test_pool_ladder(benchmark):
    """Thread vs process pool: identical bytes, measured throughput."""
    ladder = benchmark.pedantic(
        lambda: compare_pools(
            scale=0.3 if FULL else 0.05,
            k=8,
            chunk_size=512 if FULL else 128,
            threads=CLIENTS,
            requests=64 if FULL else 8,
        ),
        rounds=1,
        iterations=1,
    )
    for run in ladder.runs:
        benchmark.extra_info[f"rps[{run.pool}]"] = round(run.rps, 2)
        assert run.errors == 0
    if ladder.speedup is not None:
        benchmark.extra_info["pool_speedup"] = round(ladder.speedup, 2)
    # The pool is an implementation detail: same store, same seed =>
    # the same assignment bytes from every pool.  (The >=1.3x speedup
    # acceptance runs in CI via run_service_bench.py --assert-speedup,
    # gated on actual core count.)
    assert ladder.digests_match, [
        (r.pool, r.assignment_digest) for r in ladder.runs
    ]
    print()
    print(ladder.render())


def test_service_baseline_diff(benchmark):
    """BENCH_SERVICE.json must reproduce: digests exactly, wall w/ slack."""
    baseline_path = Path(__file__).resolve().parents[1] / "BENCH_SERVICE.json"
    if not baseline_path.exists():
        pytest.skip("no committed BENCH_SERVICE.json baseline")
    baseline = json.loads(baseline_path.read_text())
    assert baseline["schema"] == "bench-service"
    assert baseline["version"] == 1, "bump this check with the schema"

    ladder_instance = baseline["pool_ladder"]["instance"]
    instances = [r["instance"] for r in baseline["latency"]]
    if not FULL:
        # Cheap subset: the pool-ladder instance alone still pins the
        # cross-pool digest contract and one latency row in seconds.
        instances = [ladder_instance]
    base_by_inst = {r["instance"]: r for r in baseline["latency"]}
    base_runs = {
        r["pool"]: r for r in baseline["pool_ladder"]["runs"]
    }

    def rerun():
        report = compare_service(
            tuple(instances),
            scale=baseline["scale"],
            k=baseline["num_parts"],
            partitioner=baseline["partitioner"],
            chunk_size=baseline["chunk_size"],
            threads=baseline["threads"],
            requests=baseline["requests"],
            seed=baseline["seed"],
        )
        ladder = compare_pools(
            ladder_instance,
            scale=baseline["scale"],
            k=baseline["num_parts"],
            partitioner=baseline["partitioner"],
            chunk_size=baseline["chunk_size"],
            threads=baseline["threads"],
            requests=baseline["requests"],
            seed=baseline["seed"],
        )
        return report, ladder

    report, ladder = benchmark.pedantic(rerun, rounds=1, iterations=1)
    for record in report.records:
        base = base_by_inst[record.instance]
        # Determinism: the parsed shape and the upload bytes are a
        # function of (instance, scale, seed) only.
        assert record.num_vertices == base["num_vertices"], record.instance
        assert record.num_edges == base["num_edges"], record.instance
        assert record.num_pins == base["num_pins"], record.instance
        assert record.upload_bytes == base["upload_bytes"], record.instance
        for field, value in (
            ("store_ingest_s", record.store_ingest_s),
            ("upload_partition_s", record.upload_partition_s),
            ("replay_partition_s", record.replay_partition_s),
        ):
            benchmark.extra_info[f"{field}[{record.instance}]"] = round(
                value, 4
            )
            if base[field] and value > 1.5 * base[field]:
                warnings.warn(
                    f"{record.instance}: {field} {value:.3f}s exceeds 1.5x "
                    f"the committed baseline {base[field]:.3f}s — possible "
                    f"performance regression",
                    RuntimeWarning,
                    stacklevel=2,
                )
    assert report.throughput.errors == 0
    assert ladder.digests_match, [
        (r.pool, r.assignment_digest) for r in ladder.runs
    ]
    for run in ladder.runs:
        assert run.errors == 0, run.pool
        base = base_runs.get(run.pool)
        if base is None:
            continue
        assert run.assignment_digest == base["assignment_digest"], (
            f"pool {run.pool}: assignment digest {run.assignment_digest} "
            f"!= committed {base['assignment_digest']} — the service's "
            f"output changed; regenerate BENCH_SERVICE.json via "
            f"scripts/run_service_bench.py --bench-out if intentional"
        )
        benchmark.extra_info[f"rps[{run.pool}]"] = round(run.rps, 2)
    if fork_available() and "process" not in {r.pool for r in ladder.runs}:
        pytest.fail("fork available but the ladder has no process run")
