"""Benchmark: streamed vs in-memory partitioning (quality/memory/runtime).

Runs :func:`repro.bench.streaming.compare_streaming` on the registry's
streaming stress instance and attaches the quality gaps and the memory
figures to ``extra_info``, so ``pytest benchmarks/ --benchmark-only``
reports how much the out-of-core path costs relative to the in-memory
anchor — and how much the vectorised ``chunk_size`` hot path speeds up
the in-memory restreamer itself.
"""

import os

from repro.bench.streaming import compare_streaming
from repro.hypergraph.suite import STREAMING_INSTANCE, load_instance

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def test_streaming_comparison(benchmark, bench_ctx):
    scale = 1.0 if FULL else 0.05
    hg = load_instance(STREAMING_INSTANCE, scale=scale)
    job = bench_ctx.one_job()
    report = benchmark.pedantic(
        lambda: compare_streaming(
            hg,
            bench_ctx.num_parts,
            cost_matrix=job.cost_matrix,
            chunk_size=512 if FULL else 128,
            max_iterations=bench_ctx.max_iterations,
            seed=bench_ctx.seed,
        ),
        rounds=1,
        iterations=1,
    )
    anchor = report.records[0]
    benchmark.extra_info["instance_pins"] = report.num_pins
    benchmark.extra_info["inmemory_wall_s"] = round(anchor.wall_time_s, 4)
    for record in report.records[1:]:
        key = record.algorithm.replace(" ", "")
        benchmark.extra_info[f"gap[{key}]"] = round(record.quality_gap, 4)
    chunked = report.records[1]
    benchmark.extra_info["chunked_speedup"] = round(
        anchor.wall_time_s / chunked.wall_time_s, 2
    )
    print()
    print(report.render())
