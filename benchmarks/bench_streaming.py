"""Benchmark: streamed vs in-memory partitioning (quality/memory/runtime).

Runs :func:`repro.bench.streaming.compare_streaming` on the registry's
streaming stress instance and attaches the quality gaps and the memory
figures to ``extra_info``, so ``pytest benchmarks/ --benchmark-only``
reports how much the out-of-core path costs relative to the in-memory
anchor — and how much the vectorised ``chunk_size`` hot path speeds up
the in-memory restreamer itself.

``test_ingest_vs_replay`` runs the chunk-store ladder
(:func:`repro.bench.streaming.compare_replay`) on the same instance and
asserts the acceptance criterion for the persistent binary chunk store:
a memory-mapped store replay must beat re-ingesting the text file by at
least 3x (in practice it is orders of magnitude — replay is page faults,
re-ingest is a full parse).

``test_sharded_scaling`` runs the parallel sharded streaming ladder
(:func:`repro.bench.streaming.compare_sharded`).  The worker counts come
from ``REPRO_BENCH_WORKERS`` (comma-separated, default ``1,2,4``), so CI
can exercise the multiprocessing path cheaply with ``1,2`` while a
dedicated box measures the full ladder.  Meaningful speedup needs real
cores: on a single-CPU machine expect ~1.0x (fork overhead included),
which is why the scaling assertion lives in the bench report, not in a
hard test.

``test_sharded_boundary_payload`` is the acceptance scenario for the v2
boundary-only merge payloads: on a *boundary-sparse* instance (the
banded ``ABACUS_shell_hd`` mesh — most nets live entirely inside one
shard's contiguous vertex range) shipping only locally detected boundary
rows must cut the merge payload at least 2x against full-table shipping,
at identical assignments.

``test_cluster_baseline_diff`` diffs the committed ``BENCH_CLUSTER.json``
(written by ``scripts/run_experiments.py --bench-out``, docs/cluster.md)
against a live rerun: the distributed loopback contract makes
``ShardedStreamer(workers=N)`` bit-identical to the cluster runs that
produced the baseline, so cut and assignment digest must reproduce
exactly without opening a socket.  Wall-clock drift only *warns* — CI
boxes are not benchmark boxes — but determinism drift fails, so the
committed numbers can never silently go stale.  The default subset keeps
the check cheap; ``REPRO_BENCH_FULL=1`` reruns every baseline record.
The same test gates the lean wire: on every clean multi-worker cell
benchmarked under both wire modes, the tailored+compressed v2 frames
must put >= 2x fewer bytes on the socket than the legacy v1 broadcast.

``test_streaming_baseline_diff`` is the same contract for the committed
``BENCH_STREAMING.json`` (written by ``scripts/run_streaming_bench.py
--bench-out``, docs/performance.md): every ladder row's cut and
assignment digest must reproduce exactly, wall drift warns with 1.5x
slack.  The default subset reruns one instance's ladder;
``REPRO_BENCH_FULL=1`` reruns them all.
"""

import hashlib
import json
import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.bench.streaming import (
    compare_replay,
    compare_sharded,
    compare_streaming,
)
from repro.hypergraph.suite import STREAMING_INSTANCE, load_instance

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
WORKERS = tuple(
    int(w)
    for w in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4").split(",")
    if w.strip()
)


def test_streaming_comparison(benchmark, bench_ctx):
    scale = 1.0 if FULL else 0.05
    hg = load_instance(STREAMING_INSTANCE, scale=scale)
    job = bench_ctx.one_job()
    report = benchmark.pedantic(
        lambda: compare_streaming(
            hg,
            bench_ctx.num_parts,
            cost_matrix=job.cost_matrix,
            chunk_size=512 if FULL else 128,
            max_iterations=bench_ctx.max_iterations,
            seed=bench_ctx.seed,
        ),
        rounds=1,
        iterations=1,
    )
    anchor = report.records[0]
    benchmark.extra_info["instance_pins"] = report.num_pins
    benchmark.extra_info["inmemory_wall_s"] = round(anchor.wall_time_s, 4)
    for record in report.records[1:]:
        key = record.algorithm.replace(" ", "")
        benchmark.extra_info[f"gap[{key}]"] = round(record.quality_gap, 4)
    chunked = report.records[1]
    benchmark.extra_info["chunked_speedup"] = round(
        anchor.wall_time_s / chunked.wall_time_s, 2
    )
    print()
    print(report.render())


def test_ingest_vs_replay(benchmark, bench_ctx):
    scale = 1.0 if FULL else 0.05
    hg = load_instance(STREAMING_INSTANCE, scale=scale)
    report = benchmark.pedantic(
        lambda: compare_replay(hg, chunk_size=512 if FULL else 128),
        rounds=1,
        iterations=1,
    )
    for record in report.records:
        benchmark.extra_info[f"wall_s[{record.step}]"] = round(
            record.wall_time_s, 5
        )
    benchmark.extra_info["replay_speedup"] = round(report.replay_speedup, 1)
    benchmark.extra_info["store_bytes"] = report.store_bytes
    # The acceptance criterion for the persistent chunk store: replaying
    # the binary store must beat re-parsing the text file by >= 3x.
    assert report.replay_speedup >= 3.0
    print()
    print(report.render())


def test_sharded_scaling(benchmark, bench_ctx):
    scale = 1.0 if FULL else 0.05
    hg = load_instance(STREAMING_INSTANCE, scale=scale)
    job = bench_ctx.one_job()
    report = benchmark.pedantic(
        lambda: compare_sharded(
            hg,
            bench_ctx.num_parts,
            workers=WORKERS,
            cost_matrix=job.cost_matrix,
            chunk_size=512 if FULL else 128,
            max_iterations=bench_ctx.max_iterations,
            seed=bench_ctx.seed,
        ),
        rounds=1,
        iterations=1,
    )
    for record in report.records:
        benchmark.extra_info[f"speedup[w={record.workers}]"] = round(
            record.speedup, 2
        )
        benchmark.extra_info[f"cut_drift[w={record.workers}]"] = round(
            record.cut_drift, 4
        )
        benchmark.extra_info[f"payload_B[w={record.workers}]"] = (
            record.merge_payload_bytes
        )
        if record.pin_skew is not None:
            benchmark.extra_info[f"pin_skew[w={record.workers}]"] = round(
                record.pin_skew, 3
            )
        # sanity, not scaling: every worker count must produce a full,
        # boundary-repaired assignment within the balance tolerance
        assert record.quality.imbalance <= 1.25 + 1e-9
        assert abs(record.cut_drift) <= 0.05
    print()
    print(report.render())


def test_sharded_boundary_payload(benchmark, bench_ctx):
    """Boundary-only payloads on a boundary-sparse instance: >= 2x less."""
    scale = 1.0 if FULL else 0.3
    hg = load_instance("ABACUS_shell_hd", scale=scale)
    w = max(2, max(WORKERS))
    report = benchmark.pedantic(
        lambda: compare_sharded(
            hg,
            bench_ctx.num_parts,
            workers=(w,),
            chunk_size=512 if FULL else 64,
            max_iterations=bench_ctx.max_iterations,
            seed=bench_ctx.seed,
        ),
        rounds=1,
        iterations=1,
    )
    record = report.record(w)
    benchmark.extra_info["merge_payload_bytes"] = record.merge_payload_bytes
    benchmark.extra_info["full_payload_bytes"] = record.full_payload_bytes
    benchmark.extra_info["payload_reduction"] = round(
        record.payload_reduction, 2
    )
    if record.pin_skew is not None:
        benchmark.extra_info["pin_skew"] = round(record.pin_skew, 3)
    # Acceptance: boundary-only merge payloads beat full-table shipping
    # by >= 2x where the shard structure leaves most nets interior.
    assert record.payload_reduction >= 2.0
    print()
    print(report.render())


def test_cluster_baseline_diff(benchmark):
    """BENCH_CLUSTER.json must reproduce: digest exactly, wall with slack."""
    from repro.core.metrics import hyperedge_cut
    from repro.streaming import (
        HypergraphChunkStream,
        OnePassStreamer,
        ShardedStreamer,
    )

    baseline_path = Path(__file__).resolve().parents[1] / "BENCH_CLUSTER.json"
    if not baseline_path.exists():
        pytest.skip("no committed BENCH_CLUSTER.json baseline")
    baseline = json.loads(baseline_path.read_text())
    assert baseline["schema"] == "bench-cluster"
    assert baseline["version"] == 2, "bump this check with the schema"

    # The lean-wire acceptance gate: tailored rows + zlib frames must
    # cut the bytes on the wire at least 2x against the legacy v1
    # broadcast on every multi-worker clean cell where both were
    # benchmarked (the assignments are bit-identical by contract, so
    # this is pure wire savings, not an algorithm change).
    by_cell = {
        (r["instance"], r["workers"], r["payload"], r.get("wire", "lean")): r
        for r in baseline["records"]
        if r.get("netem", "clean") == "clean"
    }
    lean_vs_v1 = [
        (key, lean, by_cell[key[:3] + ("v1",)])
        for key, lean in by_cell.items()
        if key[3] == "lean" and key[1] >= 2 and key[:3] + ("v1",) in by_cell
    ]
    for key, lean, legacy in lean_vs_v1:
        ratio = legacy["wire_bytes"] / max(1, lean["wire_bytes"])
        benchmark.extra_info[f"wire_ratio[{key[0]} x w{key[1]}]"] = round(
            ratio, 2
        )
        assert ratio >= 2.0, (
            f"{key[:3]}: lean wire {lean['wire_bytes']}B is only "
            f"{ratio:.2f}x smaller than the v1 broadcast "
            f"{legacy['wire_bytes']}B — the tailored+compressed wire "
            f"must stay >= 2x leaner"
        )

    records = [
        r
        for r in baseline["records"]
        if r["payload"] == "boundary"
        and r.get("wire", "lean") == "lean"
        and r.get("netem", "clean") == "clean"
    ]
    if not FULL:
        # Cheap subset: the boundary-sparse mesh at every worker count
        # plus the power-law instance sequentially — still covers both
        # instances and the worker dimension in a few seconds.
        records = [
            r
            for r in records
            if r["instance"] != STREAMING_INSTANCE or r["workers"] == 1
        ]
    assert records, "baseline has no boundary-payload records"

    def rerun():
        out = []
        for rec in records:
            hg = load_instance(rec["instance"], scale=baseline["scale"])
            stream = HypergraphChunkStream(hg, baseline["chunk_size"])
            result = ShardedStreamer(
                OnePassStreamer(scorer=baseline["scorer"]),
                workers=rec["workers"],
                chunk_size=baseline["chunk_size"],
                payload=rec["payload"],
            ).partition_stream(
                stream, baseline["num_parts"], seed=baseline["seed"]
            )
            digest = hashlib.sha256(
                np.ascontiguousarray(
                    result.assignment, dtype=np.int64
                ).tobytes()
            ).hexdigest()[:16]
            cut = hyperedge_cut(
                hg, result.assignment, baseline["num_parts"]
            )
            out.append((rec, digest, cut, result.metadata.get("wall_time_s")))
        return out

    reruns = benchmark.pedantic(rerun, rounds=1, iterations=1)
    for rec, digest, cut, wall in reruns:
        cell = f"{rec['instance']} x w{rec['workers']}"
        assert digest == rec["assignment_digest"], (
            f"{cell}: assignment digest {digest} != committed "
            f"{rec['assignment_digest']} — the partitioner's output "
            f"changed; regenerate BENCH_CLUSTER.json via "
            f"scripts/run_experiments.py --bench-out if intentional"
        )
        assert cut == rec["cut"], f"{cell}: cut {cut} != committed {rec['cut']}"
        benchmark.extra_info[f"wall_s[{cell}]"] = round(wall, 4) if wall else wall
        if wall and wall > 1.5 * rec["wall_s"]:
            warnings.warn(
                f"{cell}: local rerun wall {wall:.3f}s exceeds 1.5x the "
                f"committed distributed baseline {rec['wall_s']:.3f}s — "
                f"possible performance regression",
                RuntimeWarning,
                stacklevel=2,
            )


def test_streaming_baseline_diff(benchmark):
    """BENCH_STREAMING.json must reproduce: digest exactly, wall w/ slack."""
    baseline_path = Path(__file__).resolve().parents[1] / "BENCH_STREAMING.json"
    if not baseline_path.exists():
        pytest.skip("no committed BENCH_STREAMING.json baseline")
    baseline = json.loads(baseline_path.read_text())
    assert baseline["schema"] == "bench-streaming"
    assert baseline["version"] == 1, "bump this check with the schema"

    instances = sorted({r["instance"] for r in baseline["records"]})
    if not FULL:
        # Cheap subset: one full ladder still exercises every contender
        # (in-memory, chunked, onepass, buffered vertex + chunk-restream)
        # in a couple of seconds.
        instances = instances[:1]
    by_key = {
        (r["instance"], r["algorithm"]): r for r in baseline["records"]
    }

    def rerun():
        out = []
        for instance in instances:
            hg = load_instance(instance, scale=baseline["scale"])
            report = compare_streaming(
                hg,
                baseline["num_parts"],
                chunk_size=baseline["chunk_size"],
                buffer_fractions=tuple(baseline["buffer_fractions"]),
                max_iterations=baseline["max_iterations"],
                kernel=baseline["kernel"],
                seed=baseline["seed"],
            )
            for record in report.records:
                out.append((instance, record))
        return out

    reruns = benchmark.pedantic(rerun, rounds=1, iterations=1)
    for instance, record in reruns:
        rec = by_key.get((instance, record.algorithm))
        assert rec is not None, (
            f"{instance}: ladder row {record.algorithm!r} missing from the "
            f"baseline — regenerate BENCH_STREAMING.json via "
            f"scripts/run_streaming_bench.py --bench-out"
        )
        cell = f"{instance} x {record.algorithm}"
        assert record.assignment_digest == rec["assignment_digest"], (
            f"{cell}: assignment digest {record.assignment_digest} != "
            f"committed {rec['assignment_digest']} — the partitioner's "
            f"output changed; regenerate BENCH_STREAMING.json via "
            f"scripts/run_streaming_bench.py --bench-out if intentional"
        )
        assert record.quality.hyperedge_cut == rec["cut"], (
            f"{cell}: cut {record.quality.hyperedge_cut} != committed "
            f"{rec['cut']}"
        )
        benchmark.extra_info[f"wall_s[{cell}]"] = round(record.wall_time_s, 4)
        if rec["wall_s"] and record.wall_time_s > 1.5 * rec["wall_s"]:
            warnings.warn(
                f"{cell}: local rerun wall {record.wall_time_s:.3f}s "
                f"exceeds 1.5x the committed baseline {rec['wall_s']:.3f}s "
                f"— possible performance regression",
                RuntimeWarning,
                stacklevel=2,
            )
