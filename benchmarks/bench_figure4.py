"""Benchmark: regenerate Figure 4 (cut / SOED / PC-cost quality panels).

Expected shape: hyperedge cut comparable across algorithms, PC cost best
for hyperpraw-aware on (nearly) every instance.
"""

from repro.experiments import figure4


def test_figure4(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: figure4.run(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["aware_wins_pc_everywhere"] = result.aware_wins_pc_everywhere()
    print()
    print(result.render())
