"""Benchmark: regenerate Table 1 (suite construction + statistics)."""

from repro.experiments import table1


def test_table1(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: table1.run(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["instances"] = len(result.stats)
    benchmark.extra_info["total_pins"] = int(sum(s.num_pins for s in result.stats))
    print()
    print(result.render())
