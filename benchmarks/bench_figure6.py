"""Benchmark: regenerate Figure 6 (traffic vs bandwidth alignment).

Expected shape: only hyperpraw-aware's traffic correlates positively with
the machine's bandwidth matrix (Figure 6D); the blind partitioners show
uniformly random patterns (6B, 6C).
"""

from repro.experiments import figure6


def test_figure6(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: figure6.run(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["affinities"] = {
        k: round(v, 4) for k, v in result.affinities.items()
    }
    benchmark.extra_info["aware_most_aligned"] = result.aware_most_aligned()
    print()
    print(result.render(max_size=32))
