"""Benchmark: the partitioner-family head-to-head and its baseline diff.

``test_families_comparison`` runs
:func:`repro.bench.families.compare_families` on the streaming stress
instance and attaches every family's cut, imbalance and resident-pin
figures to ``extra_info``; it also asserts the acceptance criterion for
the FM polish stage: ``hyperpraw+fm`` may never *worsen* the anchor's
hyperedge cut, and must stay inside the refinement balance cap.

``test_families_baseline_diff`` is the determinism contract for the
committed ``BENCH_FAMILIES.json`` (written by
``scripts/run_families_bench.py --bench-out``, docs/performance.md):
every row's cut and assignment digest must reproduce exactly, wall-time
drift only warns with 1.5x slack — CI boxes are not benchmark boxes.
The default subset reruns one instance's table; ``REPRO_BENCH_FULL=1``
reruns them all.
"""

import json
import os
import warnings
from pathlib import Path

import pytest

from repro.bench.families import compare_families
from repro.hypergraph.suite import STREAMING_INSTANCE, load_instance

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def test_families_comparison(benchmark, bench_ctx):
    scale = 1.0 if FULL else 0.05
    hg = load_instance(STREAMING_INSTANCE, scale=scale)
    report = benchmark.pedantic(
        lambda: compare_families(
            hg,
            bench_ctx.num_parts,
            chunk_size=512 if FULL else 128,
            max_iterations=bench_ctx.max_iterations,
            seed=bench_ctx.seed,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["instance_pins"] = report.num_pins
    for record in report.records:
        key = record.algorithm.replace(" ", "")
        benchmark.extra_info[f"cut[{key}]"] = float(
            record.quality.hyperedge_cut
        )
        benchmark.extra_info[f"imbalance[{key}]"] = round(
            float(record.quality.imbalance), 4
        )
        if record.peak_resident_pins is not None:
            benchmark.extra_info[f"resident_pins[{key}]"] = (
                record.peak_resident_pins
            )
    anchor = report.record("hyperpraw")
    polished = report.record("hyperpraw+fm")
    # Acceptance for the polish stage: strictly never worse than the
    # anchor on cut, and within the refinement balance cap.
    assert polished.quality.hyperedge_cut <= anchor.quality.hyperedge_cut
    assert polished.quality.imbalance <= 1.1 + 1e-9
    print()
    print(report.render())


def test_families_baseline_diff(benchmark):
    """BENCH_FAMILIES.json must reproduce: digest exactly, wall w/ slack."""
    baseline_path = Path(__file__).resolve().parents[1] / "BENCH_FAMILIES.json"
    if not baseline_path.exists():
        pytest.skip("no committed BENCH_FAMILIES.json baseline")
    baseline = json.loads(baseline_path.read_text())
    assert baseline["schema"] == "bench-families"
    assert baseline["version"] == 1, "bump this check with the schema"

    instances = sorted({r["instance"] for r in baseline["records"]})
    if not FULL:
        # Cheap subset: one full table still exercises every family
        # (anchor, polish, onepass, hype, minmax x2) in a few seconds.
        instances = instances[:1]
    by_key = {
        (r["instance"], r["algorithm"]): r for r in baseline["records"]
    }

    def rerun():
        out = []
        for instance in instances:
            hg = load_instance(instance, scale=baseline["scale"])
            report = compare_families(
                hg,
                baseline["num_parts"],
                chunk_size=baseline["chunk_size"],
                max_iterations=baseline["max_iterations"],
                refine_passes=baseline["refine_passes"],
                kernel=baseline["kernel"],
                seed=baseline["seed"],
            )
            for record in report.records:
                out.append((instance, record))
        return out

    reruns = benchmark.pedantic(rerun, rounds=1, iterations=1)
    for instance, record in reruns:
        rec = by_key.get((instance, record.algorithm))
        assert rec is not None, (
            f"{instance}: row {record.algorithm!r} missing from the "
            f"baseline — regenerate BENCH_FAMILIES.json via "
            f"scripts/run_families_bench.py --bench-out"
        )
        cell = f"{instance} x {record.algorithm}"
        assert record.assignment_digest == rec["assignment_digest"], (
            f"{cell}: assignment digest {record.assignment_digest} != "
            f"committed {rec['assignment_digest']} — the partitioner's "
            f"output changed; regenerate BENCH_FAMILIES.json via "
            f"scripts/run_families_bench.py --bench-out if intentional"
        )
        assert record.quality.hyperedge_cut == rec["cut"], (
            f"{cell}: cut {record.quality.hyperedge_cut} != committed "
            f"{rec['cut']}"
        )
        benchmark.extra_info[f"wall_s[{cell}]"] = round(record.wall_time_s, 4)
        if rec["wall_s"] and record.wall_time_s > 1.5 * rec["wall_s"]:
            warnings.warn(
                f"{cell}: local rerun wall {record.wall_time_s:.3f}s "
                f"exceeds 1.5x the committed baseline {rec['wall_s']:.3f}s "
                f"— possible performance regression",
                RuntimeWarning,
                stacklevel=2,
            )
