"""Benchmark: regenerate Figure 5 (synthetic-benchmark runtimes + speedups).

The headline result: hyperpraw-aware is the fastest configuration, with
speedups over the multilevel baseline spanning roughly 1.1x-2.5x on the
default simulated 96-core machine (the paper reports 1.3x-14x on 576 real
ARCHER cores; the reduced machine compresses the heterogeneity headroom).
"""

from repro.experiments import figure5


def test_figure5(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: figure5.run(bench_ctx), rounds=1, iterations=1
    )
    lo, hi = result.aware_speedup_range()
    benchmark.extra_info["aware_speedup_min"] = round(lo, 3)
    benchmark.extra_info["aware_speedup_max"] = round(hi, 3)
    benchmark.extra_info["simulations"] = len(result.records)
    print()
    print(result.render())
