"""Benchmark: regenerate Figure 1 (profiled bandwidth vs naive traffic)."""

from repro.experiments import figure1


def test_figure1(benchmark, bench_ctx):
    result = benchmark.pedantic(
        lambda: figure1.run(bench_ctx), rounds=1, iterations=1
    )
    benchmark.extra_info["traffic_bandwidth_corr"] = round(result.affinity, 4)
    print()
    print(result.render(max_size=32))
