"""Persistent binary chunk store: ingest once, restream many times.

The text parsers dominate out-of-core ingest time, and HyperPRAW's whole
premise is *restreaming* — the partitioner walks the vertex stream many
times — yet the spill files of :mod:`repro.streaming.reader` are
run-private temp files rebuilt from text on every invocation.  This
module makes the on-disk representation of the stream a first-class,
persistent artefact (the design axis Taşyaran et al. and HYPE treat
explicitly):

* :func:`write_store` serialises any
  :class:`~repro.streaming.reader.ChunkStream` into a directory holding
  one flat binary data file of raw little-endian numpy CSR arrays — per
  chunk, the ``starts`` pointer array and the ``edge_ids`` incidence
  array, plus the global weight vectors — described by a JSON manifest
  (format version, source digest, chunking parameters, per-chunk byte
  offsets).  ``ChunkStream.save(path)`` is sugar for it.
* :class:`ChunkStoreStream` replays a store through **memory-mapped
  zero-copy reads**: every chunk yielded is a set of array views into
  one ``np.memmap`` of the data file, so a restream pass costs page
  faults instead of text parsing, and forked sharded workers each map
  the store directly for their ``iter_range`` with no pickling and no
  re-ingest.
* :func:`cached_stream` is the convert-once contract behind the CLI's
  ``--cache``: open the store if its recorded source digest and chunking
  parameters match, otherwise ingest from text and materialise it.

Format invariants (spec in ``docs/formats.md``): all integers are
``<i8`` (little-endian int64), all weights ``<f8``; a store whose
manifest version is unknown or whose data file does not match the
manifest's recorded byte count is rejected with :class:`ChunkStoreError`
rather than silently misread.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.hypergraph.io import HypergraphFormatError
from repro.streaming.reader import ChunkStream, VertexChunk

__all__ = [
    "CHUNKSTORE_VERSION",
    "MANIFEST_NAME",
    "DATA_NAME",
    "ChunkStoreError",
    "ChunkStoreStream",
    "write_store",
    "open_store",
    "source_digest",
    "store_dir_for",
    "cached_stream",
]

#: Current (and only) chunk-store format version.  Readers reject any
#: other value: the format carries no compatibility shims, so a version
#: bump means "re-convert from source".
CHUNKSTORE_VERSION = 1

#: Marker distinguishing our manifests from arbitrary JSON files.
FORMAT_MARKER = "hyperpraw-chunkstore"

MANIFEST_NAME = "manifest.json"
DATA_NAME = "chunks.bin"

_INT = np.dtype("<i8")
_FLOAT = np.dtype("<f8")


class ChunkStoreError(HypergraphFormatError):
    """A chunk store is missing, corrupt, truncated or incompatible."""


def source_digest(path: "str | Path") -> str:
    """SHA-256 digest (``"sha256:..."``) of a source file's bytes.

    Parameters
    ----------
    path:
        the file to digest (streamed in 1 MiB blocks, so arbitrarily
        large sources never load whole).

    Returns
    -------
    str
        ``"sha256:<hex>"`` — the form stored in store manifests and
        compared by :func:`open_store`/:func:`cached_stream`.
    """
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return f"sha256:{h.hexdigest()}"


def _stat_record(path: "str | Path") -> dict:
    """``{size, mtime_ns}`` of ``path`` — the cheap freshness fingerprint."""
    st = Path(path).stat()
    return {"size": st.st_size, "mtime_ns": st.st_mtime_ns}


def store_dir_for(path: "str | Path", cache_dir: "str | Path") -> Path:
    """The per-source store directory :func:`cached_stream` uses.

    Keyed by basename *plus* a hash of the absolute source path, so two
    different files that share a name never thrash one cache slot.
    """
    path = Path(path).expanduser()
    tag = hashlib.sha256(str(path.resolve()).encode()).hexdigest()[:12]
    return Path(cache_dir).expanduser() / f"{path.name}.{tag}.chunkstore"


def write_store(
    stream: ChunkStream,
    path: "str | Path",
    *,
    source_path: "str | Path | None" = None,
    digest: "str | None" = None,
) -> Path:
    """Materialise ``stream`` as a persistent binary chunk store.

    One pass over the stream's chunks writes each chunk's CSR arrays
    (``starts``/``edge_ids``) plus the global weight vectors back to
    back into ``chunks.bin``; the manifest — written last, so a torn
    write never looks like a valid store — records the format version,
    the source digest, the chunking parameters and every section's byte
    offset.

    Parameters
    ----------
    stream:
        any re-iterable chunk stream (a disk reader, an in-memory
        adapter, or another store).
    path:
        store directory, created if needed; an existing store there is
        overwritten.
    source_path:
        the original text file, if any; its :func:`source_digest` is
        recorded so replays can validate cache freshness.  ``None``
        (e.g. an in-memory adapter) records ``null``.
    digest:
        an already-known source digest to record verbatim — skips
        re-hashing ``source_path`` and lets a replayed store
        (:class:`ChunkStoreStream`) propagate its recorded digest when
        re-saved.  Takes precedence over ``source_path`` for the digest
        (``source_path``, when given, still contributes the
        ``source_stat`` freshness record).

    Returns
    -------
    pathlib.Path
        the store directory, ready for :func:`open_store`.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    manifest_path = path / MANIFEST_NAME
    # A stale manifest must not survive a partial rewrite of the data
    # file: remove it first so a crash mid-write leaves a rejectable
    # (manifest-less) directory instead of a plausible-looking store.
    manifest_path.unlink(missing_ok=True)
    data_path = path / DATA_NAME
    offset = 0
    chunks_meta: "list[dict]" = []
    with open(data_path, "wb") as fh:

        def put(arr: np.ndarray, dtype: np.dtype) -> dict:
            nonlocal offset
            raw = np.ascontiguousarray(arr, dtype=dtype)
            fh.write(raw.tobytes())
            section = {"offset": offset, "count": int(raw.size)}
            offset += raw.size * dtype.itemsize
            return section

        for chunk in stream:
            chunks_meta.append(
                {
                    "start": int(chunk.start),
                    "stop": int(chunk.stop),
                    "num_pins": int(chunk.num_pins),
                    "starts": put(chunk.vertex_ptr, _INT),
                    "edge_ids": put(chunk.vertex_edges, _INT),
                }
            )
        vertex_weights = put(stream.vertex_weights, _FLOAT)
        edge_weights = put(stream.edge_weights, _FLOAT)
        # Optional section (additive field, no version bump): global
        # per-edge pin counts, the prerequisite for the sharded
        # streamer's local boundary detection on replay.
        edge_degrees = (
            put(stream.edge_degrees, _INT)
            if stream.edge_degrees is not None
            else None
        )

    manifest = {
        "format": FORMAT_MARKER,
        "version": CHUNKSTORE_VERSION,
        "name": stream.name,
        "source_digest": (
            digest
            if digest is not None
            else source_digest(source_path)
            if source_path is not None
            else None
        ),
        # Optional freshness shortcut: lets cached_stream skip hashing
        # an unchanged source (additive field, no version bump needed).
        "source_stat": (
            _stat_record(source_path) if source_path is not None else None
        ),
        "num_vertices": int(stream.num_vertices),
        "num_edges": int(stream.num_edges),
        "num_pins": int(stream.num_pins),
        "chunk_size": int(stream.chunk_size),
        "pin_budget": (
            int(stream.pin_budget) if stream.pin_budget is not None else None
        ),
        "total_vertex_weight": float(stream.total_vertex_weight),
        "data_file": DATA_NAME,
        "data_bytes": offset,
        "vertex_weights": vertex_weights,
        "edge_weights": edge_weights,
        "edge_degrees": edge_degrees,
        "chunks": chunks_meta,
    }
    manifest_path.write_text(json.dumps(manifest, indent=1))
    return path


class ChunkStoreStream(ChunkStream):
    """Replay a persistent chunk store with memory-mapped zero-copy reads.

    A drop-in :class:`~repro.streaming.reader.ChunkStream`: every chunk's
    ``vertex_ptr``/``vertex_edges``/``vertex_weights`` are views into one
    read-only ``np.memmap`` of the data file, so restream passes and
    ``iter_range`` shards never parse text and never copy pin arrays.
    The map is (re)opened lazily per process — a forked sharded worker
    that calls :meth:`iter_range` maps the store itself rather than
    inheriting a parent's pages through a pipe.

    Parameters
    ----------
    path:
        store directory written by :func:`write_store`.
    expected_digest:
        when given, the manifest's recorded source digest must equal it
        (cache-freshness validation); a store converted from an unknown
        source (``null`` digest) fails the check.
    name:
        override the stream name recorded in the manifest.

    Raises
    ------
    ChunkStoreError
        missing/unreadable manifest, unknown format or version,
        truncated or resized data file, or digest mismatch.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        expected_digest: "str | None" = None,
        name: "str | None" = None,
    ) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError as exc:
            raise ChunkStoreError(f"{self.path}: no chunk store (missing "
                                  f"{MANIFEST_NAME})") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise ChunkStoreError(
                f"{manifest_path}: unreadable manifest: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_MARKER:
            raise ChunkStoreError(
                f"{manifest_path}: not a {FORMAT_MARKER} manifest"
            )
        version = manifest.get("version")
        if version != CHUNKSTORE_VERSION:
            raise ChunkStoreError(
                f"{manifest_path}: unsupported chunk-store version {version!r} "
                f"(this reader understands version {CHUNKSTORE_VERSION}); "
                "re-convert from the source file"
            )
        self.manifest = manifest
        self.source_digest = manifest.get("source_digest")
        if expected_digest is not None and self.source_digest != expected_digest:
            raise ChunkStoreError(
                f"{self.path}: source digest mismatch — store records "
                f"{self.source_digest!r}, expected {expected_digest!r} "
                "(the source file changed; re-convert)"
            )
        try:
            self._data_path = self.path / manifest.get("data_file", DATA_NAME)
            declared = int(manifest["data_bytes"])
            try:
                actual = self._data_path.stat().st_size
            except OSError as exc:
                raise ChunkStoreError(
                    f"{self._data_path}: missing data file"
                ) from exc
            if actual != declared:
                raise ChunkStoreError(
                    f"{self._data_path}: data file is {actual} bytes, manifest "
                    f"declares {declared} (truncated or corrupt store)"
                )

            self.name = name or manifest["name"]
            self.num_vertices = int(manifest["num_vertices"])
            self.num_edges = int(manifest["num_edges"])
            self.num_pins = int(manifest["num_pins"])
            self.chunk_size = int(manifest["chunk_size"])
            self.pin_budget = (
                int(manifest["pin_budget"])
                if manifest.get("pin_budget") is not None
                else None
            )
            self.total_vertex_weight = float(manifest["total_vertex_weight"])
            chunks = manifest["chunks"]
            self._chunks_meta = chunks
            # Explicit boundaries: stores round-trip pin-budgeted (non-
            # uniform) chunkings, never falling back to chunk_size
            # arithmetic.
            self._chunk_starts = np.asarray(
                [c["start"] for c in chunks]
                + [chunks[-1]["stop"] if chunks else self.num_vertices],
                dtype=np.int64,
            )
            for section, dtype in (
                ("vertex_weights", _FLOAT),
                ("edge_weights", _FLOAT),
            ):
                self._check_section(manifest[section], dtype, declared, section)
            for c, meta in enumerate(chunks):
                self._check_section(
                    meta["starts"], _INT, declared, f"chunk {c} starts"
                )
                self._check_section(
                    meta["edge_ids"], _INT, declared, f"chunk {c} edge_ids"
                )
            self._mm: "np.memmap | None" = None
            self._mm_pid: "int | None" = None
            self.vertex_weights = self._section(
                manifest["vertex_weights"], _FLOAT
            )
            self.edge_weights = self._section(manifest["edge_weights"], _FLOAT)
            # Optional (older stores lack it; compute_edge_degrees is the
            # fallback for consumers that need degrees).
            degrees_meta = manifest.get("edge_degrees")
            if degrees_meta is not None:
                self._check_section(degrees_meta, _INT, declared, "edge_degrees")
                self.edge_degrees = self._section(degrees_meta, _INT)
        except ChunkStoreError:
            raise
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            # A right-version manifest with missing/ill-typed fields is
            # just as corrupt as a truncated file: same error family, so
            # cached_stream can fall back to reconverting.
            raise ChunkStoreError(
                f"{manifest_path}: malformed manifest ({exc!r})"
            ) from exc

    def _check_section(
        self, section: dict, dtype: np.dtype, data_bytes: int, label: str
    ) -> None:
        lo = int(section["offset"])
        hi = lo + int(section["count"]) * dtype.itemsize
        if lo < 0 or hi > data_bytes:
            raise ChunkStoreError(
                f"{self._data_path}: {label} section [{lo}, {hi}) exceeds the "
                f"{data_bytes}-byte data file (corrupt manifest)"
            )

    # ------------------------------------------------------------------
    def _data(self) -> np.memmap:
        """The process-local read-only map of the data file."""
        if self._mm is None or self._mm_pid != os.getpid():
            self._mm = np.memmap(self._data_path, dtype=np.uint8, mode="r")
            self._mm_pid = os.getpid()
        return self._mm

    def _section(self, section: dict, dtype: np.dtype) -> np.ndarray:
        lo = int(section["offset"])
        count = int(section["count"])
        return self._data()[lo : lo + count * dtype.itemsize].view(dtype)

    def chunk_pins(self) -> np.ndarray:
        """Per-chunk pin counts, straight from the manifest."""
        return np.asarray(
            [int(c["num_pins"]) for c in self._chunks_meta], dtype=np.int64
        )

    def iter_range(self, lo: int, hi: int) -> Iterator[VertexChunk]:
        """Yield chunks ``lo <= c < hi`` as zero-copy memmap views."""
        for c in range(lo, hi):
            meta = self._chunks_meta[c]
            start, stop = int(meta["start"]), int(meta["stop"])
            chunk = VertexChunk(
                start=start,
                stop=stop,
                vertex_ptr=self._section(meta["starts"], _INT),
                vertex_edges=self._section(meta["edge_ids"], _INT),
                vertex_weights=self.vertex_weights[start:stop],
            )
            self._note_resident(chunk.num_pins)
            yield chunk

    def close(self) -> None:
        """Drop this process's map (views already handed out stay valid)."""
        self._mm = None
        self._mm_pid = None


def open_store(
    path: "str | Path",
    *,
    expected_digest: "str | None" = None,
    name: "str | None" = None,
) -> ChunkStoreStream:
    """Open a chunk store for replay.

    Parameters
    ----------
    path:
        store directory written by :func:`write_store`.
    expected_digest:
        optional :func:`source_digest` the manifest must match.
    name:
        override the stream name recorded in the manifest.

    Returns
    -------
    ChunkStoreStream
        a re-iterable, shardable stream over the stored chunks.

    Raises
    ------
    ChunkStoreError
        if the store is missing, corrupt, truncated, of an unknown
        version, or fails the digest check.
    """
    return ChunkStoreStream(path, expected_digest=expected_digest, name=name)


def cached_stream(
    path: "str | Path",
    cache_dir: "str | Path",
    *,
    opener,
    **opener_kwargs,
) -> "tuple[ChunkStoreStream, bool]":
    """Open ``path`` through a chunk-store cache (convert once, replay after).

    Looks in :func:`store_dir_for` (a per-source directory keyed by
    basename plus a hash of the absolute path).  The cached store is
    replayed only when it is *fresh* — the source's recorded
    ``(size, mtime)`` fingerprint matches, or failing that its full
    :func:`source_digest` does — *and* its chunking parameters
    (``chunk_size``, ``pin_budget``) match the request; otherwise the
    file is re-ingested through ``opener`` and the store rewritten.  An
    unchanged source therefore costs one ``stat`` on the hit path, not a
    re-read of the file.

    Parameters
    ----------
    path:
        the text source file (hMetis or MatrixMarket).
    cache_dir:
        directory holding per-file stores, created if needed.
    opener:
        text-ingest constructor (:func:`~repro.streaming.reader.
        stream_hmetis` or :func:`~repro.streaming.reader.
        stream_matrix_market`).
    opener_kwargs:
        forwarded to ``opener`` on a miss; ``chunk_size``/``pin_budget``
        also participate in cache validation.

    Returns
    -------
    tuple[ChunkStoreStream, bool]
        the replayable store stream and whether the cache was *hit*
        (``True`` = the text parser never ran).
    """
    path = Path(path).expanduser()
    store_dir = store_dir_for(path, cache_dir)
    want_chunk = opener_kwargs.get("chunk_size")
    want_budget = opener_kwargs.get("pin_budget")
    digest: "str | None" = None
    try:
        stream = open_store(store_dir)
    except ChunkStoreError:
        pass
    else:
        # Freshness: an unchanged (size, mtime) fingerprint trusts the
        # store without re-reading the source; a changed one falls back
        # to the full digest (touch without edit, mtime-only changes).
        fresh = stream.source_digest is not None and stream.manifest.get(
            "source_stat"
        ) == _stat_record(path)
        if not fresh:
            digest = source_digest(path)
            fresh = stream.source_digest == digest
        if (
            fresh
            and (want_chunk is None or stream.chunk_size == want_chunk)
            and stream.pin_budget == want_budget
        ):
            return stream, True
        stream.close()
    if digest is None:
        digest = source_digest(path)
    with opener(path, **opener_kwargs) as text_stream:
        # The digest is already in hand — record it verbatim (plus the
        # source's stat fingerprint) rather than re-hashing the file.
        write_store(text_stream, store_dir, source_path=path, digest=digest)
    return open_store(store_dir, expected_digest=digest), False
