"""Out-of-core streaming: partition hypergraphs without loading them whole.

Everything else in this reproduction assumes the hypergraph fits in
memory; this package removes that assumption, opening the scenario axis
the paper's restreaming formulation was born for (and that the follow-up
literature — the limited-memory streamers of arXiv:2103.05394, the
massive-scale placement of HYPE, arXiv:1810.11319 — makes explicit):

* :mod:`~repro.streaming.reader` — one-pass chunked ingestion of hMetis
  and MatrixMarket sources.  Pins spill to per-chunk temporary files
  through a bounded buffer and come back as :class:`VertexChunk` CSR
  slices, so peak resident pin memory is O(chunk + buffer) regardless of
  file size.  Shares the strict validation of :mod:`repro.hypergraph.io`.
  Sources need not be files: the readers accept any byte source — an
  open file, ``bytes``, or an iterable of byte blocks — which is how the
  HTTP service (:mod:`repro.service`) parses uploads straight off the
  socket without materialising them.
* :mod:`~repro.streaming.state` — :class:`StreamingState`: exact
  per-partition loads plus a capped, LRU-evicting per-hyperedge presence
  table; the bounded stand-in for the dense ``(E x p)`` count matrix.
* :mod:`~repro.streaming.onepass` — :class:`OnePassStreamer`: place each
  vertex once, on arrival, with the architecture-aware value function
  (Eq. 1).
* :mod:`~repro.streaming.restream` — :class:`BufferedRestreamer`: buffer
  a window of recent vertices and re-stream it HyperPRAW-style
  (tempering, refinement, rollback).  With an unbounded buffer and table
  it reproduces in-memory HyperPRAW assignment-for-assignment; quality
  degrades gracefully as the buffer shrinks.

* :mod:`~repro.streaming.sharded` — :class:`ShardedStreamer`: parallel
  sharded streaming (ROADMAP item (a)).  Contiguous chunk ranges are
  streamed by forked workers against snapshot presence tables, a merge
  step reconciles loads/presence and flags multi-shard (boundary) nets,
  and a final single-worker restream fixes the boundary vertices.  Both
  streaming partitioners surface it through a ``workers=N`` knob.

* :mod:`~repro.streaming.chunkstore` — the **persistent binary chunk
  store** (ingest once, restream many): ``ChunkStream.save(path)``
  materialises any stream as raw little-endian CSR arrays under a JSON
  manifest, and :class:`ChunkStoreStream` replays it with memory-mapped
  zero-copy reads — restream passes and forked sharded workers skip the
  text parser entirely.  :func:`cached_stream` is the convert-on-miss /
  replay-on-hit contract behind the CLI's ``--cache``.

All stream passes run on the shared engine
(:func:`repro.engine.kernel.pass_kernel`); the readers additionally
support *pin-budgeted* chunk boundaries (``pin_budget=...``) so
hub-dominated graphs keep bounded resident pins per chunk.

Both partitioners also implement the standard ``partition(hg, ...)``
interface via :class:`HypergraphChunkStream`, so they slot into the
experiment runner, benchmarks and CLI next to every other algorithm.
"""

from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HmetisChunkStream,
    HypergraphChunkStream,
    MatrixMarketChunkStream,
    VertexChunk,
    assemble,
    stream_hmetis,
    stream_matrix_market,
)
from repro.streaming.chunkstore import (
    CHUNKSTORE_VERSION,
    ChunkStoreError,
    ChunkStoreStream,
    cached_stream,
    open_store,
    source_digest,
    write_store,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix
from repro.streaming.onepass import OnePassStreamer
from repro.streaming.restream import BufferedRestreamer
from repro.streaming.sharded import ShardedStreamer

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkStream",
    "VertexChunk",
    "HmetisChunkStream",
    "MatrixMarketChunkStream",
    "HypergraphChunkStream",
    "stream_hmetis",
    "stream_matrix_market",
    "assemble",
    "CHUNKSTORE_VERSION",
    "ChunkStoreError",
    "ChunkStoreStream",
    "write_store",
    "open_store",
    "source_digest",
    "cached_stream",
    "StreamingState",
    "resolve_cost_matrix",
    "OnePassStreamer",
    "BufferedRestreamer",
    "ShardedStreamer",
]
