"""Out-of-core streaming: partition hypergraphs without loading them whole.

Everything else in this reproduction assumes the hypergraph fits in
memory; this package removes that assumption, opening the scenario axis
the paper's restreaming formulation was born for (and that the follow-up
literature — the limited-memory streamers of arXiv:2103.05394, the
massive-scale placement of HYPE, arXiv:1810.11319 — makes explicit):

* :mod:`~repro.streaming.reader` — one-pass chunked ingestion of hMetis
  and MatrixMarket files.  Pins spill to per-chunk temporary files
  through a bounded buffer and come back as :class:`VertexChunk` CSR
  slices, so peak resident pin memory is O(chunk + buffer) regardless of
  file size.  Shares the strict validation of :mod:`repro.hypergraph.io`.
* :mod:`~repro.streaming.state` — :class:`StreamingState`: exact
  per-partition loads plus a capped, LRU-evicting per-hyperedge presence
  table; the bounded stand-in for the dense ``(E x p)`` count matrix.
* :mod:`~repro.streaming.onepass` — :class:`OnePassStreamer`: place each
  vertex once, on arrival, with the architecture-aware value function
  (Eq. 1).
* :mod:`~repro.streaming.restream` — :class:`BufferedRestreamer`: buffer
  a window of recent vertices and re-stream it HyperPRAW-style
  (tempering, refinement, rollback).  With an unbounded buffer and table
  it reproduces in-memory HyperPRAW assignment-for-assignment; quality
  degrades gracefully as the buffer shrinks.

Both partitioners also implement the standard ``partition(hg, ...)``
interface via :class:`HypergraphChunkStream`, so they slot into the
experiment runner, benchmarks and CLI next to every other algorithm.

Open follow-ups are tracked in ROADMAP.md: parallel sharded streaming
(partition chunk ranges across workers, reconcile boundary vertices) and
a service/API layer that streams uploads straight into a partitioner.
"""

from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HmetisChunkStream,
    HypergraphChunkStream,
    MatrixMarketChunkStream,
    VertexChunk,
    assemble,
    stream_hmetis,
    stream_matrix_market,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix
from repro.streaming.onepass import OnePassStreamer
from repro.streaming.restream import BufferedRestreamer

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkStream",
    "VertexChunk",
    "HmetisChunkStream",
    "MatrixMarketChunkStream",
    "HypergraphChunkStream",
    "stream_hmetis",
    "stream_matrix_market",
    "assemble",
    "StreamingState",
    "resolve_cost_matrix",
    "OnePassStreamer",
    "BufferedRestreamer",
]
