"""Bounded partition state for the streaming partitioners.

The in-memory :class:`~repro.core.state.StreamState` keeps the full
``(E x p)`` hyperedge-partition count matrix — exactly the structure an
out-of-core run cannot afford.  :class:`StreamingState` keeps the same
two ingredients of the value function in bounded form:

* ``loads`` — per-partition vertex-weight totals (``p`` floats, exact);
* a **capped per-hyperedge presence table**: per-partition pin counts for
  at most ``max_tracked_edges`` hyperedges, with least-recently-referenced
  eviction.  Streaming partitioners reference a hyperedge whenever one of
  its pins arrives or is re-placed, so under the locality that makes
  streaming partitioning work at all (arXiv:2103.05394's limited-memory
  streamers make the same bet with their capped connectivity structures),
  the hot nets stay resident and the stale ones fall off.

With ``max_tracked_edges=None`` the table is unbounded and the state is
an exact sparse mirror of ``StreamState`` — the configuration under which
:class:`~repro.streaming.restream.BufferedRestreamer` reproduces
in-memory HyperPRAW bit for bit.

Evicted counts are simply lost: a later ``remove`` for an evicted
hyperedge is clamped at zero rather than recreating phantom negative
counts, so the table always holds a *lower bound* on each tracked net's
true per-partition pin counts.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.architecture.cost import (
    is_uniform_cost,
    uniform_cost_matrix,
    validate_cost_matrix,
)

__all__ = ["StreamingState", "resolve_cost_matrix"]


def resolve_cost_matrix(
    cost_matrix: "np.ndarray | None", num_parts: int
) -> "tuple[np.ndarray, bool]":
    """Validate / default the cost matrix; returns ``(C, aware)``.

    Mirrors the labelling rule of :class:`~repro.core.hyperpraw.HyperPRAW`:
    ``aware`` is True only for a genuinely non-uniform matrix.
    """
    if cost_matrix is None:
        return uniform_cost_matrix(num_parts), False
    C = validate_cost_matrix(cost_matrix, num_units=num_parts)
    return C, not is_uniform_cost(C)


class StreamingState:
    """Mutable bounded state: partition loads + capped edge-presence table.

    Parameters
    ----------
    num_parts:
        partition count ``p``.
    expected_loads:
        target load per partition (``E(k)`` in Eq. 1).
    max_tracked_edges:
        cap on simultaneously tracked hyperedges; ``None`` tracks all
        referenced hyperedges (exact, memory O(distinct edges seen)).
    """

    def __init__(
        self,
        num_parts: int,
        *,
        expected_loads: np.ndarray,
        max_tracked_edges: "int | None" = None,
    ) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if max_tracked_edges is not None and max_tracked_edges < 1:
            raise ValueError(
                f"max_tracked_edges must be >= 1 or None, got {max_tracked_edges}"
            )
        self.num_parts = int(num_parts)
        self.loads = np.zeros(num_parts, dtype=np.float64)
        self.expected_loads = np.asarray(expected_loads, dtype=np.float64)
        if self.expected_loads.shape != (num_parts,):
            raise ValueError(
                f"expected_loads must have shape ({num_parts},), "
                f"got {self.expected_loads.shape}"
            )
        if (self.expected_loads <= 0).any():
            raise ValueError("expected_loads must be strictly positive")
        self.max_tracked_edges = max_tracked_edges
        initial = max_tracked_edges if max_tracked_edges is not None else 1024
        self._table = np.zeros((max(1, initial), num_parts), dtype=np.int64)
        self._slots: "OrderedDict[int, int]" = OrderedDict()
        self.evictions = 0
        self.peak_tracked_edges = 0

    # ------------------------------------------------------------------
    @property
    def num_tracked_edges(self) -> int:
        return len(self._slots)

    def _acquire(self, edge: int) -> int:
        """Slot of ``edge``, creating (and evicting LRU) as needed."""
        slots = self._slots
        slot = slots.get(edge)
        if slot is not None:
            slots.move_to_end(edge)
            return slot
        if (
            self.max_tracked_edges is not None
            and len(slots) >= self.max_tracked_edges
        ):
            _, slot = slots.popitem(last=False)
            self._table[slot] = 0
            self.evictions += 1
        else:
            slot = len(slots)
            if slot >= self._table.shape[0]:
                grown = np.zeros(
                    (self._table.shape[0] * 2, self.num_parts), dtype=np.int64
                )
                grown[: self._table.shape[0]] = self._table
                self._table = grown
        slots[edge] = slot
        self.peak_tracked_edges = max(self.peak_tracked_edges, len(slots))
        return slot

    # ------------------------------------------------------------------
    # hot-path operations
    # ------------------------------------------------------------------
    def gather(self, edges: np.ndarray) -> np.ndarray:
        """``X_j(v)``: summed per-partition counts over ``edges`` (int64).

        Untracked (never seen or evicted) hyperedges contribute zero.
        Referencing counts as a read *touches* the nets for LRU purposes —
        a net that keeps scoring placements is a net worth keeping.
        """
        X = np.zeros(self.num_parts, dtype=np.int64)
        slots = self._slots
        table = self._table
        for e in edges.tolist():
            slot = slots.get(e)
            if slot is not None:
                slots.move_to_end(e)
                X += table[slot]
        return X

    def gather_block(
        self, rows_all: np.ndarray, vertex_ptr: np.ndarray
    ) -> np.ndarray:
        """Stacked neighbour counts for a whole chunk (``m x p``).

        ``rows_all`` is the chunk's concatenated incident-edge array and
        ``vertex_ptr`` its local CSR offsets; row ``i`` of the result is
        :meth:`gather` of vertex ``i``'s edges, evaluated against the
        chunk-start table in one vectorised pass.
        """
        m = vertex_ptr.size - 1
        p = self.num_parts
        X = np.zeros((m, p), dtype=np.int64)
        if rows_all.size == 0:
            return X
        uniq, inverse = np.unique(rows_all, return_inverse=True)
        slots = self._slots
        slot_arr = np.empty(uniq.size, dtype=np.int64)
        for k, e in enumerate(uniq.tolist()):
            slot = slots.get(e)
            if slot is None:
                slot_arr[k] = -1
            else:
                slots.move_to_end(e)
                slot_arr[k] = slot
        counts_uniq = np.zeros((uniq.size, p), dtype=np.int64)
        tracked = slot_arr >= 0
        counts_uniq[tracked] = self._table[slot_arr[tracked]]
        seg = counts_uniq[inverse]
        degs = np.diff(vertex_ptr)
        nonzero = degs > 0
        if nonzero.any():
            X[nonzero] = np.add.reduceat(seg, vertex_ptr[:-1][nonzero], axis=0)
        return X

    def place(self, edges: np.ndarray, part: int, weight: float) -> None:
        """Record a (new or re-placed) pin of every ``edges`` on ``part``."""
        for e in edges.tolist():
            slot = self._acquire(e)
            # no caching of _table across iterations: _acquire may grow it
            self._table[slot, part] += 1
        self.loads[part] += weight

    def remove(self, edges: np.ndarray, part: int, weight: float) -> None:
        """Lift a vertex off ``part``; untracked edges are a clamped no-op."""
        slots = self._slots
        table = self._table
        for e in edges.tolist():
            slot = slots.get(e)
            if slot is not None and table[slot, part] > 0:
                slots.move_to_end(e)
                table[slot, part] -= 1
        self.loads[part] -= weight

    # ------------------------------------------------------------------
    # engine protocol: block operations + shard reconciliation
    # ------------------------------------------------------------------
    #: the kernel must route every placement through :meth:`place` so the
    #: LRU table sees references in arrival order (no batched inserts).
    place_deferred = False

    def lift_block(
        self, edges: np.ndarray, ptr: np.ndarray, old: np.ndarray, weights: np.ndarray
    ) -> None:
        """Remove a whole block (chunk-mode restreaming), vertex by vertex."""
        for i in range(old.size):
            self.remove(edges[ptr[i] : ptr[i + 1]], int(old[i]), weights[i])

    def export_table(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(edge_ids, counts)`` of every tracked net, sorted by edge id.

        The sorted order makes cross-process merges deterministic; the
        arrays are copies, safe to pickle across a worker pipe.
        """
        n = len(self._slots)
        if n == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, self.num_parts), dtype=np.int64),
            )
        edges = np.fromiter(self._slots.keys(), dtype=np.int64, count=n)
        slots = np.fromiter(self._slots.values(), dtype=np.int64, count=n)
        order = np.argsort(edges)
        return edges[order], self._table[slots[order]].copy()

    def seed_table(self, edges: np.ndarray, counts: np.ndarray) -> None:
        """Bulk-insert per-edge counts (the sharded merge step).

        Rows are inserted in the given order through the normal slot
        machinery, so a capped table evicts deterministically when the
        merged net set exceeds ``max_tracked_edges``.
        """
        for k in range(edges.size):
            slot = self._acquire(int(edges[k]))
            self._table[slot] += counts[k]

    def rows(self, edges: np.ndarray) -> np.ndarray:
        """Current count rows for ``edges`` (``len(edges) x p`` copy).

        Untracked edges yield zero rows.  A bookkeeping read — delta
        computation for the sharded boundary exchange — so it does *not*
        touch the LRU order.
        """
        out = np.zeros((edges.size, self.num_parts), dtype=np.int64)
        slots = self._slots
        for k, e in enumerate(edges.tolist()):
            slot = slots.get(e)
            if slot is not None:
                out[k] = self._table[slot]
        return out

    def set_rows(self, edges: np.ndarray, counts: np.ndarray) -> None:
        """Overwrite the rows for ``edges`` with ``counts``.

        The sharded boundary restream overlays the driver's merged
        global counts onto each worker's local table at the start of
        every round; rows are (re)acquired through the normal slot
        machinery, creating them if needed.
        """
        for k in range(edges.size):
            slot = self._acquire(int(edges[k]))
            self._table[slot] = counts[k]

    # ------------------------------------------------------------------
    # pass-level queries
    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        """max-load / mean-load over placed weight (1.0 when nothing placed)."""
        mean = self.loads.sum() / self.num_parts
        if mean == 0:
            return 1.0
        return float(self.loads.max() / mean)

    def pc_cost(
        self,
        cost_matrix: np.ndarray,
        *,
        edge_weights: "np.ndarray | None" = None,
        exclude_edges: "np.ndarray | None" = None,
    ) -> float:
        """Monitored partitioning communication cost over *tracked* nets.

        Eq. 5 rewritten per hyperedge: ``PC(P) = sum_e w_e c_e^T C c_e``
        with ``c_e`` the per-partition pin counts of ``e`` — so the table
        rows are all that is needed.  Exact when the table is unbounded;
        a lower-bound estimate once eviction has discarded nets.
        ``exclude_edges`` drops those nets from the sum — the sharded
        boundary exchange accounts boundary rows at the driver, so
        workers report only their *interior* contribution.
        """
        n = len(self._slots)
        if n == 0:
            return 0.0
        edges = np.fromiter(self._slots.keys(), dtype=np.int64, count=n)
        slots = np.fromiter(self._slots.values(), dtype=np.int64, count=n)
        if exclude_edges is not None and exclude_edges.size:
            keep = ~np.isin(edges, exclude_edges)
            edges, slots = edges[keep], slots[keep]
            if edges.size == 0:
                return 0.0
        counts = self._table[slots].astype(np.float64)
        per_edge = np.einsum("ep,pq,eq->e", counts, cost_matrix, counts)
        if edge_weights is not None:
            per_edge = per_edge * edge_weights[edges]
        return float(per_edge.sum())
