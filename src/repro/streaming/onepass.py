"""One-pass streaming placement with the architecture-aware value function.

Each vertex is placed exactly once, as its chunk arrives, at the argmax of
the HyperPRAW value function (Eq. 1) evaluated against the bounded
:class:`~repro.streaming.state.StreamingState` — this is the single-pass
min-max streamer family of arXiv:2103.05394, with two HyperPRAW-specific
ingredients: the cost-matrix communication term ``-N(v) * (C @ X)_i`` and
the tempered load penalty ``-alpha * W(i)/E(i)``.  A FENNEL-style hard
balance cap guards against the degenerate all-in-one placement on
hub-dominated streams.

Unlike the restreamers there is no second chance: quality depends on how
much of each vertex's neighbourhood has already arrived.  The streamed
suite instances show the expected gap to in-memory HyperPRAW (bounded in
the ``bench.streaming`` scenario); what the one-pass streamer buys is
O(buffer) memory and a single pass over the file.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.core.schedule import initial_alpha_from_counts
from repro.core.value import assignment_values, block_value_terms
from repro.hypergraph.model import Hypergraph
from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HypergraphChunkStream,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix

__all__ = ["OnePassStreamer"]


class OnePassStreamer(Partitioner):
    """Single-pass bounded-memory streaming partitioner.

    Parameters
    ----------
    chunk_size:
        vertices per arriving chunk when adapting an in-memory hypergraph
        (disk streams carry their own chunking).
    alpha:
        load-penalty scale: ``"paper"`` (default), ``"fennel"`` or an
        explicit float; see
        :func:`repro.core.schedule.initial_alpha_from_counts`.  The
        paper's strong load prior keeps a single greedy pass balanced
        from the first chunk, and on the synthetic suite that also wins
        on communication cost (the same finding the in-memory
        reproduction made for the restreamer's first pass); the literal
        FENNEL value relies on later passes that a one-pass streamer
        never gets.
    presence_threshold:
        Eq. 3 threshold on ``X_j(v)`` (as in HyperPRAW).
    balance_slack:
        hard cap on any partition's load as a multiple of the balanced
        share (``None`` disables; default 1.2 as in the FENNEL baseline).
    max_tracked_edges:
        presence-table cap (``None`` = unbounded / exact).
    score_mode:
        ``"vertex"`` (default) scores each vertex against the live state —
        exact and chunk-size invariant.  ``"chunk"`` scores a whole chunk
        against the chunk-start state with one matmul
        (:func:`~repro.core.value.block_value_terms`) — faster, with
        intra-chunk staleness in the communication term.
    """

    name = "stream-onepass"

    def __init__(
        self,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        alpha: "str | float" = "paper",
        presence_threshold: int = 1,
        balance_slack: "float | None" = 1.2,
        max_tracked_edges: "int | None" = None,
        score_mode: str = "vertex",
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if presence_threshold < 1:
            raise ValueError(
                f"presence_threshold must be >= 1, got {presence_threshold}"
            )
        if balance_slack is not None and balance_slack <= 1.0:
            raise ValueError(f"balance_slack must be > 1, got {balance_slack}")
        if score_mode not in ("vertex", "chunk"):
            raise ValueError(
                f"score_mode must be 'vertex' or 'chunk', got {score_mode!r}"
            )
        self.chunk_size = int(chunk_size)
        self.alpha = alpha
        self.presence_threshold = int(presence_threshold)
        self.balance_slack = balance_slack
        self.max_tracked_edges = max_tracked_edges
        self.score_mode = score_mode

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Stream an in-memory hypergraph chunk by chunk (adapter path)."""
        self._check_args(hg, num_parts)
        stream = HypergraphChunkStream(hg, self.chunk_size)
        return self.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )

    def partition_stream(
        self,
        stream: ChunkStream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Place every vertex of ``stream`` in a single pass."""
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > stream.num_vertices:
            raise ValueError(
                f"cannot split {stream.num_vertices} vertices into {num_parts} parts"
            )
        t_start = time.perf_counter()
        p = num_parts
        C, aware = resolve_cost_matrix(cost_matrix, p)
        expected = np.full(p, stream.total_vertex_weight / p)
        state = StreamingState(
            p, expected_loads=expected, max_tracked_edges=self.max_tracked_edges
        )
        alpha = initial_alpha_from_counts(
            stream.num_vertices, stream.num_edges, p, self.alpha
        )
        cap = (
            self.balance_slack * stream.total_vertex_weight / p
            if self.balance_slack is not None
            else None
        )
        assignment = np.full(stream.num_vertices, -1, dtype=np.int64)
        values = np.empty(p, dtype=np.float64)

        for chunk in stream:
            if self.score_mode == "chunk":
                self._place_chunk(chunk, state, C, alpha, cap, assignment, values)
            else:
                self._place_vertices(chunk, state, C, alpha, cap, assignment, values)

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "single_pass": True,
                "score_mode": self.score_mode,
                "alpha": alpha,
                "balance_slack": self.balance_slack,
                "max_tracked_edges": self.max_tracked_edges,
                "peak_tracked_edges": state.peak_tracked_edges,
                "evictions": state.evictions,
                "monitored_pc_cost": state.pc_cost(
                    C, edge_weights=stream.edge_weights
                ),
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": aware,
                "imbalance": state.imbalance(),
                "wall_time_s": time.perf_counter() - t_start,
            },
        )

    # ------------------------------------------------------------------
    def _apply_cap(
        self, values: np.ndarray, loads: np.ndarray, weight: float, cap: "float | None"
    ) -> None:
        """Mask partitions the hard balance cap forbids (in place)."""
        if cap is None:
            return
        full = loads + weight > cap
        if full.all():
            # Everything is over cap (tiny p or huge vertex): fall back to
            # the emptiest partition rather than dead-ending.
            full = loads != loads.min()
        values[full] = -np.inf

    def _place_vertices(
        self, chunk, state, C, alpha, cap, assignment, values
    ) -> None:
        """Exact sequential placement: score each vertex on the live state."""
        weights = chunk.vertex_weights
        thresh = self.presence_threshold
        for i in range(chunk.num_vertices):
            edges = chunk.edges_of(i)
            X = state.gather(edges).astype(np.float64)
            assignment_values(
                X,
                C,
                state.loads,
                state.expected_loads,
                alpha,
                presence_threshold=thresh,
                out=values,
            )
            self._apply_cap(values, state.loads, weights[i], cap)
            j = int(np.argmax(values))
            state.place(edges, j, weights[i])
            assignment[chunk.start + i] = j

    def _place_chunk(self, chunk, state, C, alpha, cap, assignment, values) -> None:
        """Vectorised placement: one matmul for the chunk's comm terms."""
        X = state.gather_block(chunk.vertex_edges, chunk.vertex_ptr)
        T, n_neigh = block_value_terms(
            X, C, presence_threshold=self.presence_threshold
        )
        M = T * (-(n_neigh / state.num_parts))[:, None]
        alpha_inv_expected = alpha / state.expected_loads
        weights = chunk.vertex_weights
        for i in range(chunk.num_vertices):
            np.multiply(alpha_inv_expected, state.loads, out=values)
            np.subtract(M[i], values, out=values)
            self._apply_cap(values, state.loads, weights[i], cap)
            j = int(np.argmax(values))
            state.place(chunk.edges_of(i), j, weights[i])
            assignment[chunk.start + i] = j
