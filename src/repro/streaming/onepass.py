"""One-pass streaming placement with the architecture-aware value function.

Each vertex is placed exactly once, as its chunk arrives, at the argmax of
the HyperPRAW value function (Eq. 1) evaluated against the bounded
:class:`~repro.streaming.state.StreamingState` — this is the single-pass
min-max streamer family of arXiv:2103.05394, with two HyperPRAW-specific
ingredients: the cost-matrix communication term ``-N(v) * (C @ X)_i`` and
the tempered load penalty ``-alpha * W(i)/E(i)``.  A FENNEL-style hard
balance cap guards against the degenerate all-in-one placement on
hub-dominated streams.

Unlike the restreamers there is no second chance: quality depends on how
much of each vertex's neighbourhood has already arrived.  The streamed
suite instances show the expected gap to in-memory HyperPRAW (bounded in
the ``bench.streaming`` scenario); what the one-pass streamer buys is
O(buffer) memory and a single pass over the file.

The pass itself is the shared engine kernel
(:func:`repro.engine.kernel.pass_kernel` in place-only mode); with
``workers > 1`` the stream is split into contiguous chunk-range shards
processed by forked workers and reconciled by
:class:`~repro.streaming.sharded.ShardedStreamer`.  Any chunk stream
feeds it — a text reader, an in-memory adapter, or a persistent binary
chunk store replayed with
:func:`~repro.streaming.chunkstore.open_store` (ingest once, stream
many: the store path skips the text parser entirely).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.core.schedule import initial_alpha_from_counts
from repro.engine import FennelScorer, HyperPRAWScorer, blocks_of, pass_kernel
from repro.hypergraph.model import Hypergraph
from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HypergraphChunkStream,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix

__all__ = ["OnePassStreamer"]


class OnePassStreamer(Partitioner):
    """Single-pass bounded-memory streaming partitioner.

    Parameters
    ----------
    chunk_size:
        vertices per arriving chunk when adapting an in-memory hypergraph
        (disk streams carry their own chunking).
    alpha:
        load-penalty scale: ``"paper"`` (default), ``"fennel"`` or an
        explicit float; see
        :func:`repro.core.schedule.initial_alpha_from_counts`.  The
        paper's strong load prior keeps a single greedy pass balanced
        from the first chunk, and on the synthetic suite that also wins
        on communication cost (the same finding the in-memory
        reproduction made for the restreamer's first pass); the literal
        FENNEL value relies on later passes that a one-pass streamer
        never gets.
    presence_threshold:
        Eq. 3 threshold on ``X_j(v)`` (as in HyperPRAW).
    balance_slack:
        hard cap on any partition's load as a multiple of the balanced
        share (``None`` disables; default 1.2 as in the FENNEL baseline).
    max_tracked_edges:
        presence-table cap (``None`` = unbounded / exact).
    score_mode:
        ``"vertex"`` (default) scores each vertex against the live state —
        exact and chunk-size invariant.  ``"chunk"`` scores a whole chunk
        against the chunk-start state with one matmul
        (:func:`~repro.core.value.block_value_terms`) — faster, with
        intra-chunk staleness in the communication term.
    scorer:
        value function: ``"eq1"`` (default) is HyperPRAW's
        architecture-aware Eq. 1; ``"fennel"`` swaps in the FENNEL
        neighbour-count score with the power-law load penalty — the
        single-pass baseline HyperPRAW descends from, now available
        against bounded out-of-core state (pair with ``alpha="fennel"``
        for the literal formula).
    gamma:
        FENNEL load-penalty exponent (only used with
        ``scorer="fennel"``).
    workers:
        parallel sharded streaming: split the stream into ``workers``
        contiguous chunk ranges (pin-balanced; see ``shard_by``), place
        each in a forked worker against its own presence table, merge
        boundary-only payloads, and restream the boundary vertices
        across the same worker pool.  ``1`` (default) is the plain
        sequential streamer.
    shard_payload:
        ``"boundary"`` (default) or ``"full"`` — what sharded workers
        ship at the merge (see :class:`~repro.streaming.sharded.
        ShardedStreamer`).
    shard_by:
        ``"pins"`` (default) or ``"chunks"`` — how sharded worker
        ranges are balanced.
    kernel:
        inner-loop implementation request (``"auto"``/``"python"``/
        ``"njit"``).  The bounded LRU presence table has no compiled
        path (its eviction order is part of the contract), so this
        streamer always resolves to python — an explicit ``"njit"``
        warns once and falls back; the resolved mode is reported as
        ``kernel_mode`` metadata.
    """

    name = "stream-onepass"

    def __init__(
        self,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        alpha: "str | float" = "paper",
        presence_threshold: int = 1,
        balance_slack: "float | None" = 1.2,
        max_tracked_edges: "int | None" = None,
        score_mode: str = "vertex",
        scorer: str = "eq1",
        gamma: float = 1.5,
        workers: int = 1,
        shard_payload: str = "boundary",
        shard_by: str = "pins",
        kernel: str = "auto",
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if presence_threshold < 1:
            raise ValueError(
                f"presence_threshold must be >= 1, got {presence_threshold}"
            )
        if balance_slack is not None and balance_slack <= 1.0:
            raise ValueError(f"balance_slack must be > 1, got {balance_slack}")
        if score_mode not in ("vertex", "chunk"):
            raise ValueError(
                f"score_mode must be 'vertex' or 'chunk', got {score_mode!r}"
            )
        if scorer not in ("eq1", "fennel"):
            raise ValueError(
                f"scorer must be 'eq1' or 'fennel', got {scorer!r}"
            )
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kernel not in ("auto", "python", "njit"):
            raise ValueError(
                f"kernel must be 'auto', 'python' or 'njit', got {kernel!r}"
            )
        self.chunk_size = int(chunk_size)
        self.alpha = alpha
        self.presence_threshold = int(presence_threshold)
        self.balance_slack = balance_slack
        self.max_tracked_edges = max_tracked_edges
        self.score_mode = score_mode
        self.scorer = scorer
        self.gamma = float(gamma)
        self.workers = int(workers)
        self.shard_payload = shard_payload
        self.shard_by = shard_by
        self.kernel = kernel

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Stream an in-memory hypergraph chunk by chunk (adapter path)."""
        self._check_args(hg, num_parts)
        stream = HypergraphChunkStream(hg, self.chunk_size)
        return self.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )

    def partition_stream(
        self,
        stream: ChunkStream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Place every vertex of ``stream`` in a single pass."""
        if self.workers > 1:
            from repro.streaming.sharded import ShardedStreamer

            return ShardedStreamer(
                self,
                workers=self.workers,
                payload=self.shard_payload,
                shard_by=self.shard_by,
            ).partition_stream(
                stream, num_parts, cost_matrix=cost_matrix, seed=seed
            )
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > stream.num_vertices:
            raise ValueError(
                f"cannot split {stream.num_vertices} vertices into {num_parts} parts"
            )
        t_start = time.perf_counter()
        p = num_parts
        C, aware = resolve_cost_matrix(cost_matrix, p)
        assignment = np.full(stream.num_vertices, -1, dtype=np.int64)
        state, stats = self._run_shard(
            iter(stream),
            p,
            C,
            assignment,
            stream_counts=(stream.num_vertices, stream.num_edges),
            shard_weight=stream.total_vertex_weight,
        )

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "single_pass": True,
                "score_mode": self.score_mode,
                "scorer": self.scorer,
                "kernel_mode": stats["kernel_mode"],
                "pass_seconds": stats["pass_seconds"],
                "alpha": stats["alpha"],
                "balance_slack": self.balance_slack,
                "max_tracked_edges": self.max_tracked_edges,
                "peak_tracked_edges": state.peak_tracked_edges,
                "evictions": state.evictions,
                "monitored_pc_cost": state.pc_cost(
                    C, edge_weights=stream.edge_weights
                ),
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": aware,
                "imbalance": state.imbalance(),
                "wall_time_s": time.perf_counter() - t_start,
            },
        )

    # ------------------------------------------------------------------
    # sharding contract (see repro.streaming.sharded.ShardedStreamer)
    # ------------------------------------------------------------------
    def _shard_profile(self) -> dict:
        """Scorer/schedule parameters for the sharded driver's merge and
        boundary restream.  The one-pass streamer has no schedule of its
        own, so the boundary fix-up borrows the paper-default
        :class:`~repro.core.config.HyperPRAWConfig` schedule — but keeps
        this streamer's *value function* (``scorer``/``gamma``), so a
        FENNEL-scored run is polished under the FENNEL objective."""
        from repro.core.config import HyperPRAWConfig

        cfg = HyperPRAWConfig()
        return {
            "alpha_mode": self.alpha,
            "scorer": self.scorer,
            "gamma": self.gamma,
            "presence_threshold": self.presence_threshold,
            "max_tracked_edges": self.max_tracked_edges,
            "imbalance_tolerance": cfg.imbalance_tolerance,
            "alpha_update": cfg.alpha_update,
            "refinement": cfg.refinement,
            "refinement_factor": cfg.refinement_factor,
            "max_iterations": cfg.max_iterations,
            "use_edge_weights": cfg.use_edge_weights,
        }

    def _shard_spec(self) -> dict:
        """JSON-safe recipe for rebuilding this base on another host.

        Decoded by :func:`repro.cluster.protocol.base_from_spec`: a
        remote worker reconstructs an equivalent single-worker base and
        runs the same ``_run_shard`` over its socket-fed chunk range.
        ``chunk_size``/``workers``/``shard_*`` are deliberately omitted —
        the worker never adapts an in-memory hypergraph and never
        re-shards.
        """
        return {
            "kind": "onepass",
            "alpha": self.alpha,
            "presence_threshold": self.presence_threshold,
            "balance_slack": self.balance_slack,
            "max_tracked_edges": self.max_tracked_edges,
            "score_mode": self.score_mode,
            "scorer": self.scorer,
            "gamma": self.gamma,
            "kernel": self.kernel,
        }

    def _run_shard(
        self,
        chunks,
        num_parts: int,
        C: np.ndarray,
        assignment: np.ndarray,
        *,
        stream_counts: "tuple[int, int]",
        shard_weight: float,
        edge_weights=None,
        rng=None,
    ) -> "tuple[StreamingState, dict]":
        """Place one shard's worth of chunks (the whole stream when
        running single-worker); the sharded driver calls this per worker
        with a shard-local chunk range.

        ``stream_counts`` are the *global* ``(|V|, |E|)`` (alpha is a
        property of the instance, not the shard); ``shard_weight`` scopes
        the expected loads and the balance cap to the shard.  ``rng`` is
        the shard's spawned generator — unused by this deterministic
        streamer, accepted so stochastic scorers can be threaded through
        later without changing the sharding contract.
        """
        del edge_weights, rng  # deterministic placement; see docstring
        p = num_parts
        state = StreamingState(
            p,
            expected_loads=np.full(p, shard_weight / p),
            max_tracked_edges=self.max_tracked_edges,
        )
        alpha = initial_alpha_from_counts(
            stream_counts[0], stream_counts[1], p, self.alpha
        )
        cap = (
            self.balance_slack * shard_weight / p
            if self.balance_slack is not None
            else None
        )
        if self.scorer == "fennel":
            scorer = FennelScorer(alpha, self.gamma)
        else:
            scorer = HyperPRAWScorer(
                C, alpha, state.expected_loads, self.presence_threshold
            )
        t_pass = time.perf_counter()
        kernel_mode = pass_kernel(
            blocks_of(chunks),
            state,
            scorer,
            assignment,
            restream=False,
            score_mode=self.score_mode,
            cap=cap,
            kernel=self.kernel,
        )
        return state, {
            "alpha": alpha,
            "kernel_mode": kernel_mode,
            "pass_seconds": time.perf_counter() - t_pass,
        }
