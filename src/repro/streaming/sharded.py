"""Parallel sharded streaming, v2 (ROADMAP items (a), (f), (g), (h)).

:class:`ShardedStreamer` scales a streaming partitioner across CPU cores
in three phases, every one of them sharded:

1. **Shard** — the chunk stream is split into contiguous chunk ranges,
   with a *straggler guard*: when the uniform chunk-count split leaves
   per-shard pin totals skewed beyond :data:`ShardedStreamer.
   PIN_SKEW_THRESHOLD` (hub-heavy prefixes), it is replaced by the
   pin-balanced cut (:func:`repro.engine.blocks.shard_ranges_by_pins`);
   near-uniform streams keep their boundaries, because a moved cut
   changes what every worker streams blind of for almost no balance
   gain.  Each shard is streamed by its *base* partitioner
   (:class:`~repro.streaming.restream.BufferedRestreamer` by default, or
   a :class:`~repro.streaming.onepass.OnePassStreamer`) in a forked
   worker process, against its own snapshot presence table and a
   shard-scoped load target (``shard_weight / p``) — workers never
   synchronise while streaming, which is where the speedup comes from
   and why they stream blind of each other's placements.
2. **Merge, boundary-only** — workers detect their boundary nets
   *locally*: a net whose locally observed pin count falls short of its
   global degree (``stream.edge_degrees``, O(|E|) scalar metadata
   recorded at ingest and persisted by the chunk store) must have pins
   in another shard.  Only those presence-table rows, the load vector
   and the shard's assignment slice cross the pipe (``payload="full"``
   ships whole tables, for measurement); the driver sums loads and
   reconciles the shipped rows — nets shipped by two or more shards are
   the *boundary* hyperedges, exactly the pins each worker scored with
   incomplete information.  Payload bytes are surfaced in the result
   metadata.
3. **Sharded boundary restream** — boundary vertices partition by chunk
   range like everything else, so the fix-up runs across the *same*
   worker pool instead of one serial worker: per pass the driver
   broadcasts a snapshot (alpha, global loads, merged boundary rows),
   every worker restreams its own boundary vertices against it (its
   interior nets stay in its local table, never shipped), and the driver
   merges the returned deltas at the barrier, running the full HyperPRAW
   schedule — alpha tempering while over the imbalance tolerance, then
   refinement with rollback — a single fixed-alpha pass is *not*
   enough: from a balanced merged state the communication term dominates
   and collapses the partition, exactly the failure mode Algorithm 1's
   tempering exists to prevent.

With ``workers=1`` there is one shard covering the whole stream, no
boundary nets and no merge adjustments: the run is operation-for-
operation identical to the base partitioner (asserted by golden tests).
And because the boundary restream is defined by barrier rounds against
snapshots, the fork-less sequential fallback produces identical results
— payload mode changes *bytes shipped*, never assignments (asserted by
the invariant tests).

Stream source: any :class:`~repro.streaming.reader.ChunkStream` works,
but a persistent chunk store
(:class:`~repro.streaming.chunkstore.ChunkStoreStream`) is the natural
partner — each forked worker's ``stream.iter_range`` memory-maps the
store directly in its own process, so shards replay raw binary chunks
with no text parsing and no spill-file re-reads per fork, and the store
manifest carries both the per-chunk pin counts (pin-balanced shards) and
the per-edge degrees (local boundary detection).

Determinism: each shard receives a generator spawned from one
``SeedSequence`` (``seed -> spawn(workers)``), so runs are reproducible
for a fixed ``(seed, workers)``.  Results differ across *worker counts*
— the shard structure changes what each worker sees — not across runs.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.core.base import Partitioner
from repro.core.schedule import TemperingSchedule, initial_alpha_from_counts
from repro.engine import (
    FennelScorer,
    HyperPRAWScorer,
    ShardRounds,
    VertexBlock,
    merge_shard_tables,
    pass_kernel,
    segment_gather_index,
    shard_ranges,
    shard_ranges_by_pins,
)
from repro.core.result import PartitionResult
from repro.hypergraph.model import Hypergraph
from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HypergraphChunkStream,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix
from repro.utils.rng import seed_sequence, spawn_generators

__all__ = ["ShardedStreamer", "shard_stream_task"]


def _boundary_scorer(
    C: np.ndarray, alpha: float, expected_loads: np.ndarray, profile: dict
):
    """The boundary restream's value function, matched to the base's.

    A FENNEL-scored base must be polished with the FENNEL objective —
    fixing it up under Eq. 1 would contaminate the baseline the scorer
    knob exists to reproduce.  Profiles that predate the ``scorer`` key
    default to Eq. 1 (every base before the knob existed).
    """
    if profile.get("scorer") == "fennel":
        return FennelScorer(alpha, profile["gamma"])
    return HyperPRAWScorer(
        C, alpha, expected_loads, profile["presence_threshold"]
    )


def _table_cost(
    counts: np.ndarray,
    cost_matrix: np.ndarray,
    edges: np.ndarray,
    edge_weights: "np.ndarray | None",
) -> float:
    """``sum_e w_e c_e^T C c_e`` over explicit table rows (driver side)."""
    if counts.shape[0] == 0:
        return 0.0
    c = counts.astype(np.float64)
    per_edge = np.einsum("ep,pq,eq->e", c, cost_matrix, c)
    if edge_weights is not None:
        per_edge = per_edge * edge_weights[edges]
    return float(per_edge.sum())


class ShardedStreamer(Partitioner):
    """Parallel sharded wrapper around a streaming partitioner.

    Parameters
    ----------
    base:
        the per-shard partitioner — anything implementing the sharding
        contract (``_run_shard`` / ``_shard_profile``):
        :class:`BufferedRestreamer` (default) or
        :class:`OnePassStreamer`.
    workers:
        number of shards / forked worker processes.  Clamped (with a
        warning) to the stream's chunk count.  On platforms without the
        ``fork`` start method the shards run sequentially in-process
        (identical results, no parallelism).
    boundary_max_iterations:
        cap on boundary-restream schedule passes.  The merge already
        leaves the partition globally consistent and balanced; the
        boundary restream is quality polish whose per-pass barrier eats
        into the parallel speedup, and measured on ``stream_powerlaw_xl``
        the default of 8 captures the cut quality of an unbounded
        schedule to within a fraction of a percent at a quarter of its
        cost.  ``None`` defers to the base partitioner's
        ``max_iterations`` profile; ``0`` disables the fix-up entirely.
    chunk_size:
        chunking used when adapting an in-memory hypergraph.
    payload:
        ``"boundary"`` (default) ships only locally detected boundary
        presence-table rows over the worker pipes; ``"full"`` ships
        whole tables (the v1 behaviour, kept for measurement — the
        assignment is identical either way, only
        ``merge_payload_bytes`` changes).
    shard_by:
        ``"pins"`` (default) guards against stragglers: the chunk-count
        split is replaced with the pin-balanced cut when its per-shard
        pin skew exceeds :data:`PIN_SKEW_THRESHOLD` (and falls back to
        chunk counts when the stream cannot report per-chunk pins);
        ``"chunks"`` always uses the chunk-count split.
    tailored:
        ``True`` (default) ships each shard only the merged presence
        rows for boundary nets *that shard touches* each restream round
        (after a one-time announce round where every shard reports its
        touched set), instead of broadcasting the full boundary
        snapshot.  Bit-identical by construction — each shard overlays
        exactly the rows it would have selected from the broadcast —
        and the per-worker row counts / bytes saved land in the run
        metadata (``tailored_rows`` / ``broadcast_bytes_saved``).
        ``False`` keeps the v1 full-snapshot broadcast, for
        measurement and for the equivalence tests.
    """

    name = "stream-sharded"

    #: default boundary-restream pass cap (see ``boundary_max_iterations``)
    DEFAULT_BOUNDARY_MAX_ITERATIONS = 8

    #: ``shard_by="pins"`` is a *straggler guard*: the chunk-count split
    #: is replaced with the pin-balanced one only when its per-shard pin
    #: skew (max/mean) exceeds this threshold.  Shard boundaries are
    #: also quality-sensitive (a moved cut changes what every worker
    #: streams blind of), so near-uniform streams — where pin balancing
    #: buys almost nothing — keep their boundaries; hub-heavy prefixes
    #: (the motivating case, e.g. ``stream_powerlaw_xl`` at skew ~1.5)
    #: get rebalanced.
    PIN_SKEW_THRESHOLD = 1.25

    def __init__(
        self,
        base: "Partitioner | None" = None,
        *,
        workers: int = 1,
        boundary_max_iterations: "int | None" = DEFAULT_BOUNDARY_MAX_ITERATIONS,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        payload: str = "boundary",
        shard_by: str = "pins",
        tailored: bool = True,
    ) -> None:
        if base is None:
            from repro.streaming.restream import BufferedRestreamer

            base = BufferedRestreamer()
        if not hasattr(base, "_run_shard") or not hasattr(base, "_shard_profile"):
            raise TypeError(
                f"{type(base).__name__} does not implement the sharding "
                "contract (_run_shard/_shard_profile)"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if boundary_max_iterations is not None and boundary_max_iterations < 0:
            raise ValueError(
                "boundary_max_iterations must be >= 0 or None, "
                f"got {boundary_max_iterations}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if payload not in ("boundary", "full"):
            raise ValueError(
                f"payload must be 'boundary' or 'full', got {payload!r}"
            )
        if shard_by not in ("pins", "chunks"):
            raise ValueError(
                f"shard_by must be 'pins' or 'chunks', got {shard_by!r}"
            )
        self.base = base
        self.workers = int(workers)
        self.boundary_max_iterations = boundary_max_iterations
        self.chunk_size = int(chunk_size)
        self.payload = payload
        self.shard_by = shard_by
        self.tailored = bool(tailored)

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Stream an in-memory hypergraph chunk by chunk (adapter path)."""
        self._check_args(hg, num_parts)
        stream = HypergraphChunkStream(hg, self.chunk_size)
        return self.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )

    # ------------------------------------------------------------------
    def _shard_ranges(
        self, stream: ChunkStream
    ) -> "tuple[list[tuple[int, int]], list[int] | None, str]":
        """Shard the chunk index range; returns ``(ranges, pins, how)``.

        ``pins`` is the per-shard pin total when the stream reports
        per-chunk pins, else ``None``.  ``how`` records which split won:
        ``"pins"`` when the chunk-count split would straggle (pin skew
        over :data:`PIN_SKEW_THRESHOLD`) and the pin-balanced cut
        replaced it, ``"chunks"`` otherwise.  ``workers`` greater than
        the chunk count is clamped with a warning — empty shards would
        only fork idle processes.
        """
        n = stream.num_chunks
        workers = self.workers
        if workers > n:
            warnings.warn(
                f"workers={workers} exceeds the stream's {n} chunks; "
                f"clamping to {n} shards",
                RuntimeWarning,
                stacklevel=3,
            )
            workers = max(1, n)
        chunk_pins = stream.chunk_pins() if self.shard_by == "pins" else None
        ranges = shard_ranges(n, workers)
        if chunk_pins is None or len(chunk_pins) != n:
            return ranges, None, "chunks"

        def shard_pins(rs):
            return [int(np.sum(chunk_pins[lo:hi])) for lo, hi in rs]

        def skew(totals):
            mean = sum(totals) / len(totals)
            return max(totals) / mean if mean else 1.0

        pins = shard_pins(ranges)
        if skew(pins) <= self.PIN_SKEW_THRESHOLD:
            # Straggler guard only: the uniform split is already close
            # to pin-balanced, and moving a shard boundary for marginal
            # gain churns what every worker streams blind of.
            return ranges, pins, "chunks"
        ranges = shard_ranges_by_pins(chunk_pins, workers)
        return ranges, shard_pins(ranges), "pins"

    def partition_stream(
        self,
        stream: ChunkStream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Shard, stream in parallel, merge boundary-only payloads, then
        restream the boundary across the same worker pool."""
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > stream.num_vertices:
            raise ValueError(
                f"cannot split {stream.num_vertices} vertices into {num_parts} parts"
            )
        t_start = time.perf_counter()
        p = num_parts
        C, aware = resolve_cost_matrix(cost_matrix, p)
        profile = self.base._shard_profile()
        ranges, shard_pins, sharded_by = self._shard_ranges(stream)
        nshards = len(ranges)
        seed_root = seed_sequence(seed)
        rngs = spawn_generators(seed_root, nshards)
        counts = (stream.num_vertices, stream.num_edges)
        vertex_weights = stream.vertex_weights
        edge_w = stream.edge_weights if profile["use_edge_weights"] else None
        vertex_bounds = [
            (stream.chunk_bounds(lo)[0], stream.chunk_bounds(hi - 1)[1])
            for lo, hi in ranges
        ]
        boundary_ship = self.payload == "boundary" and nshards > 1
        edge_degrees = None
        if boundary_ship:
            # Local boundary detection needs global degrees; degreed
            # readers record them at ingest, anything else pays one
            # extra (read-only) counting pass.
            edge_degrees = stream.edge_degrees
            if edge_degrees is None:
                edge_degrees = stream.compute_edge_degrees()
        total_weight = stream.total_vertex_weight

        shard_weights = [
            float(vertex_weights[a:b].sum()) for a, b in vertex_bounds
        ]
        shard_ctx = {
            "ranges": ranges,
            "vertex_bounds": vertex_bounds,
            "shard_weights": shard_weights,
            "num_parts": p,
            "C": C,
            "counts": counts,
            "edge_w": edge_w,
            "rngs": rngs,
            "profile": profile,
            "edge_degrees": edge_degrees,
            "boundary_ship": boundary_ship,
            "total_weight": total_weight,
        }
        pool = self._make_pool(stream, seed_root, shard_ctx)
        try:
            results = pool.start()

            # Phase 2: merge — loads sum exactly; shipped rows reconcile;
            # nets shipped by two or more shards flag the boundary.
            assignment = np.full(stream.num_vertices, -1, dtype=np.int64)
            for (v_lo, v_hi), res in zip(vertex_bounds, results):
                assignment[v_lo:v_hi] = res["assignment"]
            global_loads = np.sum(
                [res["loads"] for res in results], axis=0
            ).astype(np.float64)
            all_edges, all_counts, boundary = merge_shard_tables(
                [(res["edges"], res["table"]) for res in results], p
            )
            merge_payload_bytes = sum(res["payload_bytes"] for res in results)
            full_payload_bytes = sum(
                res["full_payload_bytes"] for res in results
            )
            # Kernel observability: phase-1 shard passes all resolve the
            # same way (same base recipe), so the mode is shared; wall
            # time in the kernel sums across shards (it overlaps under
            # fork — a utilisation meter, not a latency).
            shard_pass_seconds = sum(
                res["stats"].get("pass_seconds", 0.0) for res in results
            )
            kernel_mode = results[0]["stats"].get("kernel_mode", "python")

            # Phase 3: sharded boundary restream — snapshot-table rounds
            # with a merge barrier per pass, schedule run by the driver.
            max_boundary = (
                self.boundary_max_iterations
                if self.boundary_max_iterations is not None
                else profile["max_iterations"]
            )
            boundary_iterations = 0
            boundary_payload_bytes = 0
            rollback = False
            sels: "list[np.ndarray] | None" = None
            broadcast_saved = [0] * nshards
            # Merged global rows for the boundary nets — the restream
            # rounds' shared snapshot, and the driver's share of the
            # monitored cost either way.
            bound_counts = all_counts[
                np.searchsorted(all_edges, boundary)
            ].copy()
            if nshards > 1 and boundary.size and max_boundary > 0:
                alpha0 = initial_alpha_from_counts(
                    counts[0], counts[1], p, profile["alpha_mode"]
                )
                schedule = TemperingSchedule(
                    alpha=alpha0,
                    tempering_update=profile["alpha_update"],
                    refinement_factor=profile["refinement_factor"],
                )
                # What the v1 full-snapshot broadcast would ship to one
                # shard each round — the yardstick tailoring is measured
                # against (broadcast_bytes_saved metadata).
                snapshot_bytes = (
                    boundary.nbytes
                    + bound_counts.nbytes
                    + global_loads.nbytes
                )
                if self.tailored:
                    # One-time announce round: every shard reports which
                    # boundary rows it touches; each later round ships
                    # only those rows instead of the full snapshot.
                    announce = pool.exchange(
                        [("boundary", {"boundary_edges": boundary})]
                        * nshards
                    )
                    sels = [reply["edge_sel"] for reply in announce]
                    for reply in announce:
                        boundary_payload_bytes += (
                            boundary.nbytes + reply["payload_bytes"]
                        )
                best_cost = np.inf
                record_best = False
                damp = True  # over tolerance until a pass proves otherwise
                for it in range(1, max_boundary + 1):
                    loads_snap = global_loads.copy()
                    base_ctl = {
                        "alpha": schedule.alpha,
                        "loads": loads_snap,
                        "record_best": record_best,
                        "damp": damp,
                    }
                    if sels is not None:
                        messages = [
                            (
                                "pass",
                                dict(base_ctl, rows=bound_counts[sels[k]]),
                            )
                            for k in range(nshards)
                        ]
                    else:
                        ctl = dict(
                            base_ctl,
                            boundary_edges=boundary,
                            boundary_counts=bound_counts.copy(),
                        )
                        messages = [("pass", ctl)] * nshards
                    record_best = False
                    replies = pool.exchange(messages)
                    boundary_iterations = it
                    for k, reply in enumerate(replies):
                        global_loads += reply["delta_loads"]
                        sel = sels[k] if sels is not None else reply["edge_sel"]
                        bound_counts[sel] += reply["delta_counts"]
                        if sels is not None:
                            sent = (
                                messages[k][1]["rows"].nbytes
                                + loads_snap.nbytes
                            )
                            broadcast_saved[k] += snapshot_bytes - sent
                        else:
                            sent = snapshot_bytes
                        boundary_payload_bytes += (
                            sent + reply["payload_bytes"]
                        )
                    # Capped tables can under-report phase-1 rows, so a
                    # real move off an undercounted part may dip below
                    # zero — clamp, exactly as the bounded state does.
                    np.maximum(bound_counts, 0, out=bound_counts)
                    imb = float(
                        global_loads.max() / (global_loads.sum() / p)
                    )
                    # Damping is a tempering-phase device: once within
                    # tolerance, refinement's comm-driven moves are small
                    # and should score undamped (damping there just
                    # suppresses cut improvements); it re-engages the
                    # moment balance is lost again.
                    damp = imb > profile["imbalance_tolerance"]
                    if damp:
                        schedule.after_pass(within_tolerance=False)
                        continue
                    cost = _table_cost(
                        bound_counts, C, boundary, edge_w
                    ) + sum(reply["interior_cost"] for reply in replies)
                    if not profile["refinement"]:
                        break  # the current pass is the answer
                    if cost < best_cost:
                        best_cost = cost
                        record_best = True  # snapshot before the next pass
                        schedule.after_pass(within_tolerance=True)
                        continue
                    rollback = True  # refinement stopped improving
                    break

            finals = pool.stop(
                [("stop", {"rollback": rollback, "boundary_edges": boundary})]
                * nshards
            )
        finally:
            pool.close()

        boundary_vertices = 0
        interior_cost = 0.0
        evictions = 0
        peak_tracked = 0
        for (v_lo, v_hi), fin in zip(vertex_bounds, finals):
            assignment[v_lo:v_hi] = fin["assignment"]
            global_loads += fin["delta_loads"]
            if bound_counts.shape[0]:
                bound_counts[fin["edge_sel"]] += fin["delta_counts"]
            boundary_vertices += fin["boundary_vertices"]
            interior_cost += fin["interior_cost"]
            evictions += fin["evictions"]
            peak_tracked = max(peak_tracked, fin["peak_tracked"])
        if bound_counts.shape[0]:
            np.maximum(bound_counts, 0, out=bound_counts)

        monitored_cost = (
            _table_cost(bound_counts, C, boundary, stream.edge_weights)
            + interior_cost
        )
        imbalance = float(global_loads.max() / (global_loads.sum() / p))

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "base_algorithm": self.base.name,
                "workers": self.workers,
                "shards": nshards,
                "shard_chunk_ranges": ranges,
                "sharded_by": sharded_by,
                "shard_pins": shard_pins,
                "shard_pin_skew": (
                    float(max(shard_pins) / (sum(shard_pins) / len(shard_pins)))
                    if shard_pins and sum(shard_pins)
                    else None
                ),
                "payload": self.payload,
                "tailored": self.tailored,
                "tailored_rows": (
                    [int(sel.size) for sel in sels]
                    if sels is not None
                    else None
                ),
                "broadcast_bytes_saved": (
                    [int(b) for b in broadcast_saved]
                    if sels is not None
                    else None
                ),
                "merge_payload_bytes": int(merge_payload_bytes),
                "merge_full_payload_bytes": int(full_payload_bytes),
                "boundary_payload_bytes": int(boundary_payload_bytes),
                "boundary_edges": int(boundary.size),
                "boundary_vertices": int(boundary_vertices),
                "boundary_iterations": int(boundary_iterations),
                "max_tracked_edges": profile["max_tracked_edges"],
                "peak_tracked_edges": peak_tracked,
                "evictions": evictions,
                "monitored_pc_cost": monitored_cost,
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": aware,
                "imbalance": imbalance,
                "kernel_mode": kernel_mode,
                "pass_seconds": shard_pass_seconds,
                "wall_time_s": time.perf_counter() - t_start,
                **pool.run_metadata(),
            },
        )

    # ------------------------------------------------------------------
    def _make_pool(self, stream: ChunkStream, seed, ctx: dict):
        """Build the round-driving pool for this run (override point).

        The default is the forked/sequential :class:`~repro.engine.
        parallel.ShardRounds` over in-process shard generators; the
        distributed streamer (:mod:`repro.cluster`) overrides this to
        drive the *same* generators on remote workers over sockets.
        ``ctx`` carries everything a shard needs (see
        ``partition_stream``); ``seed`` is the resolved root
        ``SeedSequence`` the per-shard ``ctx["rngs"]`` were spawned
        from, so remote pools can ship its entropy and re-derive the
        identical per-shard generators on other hosts.
        """
        del seed  # the spawned generators in ctx already encode it
        tasks = self._local_tasks(stream, ctx)
        return ShardRounds(tasks, self.workers)

    def _local_tasks(self, stream: ChunkStream, ctx: dict) -> list:
        """Zero-arg callables returning the per-shard generators.

        Each task closes over the live stream object — fork-inherited,
        never pickled — and exchanges only plain arrays and scalars.
        """

        def make(k):
            lo, hi = ctx["ranges"][k]
            v_lo, v_hi = ctx["vertex_bounds"][k]
            return lambda: shard_stream_task(
                self.base,
                stream,
                lo=lo,
                hi=hi,
                v_lo=v_lo,
                v_hi=v_hi,
                num_parts=ctx["num_parts"],
                C=ctx["C"],
                counts=ctx["counts"],
                shard_weight=ctx["shard_weights"][k],
                total_weight=ctx["total_weight"],
                nshards=len(ctx["ranges"]),
                edge_w=ctx["edge_w"],
                final_edge_weights=stream.edge_weights,
                rng=ctx["rngs"][k],
                profile=ctx["profile"],
                edge_degrees=ctx["edge_degrees"],
                boundary_ship=ctx["boundary_ship"],
            )

        return [make(k) for k in range(len(ctx["ranges"]))]


def shard_stream_task(
    base,
    stream: ChunkStream,
    *,
    lo: int,
    hi: int,
    v_lo: int,
    v_hi: int,
    num_parts: int,
    C: np.ndarray,
    counts: "tuple[int, int]",
    shard_weight: float,
    total_weight: float,
    nshards: int,
    edge_w: "np.ndarray | None",
    final_edge_weights: "np.ndarray | None",
    rng,
    profile: dict,
    edge_degrees: "np.ndarray | None",
    boundary_ship: bool,
):
    """One shard's generator: stream, ship, then answer restream rounds.

    Protocol (driven by :class:`~repro.engine.parallel.ShardRounds` in
    the forked path, or by a remote :mod:`repro.cluster` worker over a
    socket): the first yield is the phase-1 payload; each
    ``("pass", ctl)`` message answers with that round's deltas;
    ``("stop", ctl)`` triggers the optional rollback and returns the
    final payload.  Everything the shard needs arrives as explicit
    arguments — ``stream`` only has to provide ``iter_range`` and
    ``num_vertices`` — which is what lets a worker process on another
    host run the *same* code against a socket-fed chunk stream and
    produce bit-identical results.
    """
    p = num_parts

    local = np.full(stream.num_vertices, -1, dtype=np.int64)
    state, stats = base._run_shard(
        stream.iter_range(lo, hi),
        p,
        C,
        local,
        stream_counts=counts,
        shard_weight=shard_weight,
        edge_weights=edge_w,
        rng=rng,
    )
    edges, table = state.export_table()
    loads_bytes = state.loads.nbytes
    full_bytes = edges.nbytes + table.nbytes + loads_bytes
    if boundary_ship:
        # Local boundary detection: a net whose locally observed
        # pins fall short of its global degree has pins in some
        # other shard.  LRU undercounts only widen the candidate
        # set (safe), and single-shard candidates are discarded
        # by the driver's occurrence >= 2 rule.
        ship = table.sum(axis=1) < edge_degrees[edges]
        ship_edges, ship_table = edges[ship], table[ship]
    else:
        ship_edges, ship_table = edges, table
    msg = yield {
        "assignment": local[v_lo:v_hi],
        "loads": state.loads.copy(),
        "edges": ship_edges,
        "table": ship_table,
        "payload_bytes": int(
            ship_edges.nbytes + ship_table.nbytes + loads_bytes
        ),
        "full_payload_bytes": int(full_bytes),
        "stats": stats,
    }

    # -------- sharded boundary restream rounds --------
    block: "VertexBlock | None" = None
    scaled_block: "VertexBlock | None" = None
    my_edges = np.empty(0, dtype=np.int64)
    my_sel = np.empty(0, dtype=np.int64)
    pin_rows = np.empty(0, dtype=np.int64)
    pin_owner = np.empty(0, dtype=np.int64)
    best: "np.ndarray | None" = None
    loads_after = state.loads.copy()

    boundary = np.empty(0, dtype=np.int64)

    def build_block(boundary_edges):
        """One-time boundary block setup (announce round or lazy v1)."""
        nonlocal block, scaled_block, my_edges, my_sel, pin_rows, pin_owner
        nonlocal boundary
        boundary = boundary_edges
        block = _boundary_block(stream, boundary, lo, hi)
        # Boundary nets with pins in this shard are exactly
        # the boundary nets its boundary vertices touch.
        my_edges = (
            np.intersect1d(boundary, block.vertex_edges)
            if block.num_vertices
            else np.empty(0, dtype=np.int64)
        )
        my_sel = np.searchsorted(boundary, my_edges)
        # Per-pin scatter indices for move_deltas: which
        # boundary row and which block vertex each pin of
        # the block belongs to.
        pin_mask = np.isin(block.vertex_edges, my_edges)
        pin_rows = np.searchsorted(my_edges, block.vertex_edges[pin_mask])
        pin_owner = np.repeat(
            np.arange(block.num_vertices, dtype=np.int64),
            np.diff(block.vertex_ptr),
        )[pin_mask]
        # The fix-up scores against global targets, not the
        # shard-scoped ones phase 1 streamed with.
        state.expected_loads = np.full(p, total_weight / p)
        # Mean-field damping: every shard restreams against
        # the same loads snapshot simultaneously, so each
        # scores its own moves scaled by the shard count —
        # anticipating that the other shards make similar
        # moves — or the synchronised overshoot oscillates
        # and tempering never reaches tolerance.  Deltas are
        # normalised back before they reach the driver.
        scaled_block = VertexBlock(
            ids=block.ids,
            vertex_ptr=block.vertex_ptr,
            vertex_edges=block.vertex_edges,
            vertex_weights=block.vertex_weights * nshards,
        )

    def move_deltas(prev: np.ndarray, new: np.ndarray) -> np.ndarray:
        """Boundary-row deltas from the block's actual moves.

        Derived from the assignment change, *not* from table
        rows: a capped LRU table can evict an overlaid boundary
        row mid-pass, and a row-difference would then report
        ``-snapshot`` and erase real pins from the driver's
        merged counts.  Moves are eviction-proof.
        """
        delta = np.zeros((my_edges.size, p), dtype=np.int64)
        if pin_rows.size:
            np.subtract.at(delta, (pin_rows, prev[pin_owner]), 1)
            np.add.at(delta, (pin_rows, new[pin_owner]), 1)
        return delta

    tailored = False
    while msg[0] in ("boundary", "pass"):
        if msg[0] == "boundary":
            # Announce round (tailored mode): build the block once and
            # report the touched boundary rows; every later round ships
            # only those rows back.
            tailored = True
            build_block(msg[1]["boundary_edges"])
            msg = yield {
                "edge_sel": my_sel,
                "payload_bytes": int(my_sel.nbytes),
            }
            continue
        ctl = msg[1]
        if block is None:
            build_block(ctl["boundary_edges"])
        if ctl["record_best"] and block.num_vertices:
            best = local[block.ids].copy()
        # Overlay the driver's merged snapshot: global counts for
        # the boundary nets this shard touches, global loads.  A
        # tailored round ships exactly those rows (``rows``); a v1
        # broadcast ships the full snapshot and we select our slice.
        rows = ctl["rows"] if tailored else ctl["boundary_counts"][my_sel]
        state.set_rows(my_edges, rows)
        state.loads[:] = ctl["loads"]
        prev = local[block.ids].copy() if block.num_vertices else None
        damp = ctl["damp"]
        if block.num_vertices:
            scorer = _boundary_scorer(
                C, ctl["alpha"], state.expected_loads, profile
            )
            pass_kernel(
                (scaled_block if damp else block,),
                state, scorer, local, restream=True,
                score_mode="vertex",
            )
        if damp:
            # Normalise the scaled movement back to true weight.
            state.loads[:] = ctl["loads"] + (
                state.loads - ctl["loads"]
            ) / nshards
        loads_after = state.loads.copy()
        delta_counts = (
            move_deltas(prev, local[block.ids])
            if block.num_vertices
            else np.zeros((0, p), dtype=np.int64)
        )
        reply = {
            "delta_loads": loads_after - ctl["loads"],
            "delta_counts": delta_counts,
            "interior_cost": state.pc_cost(
                C, edge_weights=edge_w, exclude_edges=boundary
            ),
            "payload_bytes": int(
                delta_counts.nbytes + loads_after.nbytes
            ),
        }
        if not tailored:
            # v1 rounds ship the row selector every pass; tailored
            # rounds announced it once, so the driver already has it.
            reply["edge_sel"] = my_sel
            reply["payload_bytes"] += int(my_sel.nbytes)
        msg = yield reply

    # -------- stop: optional rollback, final payload --------
    ctl = msg[1]
    boundary = ctl["boundary_edges"]
    prev = (
        local[block.ids].copy()
        if block is not None and block.num_vertices
        else None
    )
    if (
        ctl["rollback"]
        and best is not None
        and block is not None
        and block.num_vertices
    ):
        current = local[block.ids]
        for i in np.flatnonzero(current != best):
            v = int(block.ids[i])
            e_v = block.edges_of(i)
            state.remove(e_v, int(current[i]), block.vertex_weights[i])
            state.place(e_v, int(best[i]), block.vertex_weights[i])
            local[v] = int(best[i])
    return {
        "assignment": local[v_lo:v_hi],
        "delta_loads": state.loads - loads_after,
        "edge_sel": my_sel,
        "delta_counts": (
            move_deltas(prev, local[block.ids])
            if prev is not None
            else np.zeros((0, p), dtype=np.int64)
        ),
        "interior_cost": state.pc_cost(
            C,
            edge_weights=final_edge_weights,
            exclude_edges=boundary,
        ),
        "boundary_vertices": (
            int(block.num_vertices) if block is not None else 0
        ),
        "evictions": state.evictions,
        "peak_tracked": state.peak_tracked_edges,
    }


def _boundary_block(
    stream: ChunkStream, boundary_edges: np.ndarray, lo: int, hi: int
) -> VertexBlock:
    """Collect this shard's vertices incident to a boundary net.

    One extra (cheap, read-only) pass over chunks ``[lo, hi)``;
    ``boundary_edges`` must be sorted ascending (as
    :func:`~repro.engine.parallel.merge_shard_tables` returns it).
    """
    ids_parts: "list[np.ndarray]" = []
    deg_parts: "list[np.ndarray]" = []
    edge_parts: "list[np.ndarray]" = []
    weight_parts: "list[np.ndarray]" = []
    for chunk in stream.iter_range(lo, hi):
        if chunk.vertex_edges.size == 0:
            continue
        hit = np.isin(chunk.vertex_edges, boundary_edges)
        if not hit.any():
            continue
        degs = np.diff(chunk.vertex_ptr)
        nonzero = degs > 0
        vert_hit = np.zeros(chunk.num_vertices, dtype=bool)
        # reduceat mis-handles empty segments; non-isolated starts only.
        vert_hit[nonzero] = np.logical_or.reduceat(
            hit, chunk.vertex_ptr[:-1][nonzero]
        )
        sel = np.flatnonzero(vert_hit)
        if sel.size == 0:
            continue
        ids_parts.append(chunk.start + sel)
        weight_parts.append(chunk.vertex_weights[sel])
        seg_degs = degs[sel]
        deg_parts.append(seg_degs)
        edge_parts.append(
            chunk.vertex_edges[
                segment_gather_index(chunk.vertex_ptr[:-1][sel], seg_degs)
            ]
        )
    if not ids_parts:
        empty = np.empty(0, dtype=np.int64)
        return VertexBlock(
            ids=empty, vertex_ptr=np.zeros(1, dtype=np.int64),
            vertex_edges=empty, vertex_weights=np.empty(0),
        )
    degs = np.concatenate(deg_parts)
    ptr = np.zeros(degs.size + 1, dtype=np.int64)
    np.cumsum(degs, out=ptr[1:])
    return VertexBlock(
        ids=np.concatenate(ids_parts),
        vertex_ptr=ptr,
        vertex_edges=np.concatenate(edge_parts),
        vertex_weights=np.concatenate(weight_parts),
    )
