"""Parallel sharded streaming (ROADMAP item (a)).

:class:`ShardedStreamer` scales a streaming partitioner across CPU cores
in three phases:

1. **Shard** — the chunk stream is split into ``workers`` contiguous
   chunk ranges (:func:`repro.engine.blocks.shard_ranges`).  Each shard
   is streamed by its *base* partitioner (:class:`~repro.streaming.
   restream.BufferedRestreamer` by default, or a
   :class:`~repro.streaming.onepass.OnePassStreamer`) in a forked worker
   process, against its own snapshot presence table and a shard-scoped
   load target (``shard_weight / p``) — workers never synchronise, which
   is where the speedup comes from and why they stream blind of each
   other's placements.
2. **Merge** — per-shard loads are summed and the presence tables
   reconciled into one bounded :class:`~repro.streaming.state.
   StreamingState` (:func:`repro.engine.parallel.merge_shard_tables`).
   Nets tracked by two or more shards are the *boundary* hyperedges —
   exactly the pins whose placement each worker scored with incomplete
   information.
3. **Boundary restream** — a final single worker re-streams every vertex
   incident to a boundary net against the merged global state, running
   the full HyperPRAW schedule over the boundary window (Eq. 1 kernel
   passes with alpha tempering while over the imbalance tolerance, then
   refinement with rollback) — a single fixed-alpha pass is *not*
   enough: from a balanced merged state the communication term dominates
   and collapses the partition, exactly the failure mode Algorithm 1's
   tempering exists to prevent.

With ``workers=1`` there is one shard covering the whole stream, no
boundary nets and no merge adjustments: the run is operation-for-
operation identical to the base partitioner (asserted by tests).

Stream source: any :class:`~repro.streaming.reader.ChunkStream` works,
but a persistent chunk store
(:class:`~repro.streaming.chunkstore.ChunkStoreStream`) is the natural
partner — each forked worker's ``stream.iter_range`` memory-maps the
store directly in its own process, so shards replay raw binary chunks
with no text parsing and no spill-file re-reads per fork (and the
driver's extra boundary-collection pass costs page faults, not parsing).

Determinism: each shard receives a generator spawned from one
``SeedSequence`` (``seed -> spawn(workers)``), so runs are reproducible
for a fixed ``(seed, workers)``.  Results differ across *worker counts*
— the shard structure changes what each worker sees — not across runs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.base import Partitioner
from repro.core.schedule import TemperingSchedule, initial_alpha_from_counts
from repro.engine import (
    HyperPRAWScorer,
    VertexBlock,
    merge_shard_tables,
    pass_kernel,
    run_tasks,
    segment_gather_index,
    shard_ranges,
)
from repro.core.result import PartitionResult
from repro.hypergraph.model import Hypergraph
from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HypergraphChunkStream,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix
from repro.utils.rng import spawn_generators

__all__ = ["ShardedStreamer"]


class ShardedStreamer(Partitioner):
    """Parallel sharded wrapper around a streaming partitioner.

    Parameters
    ----------
    base:
        the per-shard partitioner — anything implementing the sharding
        contract (``_run_shard`` / ``_shard_profile``):
        :class:`BufferedRestreamer` (default) or
        :class:`OnePassStreamer`.
    workers:
        number of shards / forked worker processes.  On platforms
        without the ``fork`` start method the shards run sequentially
        in-process (identical results, no parallelism).
    boundary_max_iterations:
        cap on boundary-restream schedule passes.  The merge already
        leaves the partition globally consistent and balanced; the
        boundary restream is quality polish whose serial cost eats into
        the parallel speedup, and measured on ``stream_powerlaw_xl`` the
        default of 8 captures the cut quality of an unbounded schedule
        to within a fraction of a percent at a quarter of its cost.
        ``None`` defers to the base partitioner's ``max_iterations``
        profile; ``0`` disables the fix-up entirely.
    chunk_size:
        chunking used when adapting an in-memory hypergraph.
    """

    name = "stream-sharded"

    #: default boundary-restream pass cap (see ``boundary_max_iterations``)
    DEFAULT_BOUNDARY_MAX_ITERATIONS = 8

    def __init__(
        self,
        base: "Partitioner | None" = None,
        *,
        workers: int = 1,
        boundary_max_iterations: "int | None" = DEFAULT_BOUNDARY_MAX_ITERATIONS,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if base is None:
            from repro.streaming.restream import BufferedRestreamer

            base = BufferedRestreamer()
        if not hasattr(base, "_run_shard") or not hasattr(base, "_shard_profile"):
            raise TypeError(
                f"{type(base).__name__} does not implement the sharding "
                "contract (_run_shard/_shard_profile)"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if boundary_max_iterations is not None and boundary_max_iterations < 0:
            raise ValueError(
                "boundary_max_iterations must be >= 0 or None, "
                f"got {boundary_max_iterations}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.base = base
        self.workers = int(workers)
        self.boundary_max_iterations = boundary_max_iterations
        self.chunk_size = int(chunk_size)

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Stream an in-memory hypergraph chunk by chunk (adapter path)."""
        self._check_args(hg, num_parts)
        stream = HypergraphChunkStream(hg, self.chunk_size)
        return self.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )

    def partition_stream(
        self,
        stream: ChunkStream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Shard, stream in parallel, merge, restream the boundary."""
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > stream.num_vertices:
            raise ValueError(
                f"cannot split {stream.num_vertices} vertices into {num_parts} parts"
            )
        t_start = time.perf_counter()
        p = num_parts
        C, aware = resolve_cost_matrix(cost_matrix, p)
        profile = self.base._shard_profile()
        ranges = shard_ranges(stream.num_chunks, self.workers)
        rngs = spawn_generators(seed, len(ranges))
        counts = (stream.num_vertices, stream.num_edges)
        vertex_weights = stream.vertex_weights
        edge_w = stream.edge_weights if profile["use_edge_weights"] else None
        vertex_bounds = [
            (stream.chunk_bounds(lo)[0], stream.chunk_bounds(hi - 1)[1])
            for lo, hi in ranges
        ]

        # Phase 1: stream disjoint chunk ranges (forked workers).  Each
        # task closes over the live stream object — fork-inherited, never
        # pickled — and returns only plain arrays.
        def make_task(k: int):
            def task() -> dict:
                lo, hi = ranges[k]
                v_lo, v_hi = vertex_bounds[k]
                shard_weight = float(vertex_weights[v_lo:v_hi].sum())
                local = np.full(stream.num_vertices, -1, dtype=np.int64)
                state, stats = self.base._run_shard(
                    stream.iter_range(lo, hi),
                    p,
                    C,
                    local,
                    stream_counts=counts,
                    shard_weight=shard_weight,
                    edge_weights=edge_w,
                    rng=rngs[k],
                )
                edges, table = state.export_table()
                return {
                    "assignment": local[v_lo:v_hi],
                    "loads": state.loads,
                    "edges": edges,
                    "table": table,
                    "evictions": state.evictions,
                    "peak_tracked": state.peak_tracked_edges,
                    "stats": stats,
                }

            return task

        results = run_tasks([make_task(k) for k in range(len(ranges))], self.workers)

        # Phase 2: merge — loads sum exactly; presence tables reconcile
        # into one global table; multi-shard nets flag the boundary.
        assignment = np.full(stream.num_vertices, -1, dtype=np.int64)
        for (v_lo, v_hi), res in zip(vertex_bounds, results):
            assignment[v_lo:v_hi] = res["assignment"]
        merged = StreamingState(
            p,
            expected_loads=np.full(p, stream.total_vertex_weight / p),
            max_tracked_edges=profile["max_tracked_edges"],
        )
        edges, table, boundary = merge_shard_tables(
            [(res["edges"], res["table"]) for res in results], p
        )
        merged.seed_table(edges, table)
        merged.loads[:] = np.sum([res["loads"] for res in results], axis=0)

        # Phase 3: single-worker restream of the boundary vertices, under
        # the full HyperPRAW schedule (tempering + refinement rollback).
        boundary_vertices = 0
        boundary_iterations = 0
        max_boundary = (
            self.boundary_max_iterations
            if self.boundary_max_iterations is not None
            else profile["max_iterations"]
        )
        if len(ranges) > 1 and boundary.size and max_boundary > 0:
            block = _boundary_block(stream, boundary)
            boundary_vertices = block.num_vertices
            alpha0 = initial_alpha_from_counts(
                counts[0], counts[1], p, profile["alpha_mode"]
            )
            boundary_iterations = _restream_boundary(
                block, merged, C, assignment, alpha0, profile,
                max_boundary, edge_w,
            )

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "base_algorithm": self.base.name,
                "workers": self.workers,
                "shards": len(ranges),
                "shard_chunk_ranges": ranges,
                "boundary_edges": int(boundary.size),
                "boundary_vertices": int(boundary_vertices),
                "boundary_iterations": int(boundary_iterations),
                "max_tracked_edges": profile["max_tracked_edges"],
                "peak_tracked_edges": max(
                    [merged.peak_tracked_edges]
                    + [res["peak_tracked"] for res in results]
                ),
                "evictions": merged.evictions
                + sum(res["evictions"] for res in results),
                "monitored_pc_cost": merged.pc_cost(
                    C, edge_weights=stream.edge_weights
                ),
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": aware,
                "imbalance": merged.imbalance(),
                "wall_time_s": time.perf_counter() - t_start,
            },
        )


def _restream_boundary(
    block: VertexBlock,
    state: StreamingState,
    C: np.ndarray,
    assignment: np.ndarray,
    alpha0: float,
    profile: dict,
    max_iterations: int,
    edge_weights: "np.ndarray | None",
) -> int:
    """Algorithm 1's outer loop over the boundary window.

    Kernel passes with alpha tempering while over the imbalance
    tolerance, then refinement while the monitored cost improves, with
    rollback to the best pass when it degrades — the same schedule the
    restreamer runs per window.  Returns the pass count.
    """
    schedule = TemperingSchedule(
        alpha=alpha0,
        tempering_update=profile["alpha_update"],
        refinement_factor=profile["refinement_factor"],
    )
    best: "np.ndarray | None" = None
    best_cost = np.inf
    iterations = 0
    for it in range(1, max_iterations + 1):
        scorer = HyperPRAWScorer(
            C, schedule.alpha, state.expected_loads,
            profile["presence_threshold"],
        )
        pass_kernel(
            (block,), state, scorer, assignment, restream=True,
            score_mode="vertex",
        )
        iterations = it
        within = state.imbalance() <= profile["imbalance_tolerance"]
        if not within:
            schedule.after_pass(within_tolerance=False)
            continue
        cost = state.pc_cost(C, edge_weights=edge_weights)
        if not profile["refinement"]:
            best, best_cost = assignment[block.ids].copy(), cost
            break
        if cost < best_cost:
            best, best_cost = assignment[block.ids].copy(), cost
            schedule.after_pass(within_tolerance=True)
            continue
        break  # refinement stopped improving: roll back below
    if best is not None:
        current = assignment[block.ids]
        for i in np.flatnonzero(current != best):
            v = int(block.ids[i])
            edges = block.edges_of(i)
            state.remove(edges, int(current[i]), block.vertex_weights[i])
            state.place(edges, int(best[i]), block.vertex_weights[i])
            assignment[v] = int(best[i])
    return iterations


def _boundary_block(stream: ChunkStream, boundary_edges: np.ndarray) -> VertexBlock:
    """Collect every vertex incident to a boundary net into one block.

    One extra (cheap, read-only) pass over the stream; ``boundary_edges``
    must be sorted ascending (as :func:`merge_shard_tables` returns it).
    """
    ids_parts: "list[np.ndarray]" = []
    deg_parts: "list[np.ndarray]" = []
    edge_parts: "list[np.ndarray]" = []
    weight_parts: "list[np.ndarray]" = []
    for chunk in stream:
        if chunk.vertex_edges.size == 0:
            continue
        hit = np.isin(chunk.vertex_edges, boundary_edges)
        if not hit.any():
            continue
        degs = np.diff(chunk.vertex_ptr)
        nonzero = degs > 0
        vert_hit = np.zeros(chunk.num_vertices, dtype=bool)
        # reduceat mis-handles empty segments; non-isolated starts only.
        vert_hit[nonzero] = np.logical_or.reduceat(
            hit, chunk.vertex_ptr[:-1][nonzero]
        )
        sel = np.flatnonzero(vert_hit)
        if sel.size == 0:
            continue
        ids_parts.append(chunk.start + sel)
        weight_parts.append(chunk.vertex_weights[sel])
        seg_degs = degs[sel]
        deg_parts.append(seg_degs)
        edge_parts.append(
            chunk.vertex_edges[
                segment_gather_index(chunk.vertex_ptr[:-1][sel], seg_degs)
            ]
        )
    if not ids_parts:
        empty = np.empty(0, dtype=np.int64)
        return VertexBlock(
            ids=empty, vertex_ptr=np.zeros(1, dtype=np.int64),
            vertex_edges=empty, vertex_weights=np.empty(0),
        )
    degs = np.concatenate(deg_parts)
    ptr = np.zeros(degs.size + 1, dtype=np.int64)
    np.cumsum(degs, out=ptr[1:])
    return VertexBlock(
        ids=np.concatenate(ids_parts),
        vertex_ptr=ptr,
        vertex_edges=np.concatenate(edge_parts),
        vertex_weights=np.concatenate(weight_parts),
    )
