"""Out-of-core chunked hypergraph ingestion.

The in-memory readers of :mod:`repro.hypergraph.io` materialise the full
pin structure before any partitioner runs, which caps the instance size at
available RAM.  This module reads the same formats **without ever holding
the whole pin array in memory**:

1. **Ingest** (one pass over the source file): each hyperedge line is
   parsed and validated with the *same* helpers as the strict in-memory
   readers, then its pins are bucketed by destination vertex chunk
   (``v // chunk_size``) through a bounded in-memory buffer that spills to
   per-chunk temporary files on disk.  Peak resident pins during ingest is
   the buffer size, independent of the file size.
2. **Iteration**: chunks are loaded one at a time from their spill files
   and yielded as :class:`VertexChunk` CSR slices (vertex -> incident
   hyperedge ids, exactly the direction the streaming partitioners
   consume).  A stream is re-iterable — restreaming passes re-read the
   spill files rather than caching chunks.

Per-vertex and per-hyperedge *scalar* metadata (weights, the drop-empty
renumbering map) is O(|V| + |E|) and is kept in memory: the assignment
vector itself is already O(|V|), so the memory bound this module
guarantees is on the O(pins) incidence structure, which dominates real
instances (the paper's Table 1 instances have 4–400 pins per vertex).

:func:`assemble` concatenates a stream back into an in-memory
:class:`~repro.hypergraph.model.Hypergraph`; equivalence tests use it to
check that chunked and whole-file reads agree bit for bit.
"""

from __future__ import annotations

import io
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.hypergraph.io import (
    HypergraphFormatError,
    _data_lines,
    parse_hmetis_edge_line,
    parse_hmetis_header,
    parse_hmetis_vertex_weight,
)
from repro.hypergraph.model import Hypergraph

__all__ = [
    "VertexChunk",
    "ChunkStream",
    "HmetisChunkStream",
    "MatrixMarketChunkStream",
    "HypergraphChunkStream",
    "stream_hmetis",
    "stream_matrix_market",
    "assemble",
    "DEFAULT_CHUNK_SIZE",
]

#: Default vertices per chunk — large enough to amortise NumPy call
#: overhead in the partitioners, small enough that a chunk's pins are a
#: tiny fraction of any interesting instance.
DEFAULT_CHUNK_SIZE = 1024

#: Default ingest buffer, in pins (16 bytes each).
DEFAULT_BUFFER_PINS = 1 << 16

#: Storage sub-buckets per chunk when a pin budget is active: spill
#: bucketing happens during the one ingest pass, before per-vertex pin
#: counts are known, so pins are bucketed at a finer vertex granularity
#: and the buckets are regrouped into budget-respecting chunks afterwards.
_PIN_BUDGET_SUBDIVISION = 16


def _pin_budget_groups(
    unit_pins, unit_sizes, pin_budget: int, max_vertices: int
) -> "tuple[np.ndarray, list[tuple[int, int]]]":
    """Greedily group consecutive units into pin-budgeted chunks.

    Each chunk takes at least one unit and extends while its pins stay
    within ``pin_budget`` *and* its vertices within ``max_vertices`` —
    so a single unit over budget (an irreducible hub) becomes a chunk of
    its own rather than an error.  Returns the vertex-index chunk
    boundaries and the ``(unit_lo, unit_hi)`` range of each chunk.
    """
    if pin_budget < 1:
        raise ValueError(f"pin_budget must be >= 1, got {pin_budget}")
    starts = [0]
    ranges: "list[tuple[int, int]]" = []
    n = len(unit_pins)
    u = 0
    vpos = 0
    while u < n:
        lo = u
        pins = int(unit_pins[u])
        verts = int(unit_sizes[u])
        u += 1
        while (
            u < n
            and pins + unit_pins[u] <= pin_budget
            and verts + unit_sizes[u] <= max_vertices
        ):
            pins += int(unit_pins[u])
            verts += int(unit_sizes[u])
            u += 1
        vpos += verts
        starts.append(vpos)
        ranges.append((lo, u))
    return np.asarray(starts, dtype=np.int64), ranges


class _ByteBlockReader(io.RawIOBase):
    """Raw stream over an iterator of ``bytes`` blocks (socket body, pipe).

    The bridge between push-style byte sources and the pull-style text
    ingest loop: blocks of any size come in, ``readinto`` hands them out,
    and :class:`io.TextIOWrapper` on top restores the line discipline the
    parsers expect.  Nothing is accumulated — resident bytes are one
    block plus the wrapper's buffer.
    """

    def __init__(self, blocks: Iterator[bytes]) -> None:
        self._blocks = blocks
        self._pending = memoryview(b"")

    def readable(self) -> bool:
        return True

    def readinto(self, buf) -> int:
        while not self._pending:
            try:
                block = next(self._blocks)
            except StopIteration:
                return 0
            self._pending = memoryview(bytes(block))
        n = min(len(buf), len(self._pending))
        buf[:n] = self._pending[:n]
        self._pending = self._pending[n:]
        return n


def _open_text_source(
    source, *, label: "str | None" = None
) -> "tuple[object, str, Path | None, bool]":
    """Adapt ``source`` into the text line stream the ingest pass reads.

    ``source`` may be a filesystem path, an open text file, an open
    binary file, a single ``bytes`` object, or an iterable of ``bytes``
    blocks (an HTTP request body, a pipe) — the last three are what let
    a socket feed a :class:`ChunkStream` without the upload ever
    touching the filesystem as text.

    Returns ``(fh, label, source_path, owns)``: the text file object to
    ingest from, the label error messages cite, the filesystem path when
    there is one (``None`` for socket-fed sources, which therefore get
    no digest/freshness shortcut), and whether this module owns — and
    must close — ``fh``.  A caller-supplied open file is never closed
    here.
    """
    if isinstance(source, (str, os.PathLike)):
        path = Path(source)
        return open(path, "r"), str(path), path, True
    if isinstance(source, io.TextIOBase):
        return source, label or "<stream>", None, False
    if isinstance(source, (bytes, bytearray, memoryview)):
        blocks: Iterator[bytes] = iter((bytes(source),))
    elif hasattr(source, "read"):
        # Binary file-like: pull fixed blocks so closing our wrapper
        # never closes the caller's object.
        blocks = iter(lambda: source.read(1 << 16), b"")
    elif hasattr(source, "__iter__"):
        blocks = iter(source)
    else:
        raise TypeError(
            "source must be a path, an open file, bytes, or an iterable "
            f"of bytes blocks, got {type(source).__name__}"
        )
    fh = io.TextIOWrapper(io.BufferedReader(_ByteBlockReader(blocks)))
    return fh, label or "<stream>", None, True


@dataclass(frozen=True)
class VertexChunk:
    """A contiguous slice ``[start, stop)`` of the vertex set in CSR form.

    ``vertex_edges[vertex_ptr[i]:vertex_ptr[i+1]]`` are the *global*
    hyperedge ids incident to local vertex ``i`` (global id ``start + i``),
    sorted ascending — the same per-vertex ordering as
    :attr:`Hypergraph.vertex_edges`.
    """

    start: int
    stop: int
    vertex_ptr: np.ndarray
    vertex_edges: np.ndarray
    vertex_weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return self.stop - self.start

    @property
    def num_pins(self) -> int:
        return int(self.vertex_edges.size)

    def edges_of(self, i: int) -> np.ndarray:
        """Incident global hyperedge ids of local vertex ``i``."""
        return self.vertex_edges[self.vertex_ptr[i] : self.vertex_ptr[i + 1]]


# ----------------------------------------------------------------------
# spill store
# ----------------------------------------------------------------------
class _SpillStore:
    """Buckets (vertex, edge) pin pairs into per-chunk spill files.

    Pins pass through a fixed in-memory buffer; whenever it fills, pairs
    are sorted by destination chunk and appended to each chunk's binary
    file in one write per touched chunk.  ``peak_buffered_pins`` records
    the buffer high-water mark for the memory-bound assertions in tests.
    """

    def __init__(self, num_chunks: int, chunk_size: int, buffer_pins: int) -> None:
        self._chunk_size = chunk_size
        self._dir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
        self._paths = [self._dir / f"chunk-{c:06d}.bin" for c in range(num_chunks)]
        self._buf = np.empty((max(1, buffer_pins), 2), dtype=np.int64)
        self._fill = 0
        self.peak_buffered_pins = 0
        #: spilled (raw, pre-dedup) pins per bucket — drives pin-budget
        #: chunk grouping after ingest.
        self.pins_per_chunk = np.zeros(num_chunks, dtype=np.int64)
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self._dir), ignore_errors=True
        )

    @property
    def num_buckets(self) -> int:
        return len(self._paths)

    def add(self, vertices: np.ndarray, edge_id: int) -> None:
        """Append the pins of one hyperedge, flushing as the buffer fills."""
        pos, n = 0, vertices.size
        cap = self._buf.shape[0]
        while pos < n:
            take = min(cap - self._fill, n - pos)
            self._buf[self._fill : self._fill + take, 0] = vertices[pos : pos + take]
            self._buf[self._fill : self._fill + take, 1] = edge_id
            self._fill += take
            pos += take
            self.peak_buffered_pins = max(self.peak_buffered_pins, self._fill)
            if self._fill == cap:
                self.flush()

    def flush(self) -> None:
        if self._fill == 0:
            return
        pairs = self._buf[: self._fill]
        chunk_ids = pairs[:, 0] // self._chunk_size
        self.pins_per_chunk += np.bincount(
            chunk_ids, minlength=self.pins_per_chunk.size
        )
        order = np.argsort(chunk_ids, kind="stable")
        pairs = pairs[order]
        chunk_ids = chunk_ids[order]
        # One append per touched chunk: split at run boundaries.
        boundaries = np.flatnonzero(chunk_ids[1:] != chunk_ids[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [pairs.shape[0]]))
        for lo, hi in zip(starts, stops):
            with open(self._paths[int(chunk_ids[lo])], "ab") as fh:
                fh.write(pairs[lo:hi].tobytes())
        self._fill = 0

    def load(self, chunk: int) -> "tuple[np.ndarray, np.ndarray]":
        path = self._paths[chunk]
        if not path.exists():
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        raw = np.fromfile(path, dtype=np.int64).reshape(-1, 2)
        return raw[:, 0], raw[:, 1]

    def cleanup(self) -> None:
        self._finalizer()


def _chunk_from_pairs(
    start: int,
    stop: int,
    vertices: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray,
) -> VertexChunk:
    """Assemble a :class:`VertexChunk` from unordered (vertex, edge) pairs."""
    order = np.lexsort((edges, vertices))
    vertices = vertices[order]
    edges = edges[order]
    if vertices.size:
        # Per-edge duplicate pins collapse, mirroring the Hypergraph model.
        keep = np.empty(vertices.size, dtype=bool)
        keep[0] = True
        keep[1:] = (vertices[1:] != vertices[:-1]) | (edges[1:] != edges[:-1])
        vertices = vertices[keep]
        edges = edges[keep]
    counts = np.bincount(vertices - start, minlength=stop - start)
    ptr = np.zeros(stop - start + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return VertexChunk(
        start=start,
        stop=stop,
        vertex_ptr=ptr,
        vertex_edges=edges,
        vertex_weights=np.asarray(weights, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# stream base
# ----------------------------------------------------------------------
class ChunkStream:
    """Iterable of :class:`VertexChunk` plus global stream metadata.

    Subclasses set ``name``, ``num_vertices``, ``num_edges``, ``num_pins``,
    ``chunk_size``, ``edge_weights`` and ``total_vertex_weight`` during
    construction (the header of both supported formats declares the counts
    up front; the single ingest pass fills in the rest before the first
    chunk is yielded).  Streams are re-iterable: every ``iter()`` replays
    the chunks in vertex order, which is what gives the buffered
    restreamer its extra passes without any in-memory caching.
    """

    name: str = "stream"
    num_vertices: int = 0
    num_edges: int = 0
    num_pins: int = 0
    chunk_size: int = DEFAULT_CHUNK_SIZE
    edge_weights: np.ndarray
    vertex_weights: np.ndarray
    total_vertex_weight: float = 0.0
    #: High-water mark of pins resident in memory at once (ingest buffer
    #: or a loaded chunk) — the quantity the out-of-core bound is about.
    peak_resident_pins: int = 0
    #: Optional pin budget per chunk; when set, chunk boundaries are cut
    #: by resident pins rather than a fixed vertex count.
    pin_budget: "int | None" = None
    #: Global per-hyperedge pin counts (deduplicated), ``None`` when the
    #: source cannot provide them cheaply.  O(|E|) scalar metadata like
    #: ``edge_weights`` — within the documented memory bound.  The
    #: sharded streamer uses them for *local* boundary detection: a net
    #: whose locally observed pins fall short of its global degree must
    #: have pins in another shard.
    edge_degrees: "np.ndarray | None" = None
    #: Explicit chunk boundaries (vertex indices, length num_chunks + 1)
    #: when chunking is non-uniform (pin-budgeted); ``None`` = uniform
    #: ``chunk_size`` arithmetic.
    _chunk_starts: "np.ndarray | None" = None
    #: The text file this stream was ingested from, when there is one —
    #: :meth:`save` records its digest so store replays can validate
    #: cache freshness.
    source_path: "Path | None" = None

    @property
    def num_chunks(self) -> int:
        """Number of chunks one full iteration yields."""
        if self._chunk_starts is not None:
            return len(self._chunk_starts) - 1
        return -(-self.num_vertices // self.chunk_size)

    def chunk_bounds(self, c: int) -> "tuple[int, int]":
        """Global vertex range ``[start, stop)`` covered by chunk ``c``."""
        if self._chunk_starts is not None:
            return int(self._chunk_starts[c]), int(self._chunk_starts[c + 1])
        start = c * self.chunk_size
        return start, min(start + self.chunk_size, self.num_vertices)

    def chunk_starts(self) -> np.ndarray:
        """All chunk boundaries as one array (length ``num_chunks + 1``)."""
        if self._chunk_starts is not None:
            return self._chunk_starts
        return np.minimum(
            np.arange(self.num_chunks + 1, dtype=np.int64) * self.chunk_size,
            self.num_vertices,
        )

    def chunk_pins(self) -> "np.ndarray | None":
        """Per-chunk pin counts (length ``num_chunks``), ``None`` if unknown.

        Pin-balanced sharding (:func:`repro.engine.blocks.
        shard_ranges_by_pins`) uses these to cut shard boundaries by
        cumulative pins instead of chunk count, so hub-heavy prefixes no
        longer straggle.
        """
        return None

    def compute_edge_degrees(self) -> np.ndarray:
        """Per-edge global pin counts, counted with one extra pass.

        Fallback for streams that did not record :attr:`edge_degrees` at
        ingest (e.g. a chunk store written before the field existed);
        the result is cached on the stream.
        """
        if self.edge_degrees is None:
            degrees = np.zeros(self.num_edges, dtype=np.int64)
            for chunk in self:
                if chunk.vertex_edges.size:
                    degrees += np.bincount(
                        chunk.vertex_edges, minlength=self.num_edges
                    )
            self.edge_degrees = degrees
        return self.edge_degrees

    def iter_range(self, lo: int, hi: int) -> Iterator[VertexChunk]:
        """Yield chunks ``lo <= c < hi`` only (sharded streaming)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[VertexChunk]:
        return self.iter_range(0, self.num_chunks)

    def save(self, path: "str | Path") -> Path:
        """Materialise this stream as a persistent binary chunk store.

        One extra pass over the chunks writes the store described in
        ``docs/formats.md`` — raw little-endian CSR arrays plus a JSON
        manifest — so later invocations replay it with
        :func:`~repro.streaming.chunkstore.open_store` (memory-mapped,
        zero-copy) instead of re-ingesting text into temp spill files.

        Parameters
        ----------
        path:
            store directory, created if needed; overwritten if it
            already holds a store.

        Returns
        -------
        pathlib.Path
            the store directory.
        """
        from repro.streaming.chunkstore import write_store

        # A replayed store stream has a recorded digest but no source
        # file; pass it through so re-saving never downgrades to null.
        return write_store(
            self,
            path,
            source_path=self.source_path,
            digest=getattr(self, "source_digest", None),
        )

    def close(self) -> None:
        """Release any temporary spill files (idempotent)."""

    def __enter__(self) -> "ChunkStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _note_resident(self, pins: int) -> None:
        self.peak_resident_pins = max(self.peak_resident_pins, pins)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, pins={self.num_pins}, "
            f"chunks={self.num_chunks}x{self.chunk_size})"
        )


class _SpilledChunkStream(ChunkStream):
    """Shared machinery for file-backed streams: spill store + iteration.

    With a ``pin_budget``, pins are spilled into storage buckets
    ``_PIN_BUDGET_SUBDIVISION`` times finer than ``chunk_size`` (bucketing
    happens during the single ingest pass, before pin counts are known);
    after ingest the buckets are regrouped into emitted chunks holding at
    most ``pin_budget`` pins each (and at most ``chunk_size`` vertices),
    so hub-dominated vertex ranges yield many small chunks instead of one
    pin-heavy one.  A single bucket over budget — an irreducible hub
    vertex's neighbourhood — is emitted alone, best effort.
    """

    def __init__(
        self, chunk_size: int, buffer_pins: int, pin_budget: "int | None" = None
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if buffer_pins < 1:
            raise ValueError(f"buffer_pins must be >= 1, got {buffer_pins}")
        if pin_budget is not None and pin_budget < 1:
            raise ValueError(f"pin_budget must be >= 1 or None, got {pin_budget}")
        self.chunk_size = int(chunk_size)
        self.pin_budget = pin_budget
        self._storage_size = (
            self.chunk_size
            if pin_budget is None
            else max(1, self.chunk_size // _PIN_BUDGET_SUBDIVISION)
        )
        self._buffer_pins = int(buffer_pins)
        self._spill: "_SpillStore | None" = None
        self._edge_remap: "np.ndarray | None" = None
        self._chunk_buckets: "list[tuple[int, int]] | None" = None
        self.vertex_weights = np.empty(0)

    def _make_spill(self, num_vertices: int) -> _SpillStore:
        num_buckets = max(1, -(-num_vertices // self._storage_size))
        self._spill = _SpillStore(num_buckets, self._storage_size, self._buffer_pins)
        return self._spill

    def _finalise_chunks(self) -> None:
        """Regroup storage buckets into pin-budgeted chunks (post-ingest)."""
        if self.pin_budget is None:
            return
        spill = self._spill
        sizes = [
            min(self._storage_size, self.num_vertices - b * self._storage_size)
            for b in range(spill.num_buckets)
        ]
        self._chunk_starts, self._chunk_buckets = _pin_budget_groups(
            spill.pins_per_chunk, sizes, self.pin_budget, self.chunk_size
        )

    def chunk_pins(self) -> "np.ndarray | None":
        """Per-chunk spilled pin counts (exact once ingest deduplicated)."""
        if self._spill is None:
            return None
        per_bucket = self._spill.pins_per_chunk
        if self._chunk_buckets is None:
            return per_bucket.copy()
        return np.asarray(
            [int(per_bucket[lo:hi].sum()) for lo, hi in self._chunk_buckets],
            dtype=np.int64,
        )

    def iter_range(self, lo: int, hi: int) -> Iterator[VertexChunk]:
        if self._spill is None:
            raise RuntimeError("stream is closed")
        self._note_resident(self._spill.peak_buffered_pins)
        for c in range(lo, hi):
            start, stop = self.chunk_bounds(c)
            if self._chunk_buckets is None:
                vertices, edges = self._spill.load(c)
            else:
                b_lo, b_hi = self._chunk_buckets[c]
                loaded = [self._spill.load(b) for b in range(b_lo, b_hi)]
                vertices = np.concatenate([v for v, _ in loaded])
                edges = np.concatenate([e for _, e in loaded])
            if self._edge_remap is not None:
                edges = self._edge_remap[edges]
            chunk = _chunk_from_pairs(
                start, stop, vertices, edges, self.vertex_weights[start:stop]
            )
            self._note_resident(chunk.num_pins)
            yield chunk

    def close(self) -> None:
        if self._spill is not None:
            self._spill.cleanup()
            self._spill = None


# ----------------------------------------------------------------------
# hMetis
# ----------------------------------------------------------------------
class HmetisChunkStream(_SpilledChunkStream):
    """One-pass chunked reader for the hMetis format.

    Shares header/edge-line/vertex-weight validation with
    :func:`repro.hypergraph.io.read_hmetis` — malformed files raise the
    same :class:`HypergraphFormatError` — but the source is consumed line
    by line and pins go straight to the spill store.  ``source`` may be a
    path or any byte source accepted by the format-agnostic adapter (an
    open file, ``bytes``, or an iterable of byte blocks — e.g. an HTTP
    request body).  Constructor parameters are those of
    :func:`stream_hmetis`, the public entry point.
    """

    def __init__(
        self,
        source: "str | Path | object",
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        buffer_pins: int = DEFAULT_BUFFER_PINS,
        pin_budget: "int | None" = None,
        name: "str | None" = None,
    ) -> None:
        super().__init__(chunk_size, buffer_pins, pin_budget)
        fh, label, source_path, owns = _open_text_source(
            source, label=f"<{name}>" if name else None
        )
        self.name = name or (source_path.stem if source_path else "stream")
        self.source_path = source_path
        # A parser error mid-stream must not leak the spill directory:
        # close (idempotent) before re-raising.
        try:
            self._ingest(label, fh)
        except BaseException:
            self.close()
            raise
        finally:
            if owns:
                fh.close()

    def _ingest(self, path: str, fh) -> None:
        lines = _data_lines(fh)
        first = next(lines, None)
        if first is None:
            raise HypergraphFormatError(f"{path}: empty file")
        lineno, tokens = first
        header = parse_hmetis_header(path, lineno, tokens)
        num_edges, num_vertices = header.num_edges, header.num_vertices
        if num_vertices < 1:
            raise HypergraphFormatError(
                f"{path}:{lineno}: num_vertices must be >= 1, got {num_vertices}"
            )
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.edge_weights = np.ones(num_edges, dtype=np.float64)
        self.edge_degrees = np.zeros(num_edges, dtype=np.int64)
        self.vertex_weights = np.ones(num_vertices, dtype=np.float64)
        spill = self._make_spill(num_vertices)

        edges_seen = 0
        weights_seen = 0
        body_lines = 0
        for lineno, tokens in lines:
            body_lines += 1
            if edges_seen < num_edges:
                weight, pins = parse_hmetis_edge_line(path, lineno, tokens, header)
                self.edge_weights[edges_seen] = weight
                arr = np.unique(np.asarray(pins, dtype=np.int64))
                spill.add(arr, edges_seen)
                self.num_pins += arr.size
                self.edge_degrees[edges_seen] = arr.size
                edges_seen += 1
            elif header.has_vertex_weights and weights_seen < num_vertices:
                self.vertex_weights[weights_seen] = parse_hmetis_vertex_weight(
                    path, lineno, tokens
                )
                weights_seen += 1
            # trailing lines are ignored, as in read_hmetis

        if edges_seen < num_edges:
            raise HypergraphFormatError(
                f"{path}: expected {num_edges} hyperedge lines, found {body_lines}"
            )
        if header.has_vertex_weights and weights_seen < num_vertices:
            raise HypergraphFormatError(
                f"{path}: expected {num_vertices} vertex-weight lines, "
                f"found {weights_seen}"
            )
        if header.has_edge_weights and (self.edge_weights <= 0).any():
            raise HypergraphFormatError(
                f"{path}: edge_weights must be strictly positive"
            )
        if header.has_vertex_weights and (self.vertex_weights <= 0).any():
            raise HypergraphFormatError(
                f"{path}: vertex_weights must be strictly positive"
            )
        spill.flush()
        self._finalise_chunks()
        self.total_vertex_weight = float(self.vertex_weights.sum())
        self._note_resident(spill.peak_buffered_pins)


# ----------------------------------------------------------------------
# MatrixMarket
# ----------------------------------------------------------------------
_MM_FIELDS = ("real", "integer", "complex", "pattern")
_MM_SYMMETRIES = ("general", "symmetric", "skew-symmetric", "hermitian")


class MatrixMarketChunkStream(_SpilledChunkStream):
    """One-pass chunked reader for MatrixMarket coordinate files.

    Interprets the matrix under the row-net / column-net model exactly as
    :func:`repro.hypergraph.io.read_matrix_market` (which goes through
    ``scipy.io.mmread``): symmetric/skew/hermitian storage is expanded to
    both triangles, explicit values are irrelevant (any stored entry is a
    pin) and all-zero nets are dropped with renumbering.  Dense ``array``
    files are rejected — streaming them would make every column a full
    net, defeating the point of out-of-core ingestion.  ``source`` may be
    a path or any byte source accepted by the format-agnostic adapter (an
    open file, ``bytes``, or an iterable of byte blocks — e.g. an HTTP
    request body).  Constructor parameters are those of
    :func:`stream_matrix_market`, the public entry point.
    """

    def __init__(
        self,
        source: "str | Path | object",
        *,
        model: str = "row-net",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        buffer_pins: int = DEFAULT_BUFFER_PINS,
        pin_budget: "int | None" = None,
        name: "str | None" = None,
    ) -> None:
        super().__init__(chunk_size, buffer_pins, pin_budget)
        if model not in ("row-net", "column-net"):
            raise ValueError(
                f"model must be 'row-net' or 'column-net', got {model!r}"
            )
        fh, label, source_path, owns = _open_text_source(
            source, label=f"<{name}>" if name else None
        )
        self.name = name or (source_path.stem if source_path else "stream")
        self.model = model
        self.source_path = source_path
        # A parser error mid-stream must not leak the spill directory:
        # close (idempotent) before re-raising.
        try:
            self._ingest(label, fh)
        except BaseException:
            self.close()
            raise
        finally:
            if owns:
                fh.close()

    def _ingest(self, path: str, fh) -> None:
        banner = fh.readline()
        tokens = banner.strip().split()
        if not tokens or not tokens[0].lower().startswith("%%matrixmarket"):
            raise HypergraphFormatError(
                f"{path}:1: not a MatrixMarket file (missing %%MatrixMarket banner)"
            )
        fields = [t.lower() for t in tokens[1:]]
        if len(fields) < 4 or fields[0] != "matrix":
            raise HypergraphFormatError(
                f"{path}:1: banner must be "
                f"'%%MatrixMarket matrix <format> <field> <symmetry>'"
            )
        mm_format, mm_field, mm_symmetry = fields[1], fields[2], fields[3]
        if mm_format != "coordinate":
            raise HypergraphFormatError(
                f"{path}:1: only 'coordinate' format is streamable, got {mm_format!r}"
            )
        if mm_field not in _MM_FIELDS:
            raise HypergraphFormatError(f"{path}:1: unknown field {mm_field!r}")
        if mm_symmetry not in _MM_SYMMETRIES:
            raise HypergraphFormatError(
                f"{path}:1: unknown symmetry {mm_symmetry!r}"
            )
        symmetric = mm_symmetry != "general"

        lines = _data_lines(fh)
        size_line = next(lines, None)
        if size_line is None:
            raise HypergraphFormatError(f"{path}: missing size line")
        lineno, tokens = size_line
        if len(tokens) != 3:
            raise HypergraphFormatError(
                f"{path}:{lineno + 1}: size line must be 'rows cols nnz'"
            )
        try:
            num_rows, num_cols, nnz = (int(t) for t in tokens)
        except ValueError as exc:
            raise HypergraphFormatError(
                f"{path}:{lineno + 1}: non-integer size line"
            ) from exc

        # Row-net: columns are vertices, rows are nets; column-net flips.
        row_net = self.model == "row-net"
        self.num_vertices = num_cols if row_net else num_rows
        raw_edges = num_rows if row_net else num_cols
        if self.num_vertices < 1:
            raise HypergraphFormatError(
                f"{path}: matrix has no {'columns' if row_net else 'rows'}"
            )
        spill = self._make_spill(self.num_vertices)
        self.vertex_weights = np.ones(self.num_vertices, dtype=np.float64)
        edge_seen = np.zeros(raw_edges, dtype=bool)

        entries = 0
        pair = np.empty(1, dtype=np.int64)
        for lineno, tokens in lines:
            if entries >= nnz:
                raise HypergraphFormatError(
                    f"{path}:{lineno + 1}: more than the declared {nnz} entries"
                )
            if len(tokens) < 2:
                raise HypergraphFormatError(
                    f"{path}:{lineno + 1}: entry needs at least 'row col'"
                )
            try:
                i, j = int(tokens[0]), int(tokens[1])
            except ValueError as exc:
                raise HypergraphFormatError(
                    f"{path}:{lineno + 1}: non-integer coordinate"
                ) from exc
            if not (1 <= i <= num_rows and 1 <= j <= num_cols):
                raise HypergraphFormatError(
                    f"{path}:{lineno + 1}: entry ({i}, {j}) outside "
                    f"{num_rows} x {num_cols}"
                )
            entries += 1
            v, e = (j - 1, i - 1) if row_net else (i - 1, j - 1)
            pair[0] = v
            spill.add(pair, e)
            edge_seen[e] = True
            self.num_pins += 1
            if symmetric and i != j:
                v2, e2 = (i - 1, j - 1) if row_net else (j - 1, i - 1)
                pair[0] = v2
                spill.add(pair, e2)
                edge_seen[e2] = True
                self.num_pins += 1
        if entries < nnz:
            raise HypergraphFormatError(
                f"{path}: expected {nnz} entries, found {entries}"
            )
        spill.flush()
        self._finalise_chunks()

        # Drop all-zero nets with renumbering, as from_sparse(drop_empty=True).
        if edge_seen.all():
            self.num_edges = raw_edges
        else:
            remap = np.cumsum(edge_seen, dtype=np.int64) - 1
            remap[~edge_seen] = -1
            self._edge_remap = remap
            self.num_edges = int(edge_seen.sum())
        self.edge_weights = np.ones(self.num_edges, dtype=np.float64)
        self.total_vertex_weight = float(self.num_vertices)
        # Coordinate files may legally repeat an entry (mmread sums them;
        # the hypergraph keeps one pin), so the running entry count
        # overstates pins.  Recount deduplicated, one spill bucket at a
        # time — still bounded memory.  The same pass yields the exact
        # per-bucket pin counts (overwriting the raw spilled tallies used
        # for pin-budget grouping) and the global per-edge degrees.
        self.num_pins = 0
        self.edge_degrees = np.zeros(self.num_edges, dtype=np.int64)
        for c in range(spill.num_buckets):
            vertices, edges = spill.load(c)
            spill.pins_per_chunk[c] = 0
            if vertices.size:
                pairs = np.unique(vertices * np.int64(raw_edges) + edges)
                uniq_edges = pairs % raw_edges
                if self._edge_remap is not None:
                    uniq_edges = self._edge_remap[uniq_edges]
                self.edge_degrees += np.bincount(
                    uniq_edges, minlength=self.num_edges
                )
                spill.pins_per_chunk[c] = pairs.size
                self.num_pins += int(pairs.size)
        self._note_resident(spill.peak_buffered_pins)


# ----------------------------------------------------------------------
# in-memory adapter
# ----------------------------------------------------------------------
class HypergraphChunkStream(ChunkStream):
    """Adapter presenting an in-memory hypergraph as a chunk stream.

    Chunks are zero-copy views of the hypergraph's CSR arrays.  This is
    how the streaming partitioners implement the standard
    ``partition(hg, ...)`` interface — the *algorithm state* stays bounded
    even though the instance happens to be resident — and it is the
    reference the disk readers are tested against.
    """

    def __init__(
        self,
        hg: Hypergraph,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        pin_budget: "int | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.hg = hg
        self.name = hg.name
        self.chunk_size = int(chunk_size)
        self.pin_budget = pin_budget
        self.num_vertices = hg.num_vertices
        self.num_edges = hg.num_edges
        self.num_pins = hg.num_pins
        self.edge_weights = hg.edge_weights
        self.edge_degrees = np.diff(hg.edge_ptr)
        self.vertex_weights = hg.vertex_weights
        self.total_vertex_weight = hg.total_vertex_weight()
        if pin_budget is not None:
            # Degrees are known up front in memory, so boundaries are cut
            # at vertex granularity directly.
            degs = np.diff(hg.vertex_ptr)
            self._chunk_starts, _ = _pin_budget_groups(
                degs, np.ones(hg.num_vertices, dtype=np.int64),
                pin_budget, self.chunk_size,
            )

    def chunk_pins(self) -> np.ndarray:
        """Exact per-chunk pin counts from the resident CSR pointers."""
        return np.diff(self.hg.vertex_ptr[self.chunk_starts()])

    def iter_range(self, lo: int, hi: int) -> Iterator[VertexChunk]:
        vptr, vedges = self.hg.vertex_ptr, self.hg.vertex_edges
        for c in range(lo, hi):
            start, stop = self.chunk_bounds(c)
            base = vptr[start]
            chunk = VertexChunk(
                start=start,
                stop=stop,
                vertex_ptr=vptr[start : stop + 1] - base,
                vertex_edges=vedges[base : vptr[stop]],
                vertex_weights=self.vertex_weights[start:stop],
            )
            self._note_resident(chunk.num_pins)
            yield chunk


# ----------------------------------------------------------------------
# public constructors + assembly
# ----------------------------------------------------------------------
def stream_hmetis(
    source: "str | Path | object",
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    buffer_pins: int = DEFAULT_BUFFER_PINS,
    pin_budget: "int | None" = None,
    name: "str | None" = None,
) -> HmetisChunkStream:
    """Open an hMetis source as a re-iterable chunk stream (one-pass ingest).

    Parameters
    ----------
    source:
        the ``.hgr``/``.hmetis`` file path — or an already-open file,
        ``bytes``, or any iterable of byte blocks (an HTTP request body,
        a pipe), so sockets can feed the stream without the upload ever
        materialising.  Validated exactly as the strict in-memory reader
        validates a file.
    chunk_size:
        vertices per yielded chunk.
    buffer_pins:
        ingest buffer capacity in pins — the resident-memory knob of the
        spill pass.
    pin_budget:
        cut chunk boundaries by resident pins instead of a fixed vertex
        count — the bound that matters on hub-dominated graphs.
    name:
        stream name (default: the file stem, or ``"stream"`` for
        non-path sources).

    Returns
    -------
    HmetisChunkStream
        a re-iterable stream of :class:`VertexChunk` CSR slices; use
        ``.save(path)`` to persist it as a binary chunk store.
    """
    return HmetisChunkStream(
        source,
        chunk_size=chunk_size,
        buffer_pins=buffer_pins,
        pin_budget=pin_budget,
        name=name,
    )


def stream_matrix_market(
    source: "str | Path | object",
    *,
    model: str = "row-net",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    buffer_pins: int = DEFAULT_BUFFER_PINS,
    pin_budget: "int | None" = None,
    name: "str | None" = None,
) -> MatrixMarketChunkStream:
    """Open a MatrixMarket coordinate source as a re-iterable chunk stream.

    Parameters
    ----------
    source:
        the ``.mtx`` coordinate file path (dense ``array`` files are
        rejected) — or an already-open file, ``bytes``, or any iterable
        of byte blocks (an HTTP request body, a pipe).
    model:
        ``"row-net"`` (columns are vertices, rows are nets, the default)
        or ``"column-net"`` (flipped).
    chunk_size:
        vertices per yielded chunk.
    buffer_pins:
        ingest buffer capacity in pins — the resident-memory knob of the
        spill pass.
    pin_budget:
        cut chunk boundaries by resident pins instead of a fixed vertex
        count — the bound that matters on hub-dominated graphs.
    name:
        stream name (default: the file stem, or ``"stream"`` for
        non-path sources).

    Returns
    -------
    MatrixMarketChunkStream
        a re-iterable stream of :class:`VertexChunk` CSR slices; use
        ``.save(path)`` to persist it as a binary chunk store.
    """
    return MatrixMarketChunkStream(
        source,
        model=model,
        chunk_size=chunk_size,
        buffer_pins=buffer_pins,
        pin_budget=pin_budget,
        name=name,
    )


def assemble(stream: ChunkStream) -> Hypergraph:
    """Materialise a chunk stream into an in-memory hypergraph.

    Deliberately O(pins) in memory — it exists so tests can assert that
    chunked reads concatenate to exactly what the whole-file readers
    produce, and as an escape hatch when an instance turns out to fit
    after all.
    """
    ptr_parts = [np.zeros(1, dtype=np.int64)]
    edge_parts: "list[np.ndarray]" = []
    weight_parts: "list[np.ndarray]" = []
    offset = 0
    for chunk in stream:
        ptr_parts.append(chunk.vertex_ptr[1:] + offset)
        offset += chunk.num_pins
        edge_parts.append(chunk.vertex_edges)
        weight_parts.append(chunk.vertex_weights)
    vptr = np.concatenate(ptr_parts)
    vedges = (
        np.concatenate(edge_parts) if edge_parts else np.empty(0, dtype=np.int64)
    )
    weights = (
        np.concatenate(weight_parts) if weight_parts else np.empty(0)
    )
    if vptr.size - 1 != stream.num_vertices:
        raise ValueError(
            f"stream yielded {vptr.size - 1} vertices, header declared "
            f"{stream.num_vertices}"
        )
    # Invert vertex->edges into the edge->pins CSR the model stores.
    owners = np.repeat(
        np.arange(stream.num_vertices, dtype=np.int64), np.diff(vptr)
    )
    order = np.argsort(vedges, kind="stable")
    pins = owners[order]
    counts = np.bincount(vedges, minlength=stream.num_edges)
    eptr = np.zeros(stream.num_edges + 1, dtype=np.int64)
    np.cumsum(counts, out=eptr[1:])
    return Hypergraph.from_csr_arrays(
        stream.num_vertices,
        eptr,
        pins,
        vertex_weights=weights,
        edge_weights=stream.edge_weights,
        name=stream.name,
    )
