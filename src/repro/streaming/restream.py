"""Bounded-buffer HyperPRAW-style restreaming.

:class:`BufferedRestreamer` keeps a window of the most recent
``buffer_size`` arrived vertices.  Arriving vertices are first placed
round-robin — the streaming analogue of Algorithm 1 line 1 — and whenever
the window fills (and once more at end of stream) the whole window is
**re-streamed** with the full HyperPRAW schedule: repeated greedy passes
driven by the Eq. 1 value function, alpha tempering while over the
imbalance tolerance, then the refinement phase that keeps restreaming
while the monitored communication cost improves and rolls back one pass
when it degrades.  Re-streamed vertices are then frozen; their pin counts
stay in the (capped) presence table so later windows coordinate with
them.

Convergence knob: with ``buffer_size=None`` (unbounded) and an unbounded
presence table the entire stream is one window and the algorithm **is**
in-memory HyperPRAW — same passes, same schedule, same rollback, same
assignments (a property the test suite asserts exactly).  Shrinking the
buffer trades quality for memory, degenerating toward the round-robin
baseline as ``buffer_size -> 0``; quality therefore improves monotonically
with the buffer, which the streaming benchmark scenario tracks.

The window pass is the shared engine kernel
(:func:`repro.engine.kernel.pass_kernel`) in restream mode over the
bounded table — the same loop in-memory HyperPRAW runs over the dense
``(E x p)`` matrix, which is what makes the unbounded configuration
reproduce it exactly.  With ``config.chunk_size`` set, window passes run
in the kernel's vectorised chunk-restream mode instead: each window is
split into ``chunk_size`` sub-blocks, the whole sub-block is lifted out
in one batch and scored with one matmul against the block-start table
(live loads) — the same speed/staleness trade the in-memory
``HyperPRAWConfig.chunk_size`` makes, so the unbounded-buffer chunked
configuration reproduces chunked in-memory HyperPRAW exactly (tested).  The monitored cost uses the per-hyperedge identity
``PC(P) = sum_e w_e c_e^T C c_e``, which needs only table rows (and
equals Eq. 5 exactly when nothing has been evicted).

With ``workers > 1`` the stream is split into contiguous chunk-range
shards restreamed by forked workers and reconciled by
:class:`~repro.streaming.sharded.ShardedStreamer`.

Restreaming is exactly the access pattern the persistent chunk store
(:mod:`repro.streaming.chunkstore`) exists for: every extra window pass
re-iterates chunks, so feeding this partitioner a store replayed with
:func:`~repro.streaming.chunkstore.open_store` turns each pass into
memory-mapped reads instead of spill-file loads — and a *fresh*
invocation skips text ingest altogether.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.base import Partitioner
from repro.core.config import HyperPRAWConfig
from repro.core.result import IterationRecord, PartitionResult
from repro.core.schedule import TemperingSchedule, initial_alpha_from_counts
from repro.engine import HyperPRAWScorer, VertexBlock, pass_kernel, resolve_kernel
from repro.hypergraph.model import Hypergraph
from repro.streaming.reader import (
    DEFAULT_CHUNK_SIZE,
    ChunkStream,
    HypergraphChunkStream,
    VertexChunk,
)
from repro.streaming.state import StreamingState, resolve_cost_matrix

__all__ = ["BufferedRestreamer"]


class _Window:
    """Accumulated chunk segments awaiting a restream."""

    def __init__(self) -> None:
        self._chunks: "list[VertexChunk]" = []
        self.num_vertices = 0

    def append(self, chunk: VertexChunk) -> None:
        self._chunks.append(chunk)
        self.num_vertices += chunk.num_vertices

    def arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """``(vertex_ids, local_ptr, edges, weights)`` over the window."""
        ids = np.concatenate(
            [np.arange(c.start, c.stop, dtype=np.int64) for c in self._chunks]
        )
        ptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        offset = 0
        pos = 1
        edge_parts = []
        weight_parts = []
        for c in self._chunks:
            ptr[pos : pos + c.num_vertices] = c.vertex_ptr[1:] + offset
            pos += c.num_vertices
            offset += c.num_pins
            edge_parts.append(c.vertex_edges)
            weight_parts.append(c.vertex_weights)
        edges = (
            np.concatenate(edge_parts) if edge_parts else np.empty(0, dtype=np.int64)
        )
        weights = np.concatenate(weight_parts) if weight_parts else np.empty(0)
        return ids, ptr, edges, weights

    def clear(self) -> None:
        self._chunks.clear()
        self.num_vertices = 0


def _window_blocks(
    ids: np.ndarray,
    ptr: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray,
    chunk_size: "int | None",
) -> "tuple[VertexBlock, ...]":
    """One block per window (vertex mode), or ``chunk_size`` sub-blocks.

    Sub-blocks are views into the window arrays (no copies) with the
    local CSR rebased per block, ready for the kernel's chunk-restream
    path (``lift_block`` + one matmul per sub-block).
    """
    if chunk_size is None:
        return (
            VertexBlock(
                ids=ids,
                vertex_ptr=ptr,
                vertex_edges=edges,
                vertex_weights=weights,
            ),
        )
    blocks = []
    m = ids.size
    for a in range(0, m, chunk_size):
        b = min(a + chunk_size, m)
        base = ptr[a]
        blocks.append(
            VertexBlock(
                ids=ids[a:b],
                vertex_ptr=ptr[a : b + 1] - base,
                vertex_edges=edges[base : ptr[b]],
                vertex_weights=weights[a:b],
            )
        )
    return tuple(blocks)


def _split_chunk(chunk: VertexChunk, k: int) -> "tuple[VertexChunk, VertexChunk]":
    """Split a chunk after its first ``k`` vertices (views, no copies)."""
    base = chunk.vertex_ptr[k]
    head = VertexChunk(
        start=chunk.start,
        stop=chunk.start + k,
        vertex_ptr=chunk.vertex_ptr[: k + 1],
        vertex_edges=chunk.vertex_edges[:base],
        vertex_weights=chunk.vertex_weights[:k],
    )
    tail = VertexChunk(
        start=chunk.start + k,
        stop=chunk.stop,
        vertex_ptr=chunk.vertex_ptr[k:] - base,
        vertex_edges=chunk.vertex_edges[base:],
        vertex_weights=chunk.vertex_weights[k:],
    )
    return head, tail


class BufferedRestreamer(Partitioner):
    """Bounded-buffer restreaming partitioner (HyperPRAW over a window).

    Parameters
    ----------
    config:
        the HyperPRAW schedule parameters (tolerance, tempering,
        refinement, presence threshold...).  ``stream_order`` must be
        ``"natural"`` — a streamed input arrives in vertex order.
        ``config.workers`` is the default worker count;
        ``config.chunk_size`` switches window restreams to the kernel's
        vectorised chunk mode (sub-blocks lifted out in one batch, one
        matmul each); ``config.kernel`` requests the inner-loop
        implementation (always python over the bounded table — see
        ``kernel_mode`` metadata).
    buffer_size:
        window capacity in vertices; ``None`` buffers the whole stream
        (exactly in-memory HyperPRAW, the convergence anchor).
    chunk_size:
        chunking used when adapting an in-memory hypergraph.
    max_tracked_edges:
        presence-table cap (``None`` = unbounded / exact).
    workers:
        parallel sharded streaming worker count; ``None`` defers to
        ``config.workers`` (default 1 = plain single-worker streaming).
    """

    name = "stream-buffered"

    def __init__(
        self,
        config: "HyperPRAWConfig | None" = None,
        *,
        buffer_size: "int | None" = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_tracked_edges: "int | None" = None,
        workers: "int | None" = None,
    ) -> None:
        self.config = config or HyperPRAWConfig()
        if self.config.stream_order != "natural":
            raise ValueError(
                "BufferedRestreamer requires stream_order='natural' "
                "(a stream arrives in vertex order)"
            )
        if buffer_size is not None and buffer_size < 1:
            raise ValueError(
                f"buffer_size must be >= 1 or None, got {buffer_size}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 or None, got {workers}")
        self.buffer_size = buffer_size
        self.chunk_size = int(chunk_size)
        self.max_tracked_edges = max_tracked_edges
        self.workers = int(workers) if workers is not None else self.config.workers

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Stream an in-memory hypergraph chunk by chunk (adapter path)."""
        self._check_args(hg, num_parts)
        stream = HypergraphChunkStream(hg, self.chunk_size)
        return self.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )

    def partition_stream(
        self,
        stream: ChunkStream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Ingest, window, restream, freeze — over the whole stream."""
        if self.workers > 1:
            from repro.streaming.sharded import ShardedStreamer

            return ShardedStreamer(
                self,
                workers=self.workers,
                payload=self.config.shard_payload,
                shard_by=self.config.shard_by,
            ).partition_stream(
                stream, num_parts, cost_matrix=cost_matrix, seed=seed
            )
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > stream.num_vertices:
            raise ValueError(
                f"cannot split {stream.num_vertices} vertices into {num_parts} parts"
            )
        t_start = time.perf_counter()
        cfg = self.config
        p = num_parts
        C, aware = resolve_cost_matrix(cost_matrix, p)
        edge_w = stream.edge_weights if cfg.use_edge_weights else None
        assignment = np.full(stream.num_vertices, -1, dtype=np.int64)
        history: "list[IterationRecord] | None" = (
            [] if cfg.record_history else None
        )
        state, stats = self._run_shard(
            iter(stream),
            p,
            C,
            assignment,
            stream_counts=(stream.num_vertices, stream.num_edges),
            shard_weight=stream.total_vertex_weight,
            edge_weights=edge_w,
            history=history,
        )

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            iterations=history or [],
            metadata={
                "converged": stats["converged"],
                "rolled_back": stats["rolled_back"],
                "iterations_run": stats["iterations"],
                "batches": stats["batches"],
                "buffer_size": self.buffer_size,
                "score_mode": self._score_mode(),
                "kernel_mode": stats["kernel_mode"],
                "pass_seconds": stats["pass_seconds"],
                "final_alpha": stats["final_alpha"],
                "final_pc_cost": float(stats["final_cost"]),
                "max_tracked_edges": self.max_tracked_edges,
                "peak_tracked_edges": state.peak_tracked_edges,
                "evictions": state.evictions,
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": aware,
                "imbalance_tolerance": cfg.imbalance_tolerance,
                "wall_time_s": time.perf_counter() - t_start,
            },
        )

    # ------------------------------------------------------------------
    # sharding contract (see repro.streaming.sharded.ShardedStreamer)
    # ------------------------------------------------------------------
    def _shard_profile(self) -> dict:
        """Scorer/schedule parameters for the sharded driver's merge and
        boundary restream (the same config the windows run under)."""
        cfg = self.config
        return {
            "alpha_mode": cfg.alpha_initial,
            "scorer": "eq1",
            "presence_threshold": cfg.presence_threshold,
            "max_tracked_edges": self.max_tracked_edges,
            "imbalance_tolerance": cfg.imbalance_tolerance,
            "alpha_update": cfg.alpha_update,
            "refinement": cfg.refinement,
            "refinement_factor": cfg.refinement_factor,
            "max_iterations": cfg.max_iterations,
            "use_edge_weights": cfg.use_edge_weights,
        }

    def _shard_spec(self) -> dict:
        """JSON-safe recipe for rebuilding this base on another host.

        Decoded by :func:`repro.cluster.protocol.base_from_spec`: a
        remote worker reconstructs an equivalent single-worker base and
        runs the same ``_run_shard`` over its socket-fed chunk range.
        ``chunk_size``/``workers`` are deliberately omitted — the worker
        never adapts an in-memory hypergraph and never re-shards.
        """
        from dataclasses import asdict

        return {
            "kind": "buffered",
            "config": asdict(self.config),
            "buffer_size": self.buffer_size,
            "max_tracked_edges": self.max_tracked_edges,
        }

    def _run_shard(
        self,
        chunks,
        num_parts: int,
        C: np.ndarray,
        assignment: np.ndarray,
        *,
        stream_counts: "tuple[int, int]",
        shard_weight: float,
        edge_weights: "np.ndarray | None" = None,
        history: "list[IterationRecord] | None" = None,
        rng=None,
    ) -> "tuple[StreamingState, dict]":
        """Window-and-restream one shard's chunks (the whole stream when
        running single-worker); the sharded driver calls this per worker
        with a shard-local chunk range.

        ``stream_counts`` are the *global* ``(|V|, |E|)`` (alpha is a
        property of the instance, not the shard); ``shard_weight`` scopes
        the expected loads to the shard.  ``rng`` is the shard's spawned
        generator — unused by the deterministic schedule, accepted so
        stochastic variants can be threaded through without changing the
        sharding contract.
        """
        del rng  # deterministic restreaming; see docstring
        p = num_parts
        state = StreamingState(
            p,
            expected_loads=np.full(p, shard_weight / p),
            max_tracked_edges=self.max_tracked_edges,
        )
        alpha0 = initial_alpha_from_counts(
            stream_counts[0], stream_counts[1], p, self.config.alpha_initial
        )
        # Resolve the kernel once per shard (one fallback warning at
        # most): the bounded LRU table always resolves to python.
        kernel_mode = resolve_kernel(
            self.config.kernel,
            state,
            HyperPRAWScorer(
                C, alpha0, state.expected_loads, self.config.presence_threshold
            ),
            self._score_mode(),
        )
        stats = self._stream_shard(
            chunks, state, C, alpha0, edge_weights, assignment, history,
            kernel_mode,
        )
        return state, stats

    def _score_mode(self) -> str:
        """``"chunk"`` when ``config.chunk_size`` enables the vectorised
        window restream, else the exact ``"vertex"`` mode."""
        return "chunk" if self.config.chunk_size is not None else "vertex"

    def _stream_shard(
        self,
        chunks,
        state: StreamingState,
        C: np.ndarray,
        alpha0: float,
        edge_weights: "np.ndarray | None",
        assignment: np.ndarray,
        history: "list[IterationRecord] | None",
        kernel_mode: str,
    ) -> dict:
        """Round-robin-place, window and restream one shard's chunks."""
        p = state.num_parts
        window = _Window()
        stats = {
            "batches": 0,
            "iterations": 0,
            "rolled_back": False,
            "converged": True,
            "final_cost": 0.0,
            "final_alpha": alpha0,
            "kernel_mode": kernel_mode,
            "pass_seconds": 0.0,
        }

        def run_batch() -> None:
            if window.num_vertices == 0:
                return
            iters, converged, rolled_back, cost, alpha_end, seconds = (
                self._restream_window(
                    window, state, C, alpha0, edge_weights, assignment, history,
                    stats["iterations"], kernel_mode,
                )
            )
            stats["batches"] += 1
            stats["iterations"] += iters
            stats["rolled_back"] = stats["rolled_back"] or rolled_back
            stats["converged"] = stats["converged"] and converged
            stats["final_cost"] = cost
            stats["final_alpha"] = alpha_end
            stats["pass_seconds"] += seconds
            window.clear()

        for chunk in chunks:
            # Algorithm 1 line 1, streamed: arrivals start round-robin.
            for i in range(chunk.num_vertices):
                v = chunk.start + i
                j = v % p
                state.place(chunk.edges_of(i), j, chunk.vertex_weights[i])
                assignment[v] = j
            if self.buffer_size is None:
                window.append(chunk)
                continue
            # The window bound is on vertices, not chunks: split arriving
            # chunks so a stream chunked coarser than the buffer cannot
            # silently widen the window.
            while chunk.num_vertices > 0:
                room = self.buffer_size - window.num_vertices
                if chunk.num_vertices <= room:
                    window.append(chunk)
                    break
                if room > 0:
                    head, chunk = _split_chunk(chunk, room)
                    window.append(head)
                run_batch()
            if window.num_vertices >= self.buffer_size:
                run_batch()
        run_batch()
        return stats

    # ------------------------------------------------------------------
    def _restream_window(
        self,
        window: _Window,
        state: StreamingState,
        C: np.ndarray,
        alpha0: float,
        edge_weights: "np.ndarray | None",
        assignment: np.ndarray,
        history: "list[IterationRecord] | None",
        iteration_offset: int,
        kernel_mode: str = "python",
    ) -> "tuple[int, bool, bool, float, float, float]":
        """HyperPRAW's outer loop over one window; mirrors ``partition``.

        Returns ``(iterations, converged, rolled_back, best_cost, alpha,
        pass_seconds)``.
        """
        cfg = self.config
        win_ids, win_ptr, win_edges, win_w = window.arrays()
        score_mode = self._score_mode()
        blocks = _window_blocks(
            win_ids, win_ptr, win_edges, win_w, cfg.chunk_size
        )
        schedule = TemperingSchedule(
            alpha=alpha0,
            tempering_update=cfg.alpha_update,
            refinement_factor=cfg.refinement_factor,
        )
        best: "np.ndarray | None" = None
        best_cost = np.inf
        cost = np.inf
        converged = False
        rolled_back = False
        iterations = 0
        pass_seconds = 0.0

        for it in range(1, cfg.max_iterations + 1):
            alpha = schedule.alpha
            scorer = HyperPRAWScorer(
                C, alpha, state.expected_loads, cfg.presence_threshold
            )
            t_pass = time.perf_counter()
            pass_kernel(
                blocks, state, scorer, assignment, restream=True,
                score_mode=score_mode, kernel=kernel_mode,
            )
            pass_seconds += time.perf_counter() - t_pass
            iterations = it
            imb = state.imbalance()
            cost = state.pc_cost(C, edge_weights=edge_weights)
            within = imb <= cfg.imbalance_tolerance
            if history is not None:
                history.append(
                    IterationRecord(
                        iteration=iteration_offset + it,
                        alpha=alpha,
                        imbalance=imb,
                        pc_cost=cost,
                        phase="refinement" if within else "tempering",
                    )
                )
            if not within:
                schedule.after_pass(within_tolerance=False)
                continue
            if not cfg.refinement:
                best, best_cost = assignment[win_ids].copy(), cost
                converged = True
                break
            if cost < best_cost:
                best, best_cost = assignment[win_ids].copy(), cost
                schedule.after_pass(within_tolerance=True)
                continue
            # Refinement stopped improving: roll back to the best pass.
            converged = True
            rolled_back = True
            break

        if best is None:
            # Tolerance never reached within the budget: freeze the final
            # pass, as in-memory HyperPRAW returns P^N.
            best_cost = cost
        else:
            self._restore_window(
                state, win_ids, win_ptr, win_edges, win_w, assignment, best
            )
        return (
            iterations,
            converged,
            rolled_back,
            float(best_cost),
            schedule.alpha,
            pass_seconds,
        )

    @staticmethod
    def _restore_window(
        state: StreamingState,
        win_ids: np.ndarray,
        win_ptr: np.ndarray,
        win_edges: np.ndarray,
        win_w: np.ndarray,
        assignment: np.ndarray,
        best: np.ndarray,
    ) -> None:
        """Move window vertices back to the best recorded pass's parts."""
        current = assignment[win_ids]
        for i in np.flatnonzero(current != best):
            v = int(win_ids[i])
            edges = win_edges[win_ptr[i] : win_ptr[i + 1]]
            state.remove(edges, int(current[i]), win_w[i])
            state.place(edges, int(best[i]), win_w[i])
            assignment[v] = int(best[i])
