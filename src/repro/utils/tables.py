"""Fixed-width ASCII table rendering.

The paper reports its evaluation in one table and five figures.  We have no
plotting dependency offline, so every experiment driver renders its output as
text: tables via :func:`format_table`, matrices via
:mod:`repro.utils.heatmap`.  The format is intentionally close to what
``tabulate`` would produce so output diffs are stable and readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_kv", "format_number"]


def format_number(value, *, precision: int = 3) -> str:
    """Render a number compactly: ints verbatim, floats with ``precision``.

    Large floats fall back to scientific notation so columns stay narrow.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def _stringify(row: Sequence, precision: int) -> list[str]:
    return [format_number(cell, precision=precision) for cell in row]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    precision: int = 3,
    align_first_left: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        column names.
    rows:
        iterable of row sequences; cells are formatted with
        :func:`format_number`.
    title:
        optional title printed above the table.
    precision:
        float precision for cells.
    align_first_left:
        left-align the first column (typically a name), right-align the rest
        (typically numbers).

    Returns
    -------
    str
        the rendered table, ending without a trailing newline.
    """
    str_rows = [_stringify(r, precision) for r in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(
                f"row has {len(r)} cells but table has {ncols} columns: {r!r}"
            )
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 and align_first_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_kv(pairs: dict, *, title: str | None = None, precision: int = 3) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    if not pairs:
        return title or ""
    keys = [str(k) for k in pairs]
    width = max(len(k) for k in keys)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for k, v in pairs.items():
        lines.append(f"{str(k).ljust(width)} : {format_number(v, precision=precision)}")
    return "\n".join(lines)
