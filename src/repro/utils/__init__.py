"""Shared utilities for the HyperPRAW reproduction.

This package holds small, dependency-light helpers used across every other
subsystem:

* :mod:`repro.utils.rng` — deterministic random-number plumbing.  Every
  stochastic component in the library accepts either an integer seed or a
  :class:`numpy.random.Generator`; :func:`~repro.utils.rng.as_generator`
  normalises both into a generator.
* :mod:`repro.utils.tables` — fixed-width ASCII table rendering used by the
  experiment drivers to print paper-style tables without any plotting
  dependency.
* :mod:`repro.utils.heatmap` — ASCII heatmap rendering for the bandwidth /
  traffic matrices of Figures 1 and 6.
* :mod:`repro.utils.timing` — a tiny wall-clock stopwatch used by the
  benchmark harnesses.
* :mod:`repro.utils.validation` — argument-checking helpers shared by public
  constructors.
"""

from repro.utils.rng import as_generator, spawn_generators, seed_sequence
from repro.utils.tables import format_table, format_kv
from repro.utils.heatmap import ascii_heatmap, downsample_matrix
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_array_shape,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "seed_sequence",
    "format_table",
    "format_kv",
    "ascii_heatmap",
    "downsample_matrix",
    "Stopwatch",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_array_shape",
]
