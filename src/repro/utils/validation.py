"""Argument-checking helpers shared by public constructors.

Raising early with a precise message is cheaper than debugging a silent
mis-shape three layers down a streaming pass.  All helpers return the checked
value so they compose in assignments::

    self.p = check_positive("num_partitions", num_partitions)
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_array_shape",
    "check_probability",
    "check_square_matrix",
]


def check_positive(name: str, value, *, strict: bool = True):
    """Validate ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_non_negative(name: str, value):
    """Validate ``value >= 0``."""
    return check_positive(name, value, strict=False)


def check_probability(name: str, value):
    """Validate ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value, lo, hi, *, inclusive: bool = True):
    """Validate ``lo <= value <= hi`` (or strict inequalities)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {brackets[0]}{lo}, {hi}{brackets[1]}, got {value!r}"
        )
    return value


def check_array_shape(name: str, arr: np.ndarray, shape: tuple):
    """Validate ``arr.shape == shape``; ``-1`` entries match any extent."""
    arr = np.asarray(arr)
    if len(arr.shape) != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {arr.shape}"
        )
    for got, want in zip(arr.shape, shape):
        if want != -1 and got != want:
            raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def check_square_matrix(name: str, arr: np.ndarray, n: int | None = None) -> np.ndarray:
    """Validate that ``arr`` is a square 2-D float array (optionally ``n x n``)."""
    arr = np.asarray(arr, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must be {n}x{n}, got {arr.shape[0]}x{arr.shape[1]}")
    return arr
