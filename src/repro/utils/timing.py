"""Tiny wall-clock stopwatch used by the benchmark harnesses.

The *simulated* clock of :mod:`repro.simcomm` is entirely separate — this
module only measures how long the reproduction code itself takes to run,
which the benchmark suite reports alongside simulated runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw.measure("partition"):
    ...     _ = sum(range(1000))
    >>> sw.total("partition") >= 0.0
    True
    """

    laps: dict = field(default_factory=dict)

    def measure(self, name: str):
        """Context manager accumulating elapsed seconds under ``name``."""
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.laps[name] = self.laps.get(name, 0.0) + float(seconds)

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never measured)."""
        return self.laps.get(name, 0.0)

    def summary(self) -> dict:
        """Copy of all accumulated laps."""
        return dict(self.laps)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str):
        self._watch = watch
        self._name = name
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._watch.add(self._name, time.perf_counter() - self._start)
        return False
