"""Deterministic random-number plumbing.

The whole reproduction is seed-deterministic: every stochastic component
(synthetic hypergraph generators, bandwidth noise, stream shuffling, the
multilevel partitioner's tie-breaking) accepts a ``seed`` argument that may
be:

* ``None`` — draw fresh OS entropy (only for interactive exploration);
* an ``int`` — a reproducible seed;
* a :class:`numpy.random.Generator` — used as-is so callers can share one
  stream across components.

:func:`as_generator` normalises all three into a generator.  When several
independent sub-streams are needed (e.g. one per simulated job allocation),
:func:`spawn_generators` derives them through :class:`numpy.random.SeedSequence`
so that sub-streams are statistically independent and stable across runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"

__all__ = ["as_generator", "spawn_generators", "seed_sequence", "derive_seed"]


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None``, ``int``, :class:`numpy.random.SeedSequence` or an existing
        :class:`numpy.random.Generator` (returned unchanged).

    Examples
    --------
    >>> g = as_generator(123)
    >>> g2 = as_generator(g)
    >>> g is g2
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or numpy Generator, got {type(seed)!r}"
    )


def seed_sequence(seed=None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` for ``seed``.

    Generators cannot be converted back into seed sequences; passing one
    raises ``TypeError`` so that accidental entropy reuse is caught early.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    raise TypeError(
        f"seed must be None, int or SeedSequence to derive a SeedSequence, got {type(seed)!r}"
    )


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the sub-streams do not overlap and the
    mapping ``(seed, i) -> stream`` is stable across processes and runs.

    Parameters
    ----------
    seed:
        base entropy (``None``/``int``/``SeedSequence``).
    n:
        number of generators to derive; must be non-negative.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = seed_sequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed, *tokens: "int | str") -> int:
    """Derive a stable 63-bit integer seed from a base seed and context tokens.

    This is used when a component needs to hand an *integer* seed to a
    sub-component (e.g. dataset registry entries record plain ints).  The
    token mixing uses SeedSequence entropy folding, so different token tuples
    give independent seeds.

    Examples
    --------
    >>> a = derive_seed(7, "bandwidth", 0)
    >>> b = derive_seed(7, "bandwidth", 1)
    >>> a != b
    True
    >>> a == derive_seed(7, "bandwidth", 0)
    True
    """
    base = seed_sequence(seed if seed is not None else 0)
    mixed: list[int] = list(base.entropy if isinstance(base.entropy, tuple) else [base.entropy or 0])
    for tok in tokens:
        if isinstance(tok, str):
            # Stable string folding (hash() is salted per-process, avoid it).
            acc = 0
            for ch in tok.encode("utf8"):
                acc = (acc * 131 + ch) % (2**61 - 1)
            mixed.append(acc)
        elif isinstance(tok, (int, np.integer)):
            mixed.append(int(tok) & ((1 << 63) - 1))
        else:
            raise TypeError(f"tokens must be int or str, got {type(tok)!r}")
    ss = np.random.SeedSequence(mixed)
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


def shuffled(items: Sequence, seed=None) -> list:
    """Return a shuffled copy of ``items`` (the input is left untouched)."""
    rng = as_generator(seed)
    out = list(items)
    rng.shuffle(out)
    return out


def stable_permutation(n: int, seed=None) -> np.ndarray:
    """Return a permutation of ``range(n)`` as an int64 array."""
    if n < 0:
        raise ValueError(f"permutation length must be >= 0, got {n}")
    rng = as_generator(seed)
    return rng.permutation(n).astype(np.int64)
