"""ASCII heatmap rendering for bandwidth / traffic matrices.

Figures 1 and 6 of the paper are log-scaled process-by-process heatmaps.
Offline we render them as character grids: the matrix is downsampled to a
terminal-sized block grid, log-scaled, and mapped onto a density ramp.  This
is enough to *see* the block-diagonal structure that the paper's argument
rests on (fast intra-node links vs slow inter-node links) and to eyeball
whether HyperPRAW-aware concentrates traffic on the diagonal blocks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_heatmap", "downsample_matrix", "log_scale"]

# Dark -> bright density ramp (space means "no data / minimum").
_RAMP = " .:-=+*#%@"


def downsample_matrix(matrix: np.ndarray, max_size: int = 64) -> np.ndarray:
    """Reduce an ``n x n`` matrix to at most ``max_size x max_size`` by block
    averaging.

    Block boundaries follow ``numpy.array_split`` semantics so any ``n`` is
    supported; the result preserves coarse structure (node-diagonal blocks)
    while fitting in a terminal.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    if n <= max_size:
        return matrix.copy()
    row_blocks = np.array_split(np.arange(n), max_size)
    out = np.empty((max_size, max_size), dtype=np.float64)
    # Two-pass block mean: rows first, then columns, so cost is O(n^2).
    row_avg = np.empty((max_size, n))
    for i, rb in enumerate(row_blocks):
        row_avg[i] = matrix[rb].mean(axis=0)
    for j, cb in enumerate(row_blocks):
        out[:, j] = row_avg[:, cb].mean(axis=1)
    return out


def log_scale(matrix: np.ndarray, *, floor: float | None = None) -> np.ndarray:
    """Log10-scale a non-negative matrix, mapping zeros to the observed floor.

    ``floor`` overrides the smallest positive value used for zeros, which the
    paper's plots implicitly do by plotting ``log(bytes sent)`` with empty
    cells left blank.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if (matrix < 0).any():
        raise ValueError("log_scale expects a non-negative matrix")
    positive = matrix[matrix > 0]
    if positive.size == 0:
        return np.zeros_like(matrix)
    lo = floor if floor is not None else float(positive.min())
    clipped = np.maximum(matrix, lo)
    return np.log10(clipped)


def ascii_heatmap(
    matrix: np.ndarray,
    *,
    max_size: int = 48,
    log: bool = True,
    title: str | None = None,
    legend: bool = True,
) -> str:
    """Render a square matrix as an ASCII heatmap string.

    Parameters
    ----------
    matrix:
        square non-negative matrix (bandwidth in MB/s, bytes sent, ...).
    max_size:
        maximum rendered grid edge; larger matrices are block-averaged.
    log:
        apply log10 scaling first (as in the paper's figures).
    title:
        optional heading.
    legend:
        append the value range mapped to the ramp.
    """
    data = downsample_matrix(matrix, max_size=max_size)
    raw_min, raw_max = float(np.min(matrix)), float(np.max(matrix))
    if log:
        data = log_scale(data)
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo
    if span <= 0:
        idx = np.zeros(data.shape, dtype=int)
    else:
        idx = np.clip(((data - lo) / span) * (len(_RAMP) - 1), 0, len(_RAMP) - 1)
        idx = idx.astype(int)
    lines = []
    if title:
        lines.append(title)
    for row in idx:
        lines.append("".join(_RAMP[i] for i in row))
    if legend:
        scale = "log10 " if log else ""
        lines.append(
            f"[{scale}ramp '{_RAMP.strip()}' spans {raw_min:.3g} .. {raw_max:.3g}]"
        )
    return "\n".join(lines)
