"""Kernel-facing partition state adapters.

The pass kernel mutates whatever state object it is handed through a
small duck-typed protocol:

``loads`` / ``num_parts``
    live per-partition loads (mutated in place) and the partition count;
``gather(edges)`` / ``gather_block(edges, ptr)``
    neighbour counts of one vertex / a whole block;
``remove(edges, part, weight)`` / ``place(edges, part, weight)``
    move one vertex out of / into the running state;
``lift_block(edges, ptr, old, weights)``
    remove a whole block in one batch (chunk-mode restreaming);
``place_deferred`` (+ ``insert_block``)
    ``True`` lets the kernel batch a chunk's pin-count updates at block
    end (loads still update live per placement) — the dense fast path.

Two states implement it:

* :class:`DenseKernelState` (here) — the exact ``(E x p)`` count matrix,
  shared with :class:`~repro.core.state.StreamState` for HyperPRAW or
  zero-initialised for place-only streams (FENNEL);
* :class:`~repro.streaming.state.StreamingState` — the bounded, capped
  LRU presence table of the out-of-core partitioners
  (``place_deferred = False``: its table must see every placement in
  arrival order for the eviction policy to mean anything).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DenseKernelState"]


class DenseKernelState:
    """Exact dense counts + loads, in kernel-protocol form.

    Parameters
    ----------
    num_parts:
        partition count ``p``.
    edge_counts:
        ``(E x p)`` per-hyperedge partition pin counts, mutated in place.
    loads:
        length-``p`` partition loads, mutated in place.
    """

    place_deferred = True
    #: the kernel may hand :meth:`gather` a reused output buffer
    gather_accepts_out = True

    def __init__(
        self, num_parts: int, edge_counts: np.ndarray, loads: np.ndarray
    ) -> None:
        if not edge_counts.flags.c_contiguous:
            raise ValueError("edge_counts must be C-contiguous (flat view needed)")
        self.num_parts = int(num_parts)
        self.edge_counts = edge_counts
        self.loads = loads
        self._flat = edge_counts.reshape(-1)

    # ------------------------------------------------------------------
    @classmethod
    def from_stream_state(cls, state) -> "DenseKernelState":
        """Share arrays with an existing :class:`~repro.core.state.StreamState`."""
        return cls(state.num_parts, state.edge_counts, state.loads)

    @classmethod
    def empty(cls, num_edges: int, num_parts: int) -> "DenseKernelState":
        """Zero counts/loads — the state of a place-only stream's start."""
        return cls(
            num_parts,
            np.zeros((num_edges, num_parts), dtype=np.int64),
            np.zeros(num_parts, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # per-vertex operations
    # ------------------------------------------------------------------
    def gather(self, edges: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """``X_j(v)``: per-partition counts summed over ``edges`` (length ``p``).

        ``out`` is an optional length-``p`` float64 buffer the sum is
        written into (same reduction, no fresh allocation).
        """
        return self.edge_counts[edges].sum(axis=0, dtype=np.float64, out=out)

    def remove(self, edges: np.ndarray, part: int, weight: float) -> None:
        """Lift one vertex (incident ``edges``, ``weight``) off ``part``."""
        self.edge_counts[edges, part] -= 1
        self.loads[part] -= weight

    def place(self, edges: np.ndarray, part: int, weight: float) -> None:
        """Place one vertex (incident ``edges``, ``weight``) onto ``part``."""
        self.edge_counts[edges, part] += 1
        self.loads[part] += weight

    # ------------------------------------------------------------------
    # block operations (the vectorised chunk path)
    # ------------------------------------------------------------------
    def gather_block(self, edges: np.ndarray, ptr: np.ndarray) -> np.ndarray:
        """Stacked :meth:`gather` of a whole block (``m x p``), one reduceat.

        ``edges`` is the block's concatenated incident-edge array and
        ``ptr`` its local CSR offsets (``m + 1`` entries).
        """
        m = ptr.size - 1
        X = np.zeros((m, self.num_parts), dtype=self.edge_counts.dtype)
        if edges.size:
            # reduceat mis-handles empty segments, so sum only the rows
            # of non-isolated vertices (isolated rows stay 0).
            degs = np.diff(ptr)
            nonzero = degs > 0
            X[nonzero] = np.add.reduceat(
                self.edge_counts[edges], ptr[:-1][nonzero], axis=0
            )
        return X

    def _scatter(self, edges, ptr, parts, sign: int) -> None:
        # unique() merges duplicate (edge, part) keys so one fancy-indexed
        # add/subtract replaces a slow unbuffered ufunc.at scatter.
        degs = np.diff(ptr)
        keys = edges * self.num_parts + np.repeat(parts, degs)
        uniq, cnt = np.unique(keys, return_counts=True)
        if sign > 0:
            self._flat[uniq] += cnt.astype(self.edge_counts.dtype)
        else:
            self._flat[uniq] -= cnt.astype(self.edge_counts.dtype)

    def lift_block(
        self, edges: np.ndarray, ptr: np.ndarray, old: np.ndarray, weights: np.ndarray
    ) -> None:
        """Remove a whole block (counts *and* loads) in one batch."""
        self._scatter(edges, ptr, old, -1)
        self.loads -= np.bincount(old, weights=weights, minlength=self.num_parts)

    def insert_block(
        self, edges: np.ndarray, ptr: np.ndarray, new: np.ndarray
    ) -> None:
        """Re-insert a block's pin counts (loads were updated live)."""
        self._scatter(edges, ptr, new, +1)
