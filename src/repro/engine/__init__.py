"""The unified stream-pass engine.

Every partitioner in the repository that streams vertices — in-memory
HyperPRAW, the FENNEL baseline, both out-of-core streamers and the
parallel sharded streamer — is a thin driver around one loop:

::

    VertexSource  ─────  blocks  ─────►  pass_kernel  ◄─────  Scorer
    (in-memory CSR,                     (visit → score          (Eq. 1 /
     disk chunk stream,                  → place)                FENNEL)
     shard ranges)                          │
                                            ▼
                                      KernelState
                              (dense E×p counts  |  bounded
                               LRU presence table)

* :mod:`~repro.engine.blocks` — :class:`VertexBlock` (the currency),
  the :class:`VertexSource` protocol, in-memory/chunk-stream adapters,
  :class:`ChunkStoreSource` (memory-mapped replay of a persistent
  binary chunk store) and shard-range splitting;
* :mod:`~repro.engine.kernel` — :func:`pass_kernel`, the single
  remaining implementation of Algorithm 1's pass body, with per-vertex
  (exact) and per-chunk (vectorised matmul) scoring modes;
* :mod:`~repro.engine.njit_kernel` — the optional numba-compiled twin
  of the vertex-exact loop (``kernel="auto"|"python"|"njit"``, resolved
  by :func:`resolve_kernel` with a warned python fallback);
* :mod:`~repro.engine.scorers` — the pluggable value functions;
* :mod:`~repro.engine.states` — the dense kernel state (the bounded one
  is :class:`repro.streaming.state.StreamingState`);
* :mod:`~repro.engine.parallel` — forked-worker fan-out and the
  presence-table merge behind parallel sharded streaming.
"""

from repro.engine.blocks import (
    ChunkStoreSource,
    FringeExpansionSource,
    InMemorySource,
    VertexBlock,
    VertexSource,
    block_of,
    blocks_of,
    expansion_order,
    segment_gather_index,
    shard_ranges,
    shard_ranges_by_pins,
)
from repro.engine.kernel import apply_balance_cap, pass_kernel
from repro.engine.njit_kernel import (
    KERNEL_CHOICES,
    NUMBA_AVAILABLE,
    njit_supported,
    resolve_kernel,
)
from repro.engine.parallel import (
    ShardRounds,
    fork_available,
    merge_shard_tables,
    run_tasks,
)
from repro.engine.scorers import (
    FennelScorer,
    HyperPRAWScorer,
    HypeScorer,
    MinMaxScorer,
)
from repro.engine.states import DenseKernelState

__all__ = [
    "VertexBlock",
    "VertexSource",
    "InMemorySource",
    "FringeExpansionSource",
    "ChunkStoreSource",
    "block_of",
    "blocks_of",
    "expansion_order",
    "segment_gather_index",
    "shard_ranges",
    "shard_ranges_by_pins",
    "pass_kernel",
    "apply_balance_cap",
    "KERNEL_CHOICES",
    "NUMBA_AVAILABLE",
    "njit_supported",
    "resolve_kernel",
    "HyperPRAWScorer",
    "FennelScorer",
    "HypeScorer",
    "MinMaxScorer",
    "DenseKernelState",
    "fork_available",
    "run_tasks",
    "merge_shard_tables",
    "ShardRounds",
]
