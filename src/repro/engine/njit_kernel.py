"""Optional compiled (numba ``@njit``) fast path for the vertex-exact loop.

The pure-python vertex loop in :func:`repro.engine.kernel.pass_kernel` is
the tested, bit-identical reference; this module holds the *optional*
compiled twin of its inner body for the combination that dominates
restreaming wall time: :class:`~repro.engine.states.DenseKernelState`
(exact ``E x p`` counts) scored by
:class:`~repro.engine.scorers.HyperPRAWScorer` (Eq. 1) or
:class:`~repro.engine.scorers.FennelScorer`, in ``score_mode="vertex"``.

Everything else stays on the python path by design, not by omission:

* the bounded :class:`~repro.streaming.state.StreamingState` runs a
  capped LRU table whose eviction order is part of the contract (its
  golden hashes depend on per-vertex touch order) — compiling around an
  ``OrderedDict`` buys nothing;
* ``score_mode="chunk"`` is already one numpy matmul per block.

Selection is centralised in :func:`resolve_kernel`: ``"auto"`` silently
prefers the compiled kernel when numba is importable *and* the
state/scorer/mode combination is supported; an explicit ``"njit"``
request that cannot be honoured falls back to python with a single
structured :class:`RuntimeWarning` (mirroring
``engine.parallel._resolve_mode``), so runs degrade visibly — the
resolved mode travels in run metadata as ``kernel_mode``, next to
``parallel_mode``.

The compiled loops reproduce the python path's floating-point operation
order op for op (gather-sum, presence count, cost mat-vec, scale, load
penalty, cap mask with the emptiest-survives fallback, first-max argmax),
so assignments are bit-identical — the equivalence suite in
``tests/test_engine.py`` runs both kernels in-session and compares
digests whenever numba is installed (the CI ``njit-kernel`` leg).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.engine.scorers import FennelScorer, HyperPRAWScorer
from repro.engine.states import DenseKernelState

__all__ = [
    "NUMBA_AVAILABLE",
    "KERNEL_CHOICES",
    "njit_supported",
    "resolve_kernel",
    "run_njit_block",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the baked-in CI image has no numba
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):
        # Inert decorator so the module imports (and its pure-python
        # bodies stay testable) without numba; resolve_kernel() never
        # selects "njit" on this branch.
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


KERNEL_CHOICES = ("auto", "python", "njit")


@_njit(cache=True)
def _vertex_pass_eq1(  # pragma: no cover - compiled; run on the CI numba leg
    ids,
    ptr,
    edges_all,
    weights,
    assignment,
    counts,
    loads,
    cost,
    alpha,
    inv_expected,
    presence_threshold,
    restream,
    cap,
    use_cap,
):
    p = loads.shape[0]
    values = np.empty(p, dtype=np.float64)
    X = np.empty(p, dtype=np.float64)
    for i in range(ids.shape[0]):
        v = ids[i]
        lo = ptr[i]
        hi = ptr[i + 1]
        w_v = weights[i]
        if restream:
            old = assignment[v]
            for e_i in range(lo, hi):
                counts[edges_all[e_i], old] -= 1
            loads[old] -= w_v
        if hi == lo:
            for j in range(p):
                values[j] = 0.0
        else:
            for j in range(p):
                X[j] = 0.0
            for e_i in range(lo, hi):
                e = edges_all[e_i]
                for j in range(p):
                    X[j] += counts[e, j]
            n_neigh = 0
            for j in range(p):
                if X[j] >= presence_threshold:
                    n_neigh += 1
            scale = -(n_neigh / p)
            for j in range(p):
                acc = 0.0
                for k in range(p):
                    acc += cost[j, k] * X[k]
                values[j] = acc * scale
        for j in range(p):
            values[j] -= (loads[j] * inv_expected[j]) * alpha
        if use_cap:
            nfull = 0
            for j in range(p):
                if loads[j] + w_v > cap:
                    nfull += 1
            if nfull == p:
                lmin = loads[0]
                for j in range(1, p):
                    if loads[j] < lmin:
                        lmin = loads[j]
                for j in range(p):
                    if loads[j] != lmin:
                        values[j] = -np.inf
            else:
                for j in range(p):
                    if loads[j] + w_v > cap:
                        values[j] = -np.inf
        best = 0
        bv = values[0]
        for j in range(1, p):
            if values[j] > bv:
                bv = values[j]
                best = j
        for e_i in range(lo, hi):
            counts[edges_all[e_i], best] += 1
        loads[best] += w_v
        assignment[v] = best


@_njit(cache=True)
def _vertex_pass_fennel(  # pragma: no cover - compiled; run on the CI numba leg
    ids,
    ptr,
    edges_all,
    weights,
    assignment,
    counts,
    loads,
    alpha_gamma,
    gamma_minus_one,
    restream,
    cap,
    use_cap,
):
    p = loads.shape[0]
    values = np.empty(p, dtype=np.float64)
    for i in range(ids.shape[0]):
        v = ids[i]
        lo = ptr[i]
        hi = ptr[i + 1]
        w_v = weights[i]
        if restream:
            old = assignment[v]
            for e_i in range(lo, hi):
                counts[edges_all[e_i], old] -= 1
            loads[old] -= w_v
        for j in range(p):
            values[j] = 0.0
        for e_i in range(lo, hi):
            e = edges_all[e_i]
            for j in range(p):
                values[j] += counts[e, j]
        for j in range(p):
            values[j] -= alpha_gamma * loads[j] ** gamma_minus_one
        if use_cap:
            nfull = 0
            for j in range(p):
                if loads[j] + w_v > cap:
                    nfull += 1
            if nfull == p:
                lmin = loads[0]
                for j in range(1, p):
                    if loads[j] < lmin:
                        lmin = loads[j]
                for j in range(p):
                    if loads[j] != lmin:
                        values[j] = -np.inf
            else:
                for j in range(p):
                    if loads[j] + w_v > cap:
                        values[j] = -np.inf
        best = 0
        bv = values[0]
        for j in range(1, p):
            if values[j] > bv:
                bv = values[j]
                best = j
        for e_i in range(lo, hi):
            counts[edges_all[e_i], best] += 1
        loads[best] += w_v
        assignment[v] = best


def njit_supported(state, scorer, score_mode: str) -> bool:
    """Whether the compiled fast path covers this state/scorer/mode combo."""
    return (
        score_mode == "vertex"
        and isinstance(state, DenseKernelState)
        and isinstance(scorer, (HyperPRAWScorer, FennelScorer))
    )


def resolve_kernel(kernel: str, state, scorer, score_mode: str) -> str:
    """Resolve a ``kernel`` request to the mode a pass will actually run.

    ``"python"`` always resolves to itself; ``"auto"`` silently prefers
    ``"njit"`` when numba is importable and :func:`njit_supported` holds;
    an explicit ``"njit"`` that cannot be honoured emits one structured
    :class:`RuntimeWarning` and falls back to ``"python"`` (identical
    results, interpreter speed).  Drivers resolve once up front, record
    the result as ``kernel_mode`` run metadata, and hand the *resolved*
    mode back down — resolved modes re-resolve to themselves silently.
    """
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {KERNEL_CHOICES}, got {kernel!r}"
        )
    if kernel == "python":
        return "python"
    supported = njit_supported(state, scorer, score_mode)
    if NUMBA_AVAILABLE and supported:
        return "njit"
    if kernel == "njit":
        if not NUMBA_AVAILABLE:
            reason = "numba is not installed (pip install hyperpraw-repro[fast])"
        else:
            reason = (
                f"the {type(state).__name__}/{type(scorer).__name__}/"
                f"score_mode={score_mode!r} combination has no compiled path"
            )
        warnings.warn(
            f"engine.kernel: kernel='njit' requested but {reason}; "
            "falling back to the pure-python path (identical results, "
            "interpreter speed)",
            RuntimeWarning,
            stacklevel=3,
        )
    return "python"


def run_njit_block(  # pragma: no cover - reachable only with numba installed
    block, state, scorer, assignment, restream, cap
) -> None:
    """Run the compiled vertex-exact loop over one block.

    Callers must have resolved ``"njit"`` via :func:`resolve_kernel`
    first — this function assumes :func:`njit_supported` holds and numba
    compiled the loops above.
    """
    ids = np.ascontiguousarray(block.ids, dtype=np.int64)
    ptr = np.ascontiguousarray(block.vertex_ptr, dtype=np.int64)
    edges = np.ascontiguousarray(block.vertex_edges, dtype=np.int64)
    weights = np.ascontiguousarray(block.vertex_weights, dtype=np.float64)
    use_cap = cap is not None
    cap_f = float(cap) if use_cap else 0.0
    if isinstance(scorer, HyperPRAWScorer):
        _vertex_pass_eq1(
            ids,
            ptr,
            edges,
            weights,
            assignment,
            state.edge_counts,
            state.loads,
            np.ascontiguousarray(scorer.cost_matrix, dtype=np.float64),
            scorer.alpha,
            np.ascontiguousarray(scorer._inv_expected, dtype=np.float64),
            float(scorer.presence_threshold),
            restream,
            cap_f,
            use_cap,
        )
    else:
        _vertex_pass_fennel(
            ids,
            ptr,
            edges,
            weights,
            assignment,
            state.edge_counts,
            state.loads,
            scorer.alpha * scorer.gamma,
            scorer.gamma - 1.0,
            restream,
            cap_f,
            use_cap,
        )
