"""Pluggable vertex scorers for the pass kernel.

A scorer turns a vertex's neighbour counts ``X`` and the live partition
loads into the length-``p`` value vector the kernel argmaxes over.  Four
families cover every partitioner in the repository:

* :class:`HyperPRAWScorer` — the paper's Eq. 1,
  ``V_i = -N(v) (C @ X)_i - alpha W(i)/E(i)``; used by HyperPRAW, both
  out-of-core streamers and the sharded boundary restream.
* :class:`FennelScorer` — FENNEL's
  ``|N(v) cap S_i| - alpha gamma |S_i|^{gamma-1}``.
* :class:`HypeScorer` — HYPE's external-neighbour minimisation,
  ``X_i - lambda (T - X_i)`` with ``T = sum_j X_j``; balance comes from
  the kernel's hard cap, matching HYPE's fixed part-size bound.
* :class:`MinMaxScorer` — the greedy min-max connectivity objective of
  the limited-memory streamers (arXiv:2103.05394): place where the
  projected per-part net-connectivity stays smallest.  Pairs with a
  state whose ``gather`` returns net *presence* counts and that
  maintains a live ``connectivity`` vector (see
  ``repro.partitioning.families.MinMaxState``).

Each scorer exposes the same three entry points:

``vertex_values(X, loads, out)``
    exact per-vertex scoring against the live state (``X`` is ``None``
    for isolated vertices);
``block_terms(X_block)``
    the per-block, state-independent part of the score for a whole block
    at once (one matmul for HyperPRAW) — the vectorised hot path;
``chunk_values(terms_i, loads, out)``
    finish one vertex of a block: combine its precomputed term row with
    the *live* load penalty.

The floating-point operation order of ``vertex_values`` deliberately
mirrors the historical inlined loops (``HyperPRAW._stream_pass`` and
friends) so the refactor is assignment-for-assignment reproducible —
the golden-hash tests in ``tests/test_engine.py`` pin this.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HyperPRAWScorer", "FennelScorer", "HypeScorer", "MinMaxScorer"]


class HyperPRAWScorer:
    """Eq. 1 value function with a fixed ``alpha`` (one pass's worth).

    Parameters
    ----------
    cost_matrix:
        ``(p x p)`` architecture cost matrix ``C`` (Section 4.2).
    alpha:
        load-penalty scale for this pass (the tempering schedule hands
        the kernel a fresh scorer per pass).
    expected_loads:
        target load per partition, ``E(k)`` in Eq. 1 (length ``p``).
    presence_threshold:
        Eq. 3 threshold: a partition counts as holding a neighbour only
        when its pin count ``X_j(v)`` reaches this value.
    """

    def __init__(
        self,
        cost_matrix: np.ndarray,
        alpha: float,
        expected_loads: np.ndarray,
        presence_threshold: int = 1,
    ) -> None:
        self.cost_matrix = cost_matrix
        self.alpha = float(alpha)
        self.presence_threshold = int(presence_threshold)
        self.num_parts = expected_loads.shape[0]
        self._inv_expected = 1.0 / expected_loads
        self._alpha_inv_expected = alpha / expected_loads
        self._pen = np.empty(self.num_parts, dtype=np.float64)

    def vertex_values(
        self, X: "np.ndarray | None", loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Write the vertex's length-``p`` Eq. 1 values into ``out``.

        ``X`` is the vertex's per-partition neighbour-count vector
        (``None`` for an isolated vertex: the communication term
        vanishes); ``loads`` the live partition loads.
        """
        if X is None:
            out[:] = 0.0
        else:
            X = np.asarray(X, dtype=np.float64)
            n_neigh = int(np.count_nonzero(X >= self.presence_threshold))
            np.matmul(self.cost_matrix, X, out=out)
            out *= -(n_neigh / self.num_parts)
        pen = self._pen
        np.multiply(loads, self._inv_expected, out=pen)
        pen *= self.alpha
        out -= pen

    def block_terms(self, X: np.ndarray) -> np.ndarray:
        """Per-block communication terms — the vectorised hot path.

        ``X`` stacks a whole block's neighbour counts (``m x p``);
        returns the ``m x p`` state-independent part of Eq. 1 (one
        matmul), to be combined per vertex by :meth:`chunk_values`.
        """
        # Lazy: repro.core's package init imports this package back.
        from repro.core.value import block_value_terms

        T, n_neigh = block_value_terms(
            X, self.cost_matrix, presence_threshold=self.presence_threshold
        )
        return T * (-(n_neigh / self.num_parts))[:, None]

    def chunk_values(
        self, terms: np.ndarray, loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Finish one block vertex: precomputed term row + live load penalty."""
        np.multiply(self._alpha_inv_expected, loads, out=out)
        np.subtract(terms, out, out=out)


class FennelScorer:
    """FENNEL's neighbour-count score with the power-law load penalty.

    Parameters
    ----------
    alpha:
        penalty scale (FENNEL's ``alpha``).
    gamma:
        penalty exponent, must be > 1 (the marginal-cost derivative
        ``alpha * gamma * load^(gamma-1)`` is what the score subtracts).
    """

    def __init__(self, alpha: float, gamma: float) -> None:
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        self.alpha = float(alpha)
        self.gamma = float(gamma)

    def _penalty(self, loads: np.ndarray) -> np.ndarray:
        return self.alpha * self.gamma * np.power(loads, self.gamma - 1.0)

    def vertex_values(
        self, X: "np.ndarray | None", loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Write the vertex's length-``p`` FENNEL scores into ``out``.

        ``X`` is the per-partition neighbour-count vector (``None`` for
        an isolated vertex); ``loads`` the live partition loads.
        """
        if X is None:
            out[:] = 0.0
        else:
            out[:] = X
        out -= self._penalty(loads)

    def block_terms(self, X: np.ndarray) -> np.ndarray:
        """FENNEL's block term is the neighbour counts themselves (``m x p``)."""
        return np.asarray(X, dtype=np.float64)

    def chunk_values(
        self, terms: np.ndarray, loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Finish one block vertex: neighbour-count row minus live penalty."""
        np.subtract(terms, self._penalty(loads), out=out)


class HypeScorer:
    """HYPE's external-neighbour minimisation score (Mayer et al.).

    HYPE grows each part from a fringe, preferring the candidate whose
    neighbourhood leaks least outside the part.  Against the engine's
    per-partition neighbour counts ``X`` that objective is
    ``score_i = X_i - lambda (T - X_i)`` with ``T = sum_j X_j``: the
    neighbours already inside part ``i`` minus ``lambda`` times the
    neighbours that would become external.  There is no load term —
    exactly as in HYPE, parts fill to a hard size bound (the kernel's
    balance cap) and the expansion then spills into the next part.
    Pair with :class:`~repro.engine.blocks.FringeExpansionSource` so the
    visit order is neighbourhood expansion rather than arrival order.

    Parameters
    ----------
    expansion_penalty:
        ``lambda`` >= 0, the weight on external neighbours.  Any
        positive value keeps the argmax on the densest part while making
        the *scores* reflect the external-neighbour count (reported by
        diagnostics and tie-broken by the cap fallback).
    """

    def __init__(self, expansion_penalty: float = 1.0) -> None:
        if expansion_penalty < 0:
            raise ValueError(
                f"expansion_penalty must be >= 0, got {expansion_penalty}"
            )
        self.expansion_penalty = float(expansion_penalty)

    def vertex_values(
        self, X: "np.ndarray | None", loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Write the vertex's length-``p`` expansion scores into ``out``."""
        if X is None:
            out[:] = 0.0
            return
        lam = self.expansion_penalty
        np.multiply(X, 1.0 + lam, out=out)
        out -= lam * float(np.asarray(X).sum())

    def block_terms(self, X: np.ndarray) -> np.ndarray:
        """Block scores are state-independent: counts dressed per vertex."""
        X = np.asarray(X, dtype=np.float64)
        lam = self.expansion_penalty
        return (1.0 + lam) * X - lam * X.sum(axis=1, keepdims=True)

    def chunk_values(
        self, terms: np.ndarray, loads: np.ndarray, out: np.ndarray
    ) -> None:
        """No live load term — the hard cap is the balance mechanism."""
        out[:] = terms


class MinMaxScorer:
    """Greedy min-max net-connectivity objective (arXiv:2103.05394).

    The limited-memory streamers of Taşyaran et al. place each vertex
    where the *maximum* per-part connectivity (distinct nets with a pin
    in the part) grows least.  Placing ``v`` on part ``i`` raises its
    connectivity by ``k_v - X_i`` where ``X_i`` counts how many of
    ``v``'s nets already touch ``i`` — so minimising the projected
    connectivity is ``argmax_i (X_i - conn_i)`` (``k_v`` is constant
    across parts).  A small load tie-break steers between
    connectivity-equal parts; hard balance comes from the kernel cap.

    The scorer must be paired with a state whose ``gather`` returns net
    *presence* counts (not summed pin counts) and that maintains
    ``connectivity`` live — ``repro.partitioning.families.MinMaxState``.
    The arrays are shared by reference, so the scorer always sees the
    state's current connectivity without a callback protocol.

    Parameters
    ----------
    connectivity:
        live length-``p`` per-part distinct-net counters (mutated by the
        paired state as placements happen).
    expected_loads:
        target load per partition (tie-break normalisation).
    tie_penalty:
        weight of the load tie-break; small enough that connectivity
        always dominates (default ``1e-3``).
    """

    def __init__(
        self,
        connectivity: np.ndarray,
        expected_loads: np.ndarray,
        tie_penalty: float = 1e-3,
    ) -> None:
        if tie_penalty < 0:
            raise ValueError(f"tie_penalty must be >= 0, got {tie_penalty}")
        self._conn = connectivity
        self._inv_expected = 1.0 / np.asarray(expected_loads, dtype=np.float64)
        self.tie_penalty = float(tie_penalty)

    def vertex_values(
        self, X: "np.ndarray | None", loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Write the vertex's length-``p`` min-max scores into ``out``."""
        np.multiply(loads, self._inv_expected, out=out)
        out *= -self.tie_penalty
        out -= self._conn
        if X is not None:
            out += X

    def block_terms(self, X: np.ndarray) -> np.ndarray:
        """Presence counts frozen at block start (``m x p``)."""
        return np.asarray(X, dtype=np.float64)

    def chunk_values(
        self, terms: np.ndarray, loads: np.ndarray, out: np.ndarray
    ) -> None:
        """Finish one block vertex against live connectivity and loads."""
        np.multiply(loads, self._inv_expected, out=out)
        out *= -self.tie_penalty
        out -= self._conn
        out += terms
