"""Multiprocessing fan-out for sharded streaming.

The sharded streamer (:mod:`repro.streaming.sharded`) splits a chunk
stream into contiguous chunk ranges and runs one kernel-driven stream
per range.  This module owns the process plumbing:

* :func:`run_tasks` — execute a list of zero-argument callables, one per
  shard, either in forked worker processes (the parallel path) or
  sequentially in-process.  Fork is used deliberately: the callables
  close over live stream/partitioner objects (spill-file handles,
  presence tables) that are fork-inheritable but not picklable, and the
  per-shard *results* — plain numpy arrays and scalars — are all that
  crosses a pipe.  Where fork is unavailable (non-POSIX platforms) the
  tasks run sequentially: same shard structure, same merge, same
  results, no parallelism.
* :func:`merge_shard_tables` — reconcile per-shard presence tables into
  one summed table plus the set of *boundary* hyperedges (nets touched
  by two or more shards — exactly the pins a shard could not see while
  streaming blind of its neighbours).
* :class:`ShardRounds` — persistent shard workers driven through
  barrier-synchronised message rounds.  The v2 sharded streamer keeps
  each worker (and its full local presence table) *alive* after the
  initial stream, so the boundary restream runs sharded too: per pass
  the driver broadcasts a snapshot (alpha, global loads, merged boundary
  rows), every worker restreams its own boundary vertices against it,
  and the driver merges the returned deltas at the barrier.  Only
  boundary information ever crosses a pipe.

Determinism: shard execution order never matters (shards are disjoint,
rounds are barrier-synchronised, and results are merged by shard index),
and the caller hands each shard a generator spawned from one
``SeedSequence``, so ``workers=N`` runs are reproducible for a fixed
seed.  Results *do* differ across different ``N`` (the shard structure
changes), not across runs.  The sequential (fork-less) fallback drives
the same generators through the same rounds in shard order, so it
produces identical results without parallelism.
"""

from __future__ import annotations

import multiprocessing as mp
import warnings

import numpy as np

__all__ = [
    "fork_available",
    "run_tasks",
    "merge_shard_tables",
    "ForkedCall",
    "ShardRounds",
]


def fork_available() -> bool:
    """Whether the fork start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def _resolve_mode(workers: int, num_tasks: int) -> str:
    """``"forked"`` or ``"sequential"`` — the mode a run will actually use.

    Emits a single structured :class:`RuntimeWarning` when parallelism
    was *requested* (``workers > 1`` over more than one task) but fork is
    unavailable, so the silent degradation to sequential execution is
    visible to callers — and surfaced in run metadata — instead of
    benches misreporting sequential numbers as parallel ones.
    """
    if workers <= 1 or num_tasks <= 1:
        return "sequential"
    if fork_available():
        return "forked"
    warnings.warn(
        f"engine.parallel: workers={workers} requested but the 'fork' "
        f"start method is unavailable on this platform; running "
        f"{num_tasks} shards sequentially in-process (identical results, "
        "no parallelism)",
        RuntimeWarning,
        stacklevel=3,
    )
    return "sequential"


def _child(task, conn) -> None:
    try:
        conn.send((True, task()))
    except BaseException as exc:  # surface worker crashes to the parent
        try:
            conn.send((False, repr(exc)))
        finally:
            conn.close()
    else:
        conn.close()


def run_tasks(tasks, workers: int) -> list:
    """Run ``tasks`` (zero-arg callables) and return their results in order.

    With ``workers > 1`` and fork available, each task runs in its own
    forked process and its (picklable) result travels back over a pipe;
    otherwise the tasks run sequentially in-process.  A worker exception
    is re-raised in the parent as ``RuntimeError``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if _resolve_mode(workers, len(tasks)) == "sequential":
        return [task() for task in tasks]
    ctx = mp.get_context("fork")
    procs = []
    for task in tasks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child, args=(task, child_conn), daemon=True)
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))
    results = []
    errors = []
    for proc, conn in procs:
        try:
            ok, payload = conn.recv()
        except EOFError:
            ok, payload = False, "worker exited without a result"
        finally:
            conn.close()
        proc.join()
        results.append(payload if ok else None)
        if not ok:
            errors.append(payload)
    if errors:
        raise RuntimeError(f"sharded streaming worker failed: {errors[0]}")
    return results


def _call_child(fn, conn) -> None:
    """Child body for :class:`ForkedCall`: run ``fn`` and ship the outcome.

    Unlike :func:`_child` (whose payloads feed ``run_tasks``'s single
    merged RuntimeError), the failure payload here keeps the exception
    *type* and message separate, so callers can preserve the same
    ``{code, message}`` shape an in-process run would have produced.
    """
    try:
        conn.send((True, fn()))
    except BaseException as exc:
        try:
            conn.send((False, (type(exc).__name__, str(exc))))
        finally:
            conn.close()
    else:
        conn.close()


class ForkedCall:
    """One callable running in its own forked child, crash-safe.

    The service's process job pool forks one child per partition job:
    the callable closes over live handler state (fork-inheritable, not
    picklable) and only the picklable *result* crosses the pipe — the
    same design as :func:`run_tasks`, but for a single call whose
    failure must be observed rather than raised, and whose child may be
    killed out from under the caller (crash detection is the point).

    The child is **not** daemonic: partition jobs legally fork their own
    shard workers (``workers>=2`` sharded streaming), and daemonic
    processes are forbidden children.  Callers own cleanup via
    :meth:`wait` (always joins) or :meth:`terminate`.

    Outcomes from :meth:`wait`:

    * ``("ok", result)`` — the callable returned ``result``.
    * ``("error", (exc_type_name, message))`` — the callable raised.
    * ``("crashed", detail)`` — the child died without reporting (e.g.
      SIGKILL mid-job); ``detail`` names the exit code / signal.
    """

    def __init__(self, fn) -> None:
        if not fork_available():  # pragma: no cover - non-POSIX guard
            raise RuntimeError(
                "ForkedCall requires the 'fork' start method; use the "
                "thread pool fallback on this platform"
            )
        ctx = mp.get_context("fork")
        self._parent_conn, child_conn = ctx.Pipe(duplex=False)
        self._proc = ctx.Process(
            target=_call_child, args=(fn, child_conn), daemon=False
        )
        self._proc.start()
        child_conn.close()

    @property
    def pid(self) -> "int | None":
        """The child's OS pid (fault injection targets this)."""
        return self._proc.pid

    def wait(self) -> tuple:
        """Block until the child reports or dies; reap it; return the outcome.

        Never hangs on a killed child: the kernel closes the child's end
        of the pipe on process death, so ``recv`` sees EOF immediately.
        """
        try:
            ok, payload = self._parent_conn.recv()
        except (EOFError, OSError):
            ok, payload = None, None
        finally:
            self._parent_conn.close()
        self._proc.join()
        if ok is True:
            return ("ok", payload)
        if ok is False:
            return ("error", payload)
        code = self._proc.exitcode
        detail = (
            f"killed by signal {-code}" if code is not None and code < 0
            else f"exit code {code}"
        )
        return ("crashed", detail)

    def terminate(self) -> None:
        """Kill the child and reap it (idempotent; used at pool close)."""
        try:
            self._parent_conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join()


def _serve_rounds(gen_fn, conn) -> None:
    """Child-process loop: drive one shard generator over a pipe.

    Sends the generator's first yield, then alternates ``recv`` (a round
    message) with ``send`` (the next yield, or the generator's return
    value when it finishes).  Every payload travels as ``(ok, value)``
    so worker crashes surface in the parent.
    """
    try:
        gen = gen_fn()
        conn.send((True, next(gen)))
        while True:
            msg = conn.recv()
            try:
                out = gen.send(msg)
            except StopIteration as stop:
                conn.send((True, stop.value))
                break
            conn.send((True, out))
    except EOFError:
        pass  # driver hung up (e.g. tearing down after another crash)
    except BaseException as exc:
        try:
            conn.send((False, repr(exc)))
        except OSError:
            pass
    finally:
        conn.close()


class ShardRounds:
    """Drive shard generators through barrier-synchronised rounds.

    Each task is a zero-argument callable returning a *generator*: the
    generator's first yield is its phase-1 result, every subsequent
    ``yield`` answers one round message, and its ``return`` value answers
    the final (stop) message.  With ``workers > 1`` and fork available
    each generator runs in its own forked process and messages travel
    over duplex pipes; otherwise the generators are driven sequentially
    in shard order — same messages, same order, identical results.

    Usage::

        pool = ShardRounds(tasks, workers)
        first = pool.start()               # phase-1 results, in order
        while ...:
            replies = pool.exchange(msgs)  # one barrier round
        finals = pool.stop(msgs)           # generator return values
        pool.close()                       # idempotent teardown

    A worker exception is re-raised in the driver as ``RuntimeError``
    (after terminating the remaining workers).
    """

    def __init__(self, tasks, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._tasks = list(tasks)
        #: ``"forked"`` or ``"sequential"`` — how the rounds actually run
        #: (a fork-less fallback warns once; see :func:`_resolve_mode`).
        self.mode = _resolve_mode(workers, len(self._tasks))
        self._forked = self.mode == "forked"
        self._gens: "list | None" = None
        self._procs: list = []
        self._conns: list = []

    def run_metadata(self) -> dict:
        """Pool facts the driver should surface in result metadata."""
        return {"parallel_mode": self.mode}

    # ------------------------------------------------------------------
    def start(self) -> list:
        """Launch every shard; return their phase-1 results in order."""
        if not self._forked:
            self._gens = [task() for task in self._tasks]
            return [next(gen) for gen in self._gens]
        ctx = mp.get_context("fork")
        for task in self._tasks:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_serve_rounds, args=(task, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        return self._collect()

    def exchange(self, messages: list) -> list:
        """One barrier round: send ``messages[k]`` to shard ``k``, collect
        every shard's reply (in shard order)."""
        return self._round(messages)

    def stop(self, messages: list) -> list:
        """Final round: send ``messages[k]``, collect each generator's
        *return* value, and tear the pool down."""
        if self._forked:
            outs = self._round(messages)
            self.close()
            return outs
        outs = []
        for gen, msg in zip(self._gens, messages):
            try:
                gen.send(msg)
            except StopIteration as stop_exc:
                outs.append(stop_exc.value)
            else:
                raise RuntimeError(
                    "shard generator yielded instead of finishing on stop"
                )
        return outs

    def close(self) -> None:
        """Tear down pipes and processes (idempotent)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()
        self._conns, self._procs = [], []

    def __enter__(self) -> "ShardRounds":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _round(self, messages: list) -> list:
        if not self._forked:
            return [
                gen.send(msg) for gen, msg in zip(self._gens, messages)
            ]
        # Send everything first so the shards compute concurrently, then
        # collect at the barrier in shard order (deterministic merges).
        for conn, msg in zip(self._conns, messages):
            conn.send(msg)
        return self._collect()

    def _collect(self) -> list:
        outs, errors = [], []
        for conn in self._conns:
            try:
                ok, payload = conn.recv()
            except EOFError:
                ok, payload = False, "worker exited without a result"
            outs.append(payload if ok else None)
            if not ok:
                errors.append(payload)
        if errors:
            self.close()
            raise RuntimeError(f"sharded streaming worker failed: {errors[0]}")
        return outs


def merge_shard_tables(
    tables: "list[tuple[np.ndarray, np.ndarray]]", num_parts: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Sum per-shard presence tables; flag multi-shard (boundary) nets.

    ``tables`` holds each shard's ``(edge_ids, counts)`` export (counts
    ``len(edge_ids) x p``).  Returns ``(edges, counts, boundary_edges)``
    with ``edges`` sorted ascending (a deterministic merge order) and
    ``boundary_edges`` the subset tracked by two or more shards.
    """
    if not tables:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty((0, num_parts), dtype=np.int64), empty
    all_edges = np.concatenate([t[0] for t in tables])
    if all_edges.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty((0, num_parts), dtype=np.int64), empty
    all_counts = np.concatenate([t[1] for t in tables], axis=0)
    edges, inverse = np.unique(all_edges, return_inverse=True)
    counts = np.zeros((edges.size, num_parts), dtype=all_counts.dtype)
    np.add.at(counts, inverse, all_counts)
    # Within one shard edge ids are unique, so occurrence count across
    # the concatenation == number of shards tracking the net.
    occurrences = np.bincount(inverse, minlength=edges.size)
    boundary = edges[occurrences >= 2]
    return edges, counts, boundary
