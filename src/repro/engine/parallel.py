"""Multiprocessing fan-out for sharded streaming.

The sharded streamer (:mod:`repro.streaming.sharded`) splits a chunk
stream into contiguous chunk ranges and runs one kernel-driven stream
per range.  This module owns the process plumbing:

* :func:`run_tasks` — execute a list of zero-argument callables, one per
  shard, either in forked worker processes (the parallel path) or
  sequentially in-process.  Fork is used deliberately: the callables
  close over live stream/partitioner objects (spill-file handles,
  presence tables) that are fork-inheritable but not picklable, and the
  per-shard *results* — plain numpy arrays and scalars — are all that
  crosses a pipe.  Where fork is unavailable (non-POSIX platforms) the
  tasks run sequentially: same shard structure, same merge, same
  results, no parallelism.
* :func:`merge_shard_tables` — reconcile per-shard presence tables into
  one summed table plus the set of *boundary* hyperedges (nets touched
  by two or more shards — exactly the pins a shard could not see while
  streaming blind of its neighbours).

Determinism: shard execution order never matters (shards are disjoint
and results are merged by shard index), and the caller hands each shard
a generator spawned from one ``SeedSequence``, so ``workers=N`` runs are
reproducible for a fixed seed.  Results *do* differ across different
``N`` (the shard structure changes), not across runs.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

__all__ = ["fork_available", "run_tasks", "merge_shard_tables"]


def fork_available() -> bool:
    """Whether the fork start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def _child(task, conn) -> None:
    try:
        conn.send((True, task()))
    except BaseException as exc:  # surface worker crashes to the parent
        try:
            conn.send((False, repr(exc)))
        finally:
            conn.close()
    else:
        conn.close()


def run_tasks(tasks, workers: int) -> list:
    """Run ``tasks`` (zero-arg callables) and return their results in order.

    With ``workers > 1`` and fork available, each task runs in its own
    forked process and its (picklable) result travels back over a pipe;
    otherwise the tasks run sequentially in-process.  A worker exception
    is re-raised in the parent as ``RuntimeError``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(tasks) <= 1 or not fork_available():
        return [task() for task in tasks]
    ctx = mp.get_context("fork")
    procs = []
    for task in tasks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child, args=(task, child_conn), daemon=True)
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))
    results = []
    errors = []
    for proc, conn in procs:
        try:
            ok, payload = conn.recv()
        except EOFError:
            ok, payload = False, "worker exited without a result"
        finally:
            conn.close()
        proc.join()
        results.append(payload if ok else None)
        if not ok:
            errors.append(payload)
    if errors:
        raise RuntimeError(f"sharded streaming worker failed: {errors[0]}")
    return results


def merge_shard_tables(
    tables: "list[tuple[np.ndarray, np.ndarray]]", num_parts: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Sum per-shard presence tables; flag multi-shard (boundary) nets.

    ``tables`` holds each shard's ``(edge_ids, counts)`` export (counts
    ``len(edge_ids) x p``).  Returns ``(edges, counts, boundary_edges)``
    with ``edges`` sorted ascending (a deterministic merge order) and
    ``boundary_edges`` the subset tracked by two or more shards.
    """
    if not tables:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty((0, num_parts), dtype=np.int64), empty
    all_edges = np.concatenate([t[0] for t in tables])
    if all_edges.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty((0, num_parts), dtype=np.int64), empty
    all_counts = np.concatenate([t[1] for t in tables], axis=0)
    edges, inverse = np.unique(all_edges, return_inverse=True)
    counts = np.zeros((edges.size, num_parts), dtype=all_counts.dtype)
    np.add.at(counts, inverse, all_counts)
    # Within one shard edge ids are unique, so occurrence count across
    # the concatenation == number of shards tracking the net.
    occurrences = np.bincount(inverse, minlength=edges.size)
    boundary = edges[occurrences >= 2]
    return edges, counts, boundary
