"""The one stream-pass loop (visit -> score -> place) everything shares.

Algorithm 1's body — visit each vertex, score every partition, (re)place
the vertex at the argmax — used to be implemented four separate times
(``HyperPRAW._stream_pass``/``_stream_pass_chunked``,
``BufferedRestreamer._window_pass``, ``OnePassStreamer._place_*`` and
``FennelStreaming``'s inline loop).  :func:`pass_kernel` is the single
remaining implementation; the variation lives in its inputs:

* **blocks** — any iterable of :class:`~repro.engine.blocks.VertexBlock`
  (in-memory order, out-of-core chunks, a restream window, a shard);
* **state** — dense exact counts or the bounded capped presence table
  (see :mod:`repro.engine.states`);
* **scorer** — Eq. 1 or FENNEL (see :mod:`repro.engine.scorers`);
* **restream** — lift each vertex out before scoring (restreaming) or
  score it as a first-time arrival (one-pass placement);
* **score_mode** — ``"vertex"`` scores each vertex against the live
  state (exact, block-size invariant); ``"chunk"`` scores a whole block
  against the block-start state with one matmul (the ~2.4x vectorised
  hot path, at the price of intra-block staleness in the neighbour
  term — the load penalty always tracks live loads).  Both modes
  support both ``restream`` settings: chunk-mode restreaming lifts the
  whole block out in one batch (``lift_block``) before the matmul;
* **cap** — optional FENNEL-style hard balance cap;
* **kernel** — ``"python"`` (the reference loop below), ``"njit"`` (the
  optional compiled twin for dense-state vertex scoring — see
  :mod:`~repro.engine.njit_kernel`) or ``"auto"``; the resolved mode is
  returned so drivers can record it as ``kernel_mode`` metadata.

The per-vertex floating-point operation order is preserved from the
historical loops, so refactored partitioners reproduce their previous
assignments bit for bit (pinned by golden-hash tests), and the compiled
kernel reproduces the python path op for op.  Per-pass scratch arrays
(``values``, the chunk placement buffer, the balance-cap mask and the
gather buffer) are allocated once per call and reused across every
vertex and block.
"""

from __future__ import annotations

import numpy as np

from repro.engine.njit_kernel import resolve_kernel, run_njit_block

__all__ = ["pass_kernel", "apply_balance_cap"]


def apply_balance_cap(
    values: np.ndarray,
    loads: np.ndarray,
    weight: float,
    cap: float,
    out: "np.ndarray | None" = None,
    scratch: "np.ndarray | None" = None,
) -> None:
    """Mask partitions the hard balance cap forbids (in place).

    Sets ``values[j] = -inf`` wherever placing a vertex of ``weight``
    would push ``loads[j]`` over ``cap``; when *every* partition is over
    cap, only the emptiest survives (a stream must always be able to
    place).

    ``out`` (length-``p`` bool) and ``scratch`` (length-``p`` float64)
    are optional preallocated work arrays; passing both makes the call
    allocation-free on the hot path.  The masked result is identical
    either way — the buffers change where the intermediates live, not
    the float comparisons (``loads + weight > cap``, never the
    rearranged ``loads > cap - weight``).
    """
    if out is None:
        full = loads + weight > cap
    else:
        summed = loads + weight if scratch is None else np.add(
            loads, weight, out=scratch
        )
        full = np.greater(summed, cap, out=out)
    if full.all():
        # Everything is over cap (tiny p or huge vertex): fall back to
        # the emptiest partition rather than dead-ending.
        if out is None:
            full = loads != loads.min()
        else:
            full = np.not_equal(loads, loads.min(), out=out)
    values[full] = -np.inf


def pass_kernel(
    blocks,
    state,
    scorer,
    assignment: np.ndarray,
    *,
    restream: bool = False,
    score_mode: str = "vertex",
    cap: "float | None" = None,
    kernel: str = "python",
) -> str:
    """Run one pass of visit -> score -> place over ``blocks``.

    Parameters
    ----------
    blocks:
        iterable of :class:`~repro.engine.blocks.VertexBlock` in stream
        order (a :class:`~repro.engine.blocks.VertexSource`'s
        ``blocks()``, ``blocks_of(chunk_stream)``, a single restream
        window, ...).
    state:
        kernel state (see :mod:`repro.engine.states` for the protocol);
        its ``loads`` and counts are mutated in place.
    scorer:
        value function (see :mod:`repro.engine.scorers`).
    assignment:
        length-``|V|`` partition vector indexed by *global* vertex id,
        updated in place; when ``restream`` is set it must hold each
        visited vertex's current partition on entry (the vertex is
        lifted out before scoring).
    restream:
        ``True`` re-places already-assigned vertices (HyperPRAW
        restreaming); ``False`` scores first-time arrivals.
    score_mode:
        ``"vertex"`` (exact, live state) or ``"chunk"`` (one matmul per
        block against the block-start state — the vectorised hot path).
    cap:
        optional hard balance cap passed to :func:`apply_balance_cap`.
    kernel:
        ``"python"`` (default — the reference loop, bit-for-bit stable),
        ``"njit"`` (the optional compiled fast path; falls back to
        python with a :class:`RuntimeWarning` when numba is missing or
        the combination is unsupported) or ``"auto"`` (compiled when
        available, silently python otherwise).

    Returns
    -------
    str
        the kernel mode the pass actually ran (``"python"`` or
        ``"njit"``) — drivers surface it as ``kernel_mode`` run
        metadata; the pass's effects are the in-place updates to
        ``state`` and ``assignment``.
    """
    if score_mode not in ("vertex", "chunk"):
        raise ValueError(
            f"score_mode must be 'vertex' or 'chunk', got {score_mode!r}"
        )
    mode = resolve_kernel(kernel, state, scorer, score_mode)
    loads = state.loads
    p = state.num_parts
    values = np.empty(p, dtype=np.float64)
    cap_mask = np.empty(p, dtype=bool) if cap is not None else None
    cap_scratch = np.empty(p, dtype=np.float64) if cap is not None else None

    if mode == "njit":
        for block in blocks:
            run_njit_block(block, state, scorer, assignment, restream, cap)
        return mode

    if score_mode == "vertex":
        # States advertising gather(out=) get a reused length-p buffer;
        # the bounded LRU table builds its rows itself.
        gather_out = (
            np.empty(p, dtype=np.float64)
            if getattr(state, "gather_accepts_out", False)
            else None
        )
        for block in blocks:
            ids = block.ids
            ptr = block.vertex_ptr
            edges_all = block.vertex_edges
            weights = block.vertex_weights
            for i in range(ids.size):
                v = ids[i]
                edges = edges_all[ptr[i] : ptr[i + 1]]
                w_v = weights[i]
                if restream:
                    state.remove(edges, assignment[v], w_v)
                if edges.size:
                    X = (
                        state.gather(edges)
                        if gather_out is None
                        else state.gather(edges, out=gather_out)
                    )
                else:
                    X = None
                scorer.vertex_values(X, loads, values)
                if cap is not None:
                    apply_balance_cap(
                        values, loads, w_v, cap, out=cap_mask, scratch=cap_scratch
                    )
                j = int(np.argmax(values))
                state.place(edges, j, w_v)
                assignment[v] = j
        return mode

    # ------------------------------------------------------------------
    # chunk mode: neighbour terms frozen at block start, one matmul per
    # block; loads (and, for non-deferred states, the presence table)
    # update live per placement.
    # ------------------------------------------------------------------
    deferred = getattr(state, "place_deferred", False)
    new_buf = np.empty(0, dtype=np.int64)
    for block in blocks:
        ids = block.ids
        ptr = block.vertex_ptr
        edges_all = block.vertex_edges
        weights = block.vertex_weights
        m = ids.size
        if m == 0:
            continue
        if restream:
            old = assignment[ids]
            state.lift_block(edges_all, ptr, old, weights)
        X = state.gather_block(edges_all, ptr)
        terms = scorer.block_terms(X)
        if new_buf.size < m:
            new_buf = np.empty(m, dtype=np.int64)
        new = new_buf[:m]
        for i in range(m):
            scorer.chunk_values(terms[i], loads, values)
            if cap is not None:
                apply_balance_cap(
                    values, loads, weights[i], cap, out=cap_mask, scratch=cap_scratch
                )
            j = int(np.argmax(values))
            new[i] = j
            if deferred:
                loads[j] += weights[i]
            else:
                state.place(edges_all[ptr[i] : ptr[i + 1]], j, weights[i])
        if deferred:
            state.insert_block(edges_all, ptr, new)
        assignment[ids] = new
    return mode
