"""The one stream-pass loop (visit -> score -> place) everything shares.

Algorithm 1's body — visit each vertex, score every partition, (re)place
the vertex at the argmax — used to be implemented four separate times
(``HyperPRAW._stream_pass``/``_stream_pass_chunked``,
``BufferedRestreamer._window_pass``, ``OnePassStreamer._place_*`` and
``FennelStreaming``'s inline loop).  :func:`pass_kernel` is the single
remaining implementation; the variation lives in its inputs:

* **blocks** — any iterable of :class:`~repro.engine.blocks.VertexBlock`
  (in-memory order, out-of-core chunks, a restream window, a shard);
* **state** — dense exact counts or the bounded capped presence table
  (see :mod:`repro.engine.states`);
* **scorer** — Eq. 1 or FENNEL (see :mod:`repro.engine.scorers`);
* **restream** — lift each vertex out before scoring (restreaming) or
  score it as a first-time arrival (one-pass placement);
* **score_mode** — ``"vertex"`` scores each vertex against the live
  state (exact, block-size invariant); ``"chunk"`` scores a whole block
  against the block-start state with one matmul (the ~2.4x vectorised
  hot path, at the price of intra-block staleness in the neighbour
  term — the load penalty always tracks live loads);
* **cap** — optional FENNEL-style hard balance cap.

The per-vertex floating-point operation order is preserved from the
historical loops, so refactored partitioners reproduce their previous
assignments bit for bit (pinned by golden-hash tests).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pass_kernel", "apply_balance_cap"]


def apply_balance_cap(
    values: np.ndarray, loads: np.ndarray, weight: float, cap: float
) -> None:
    """Mask partitions the hard balance cap forbids (in place).

    Sets ``values[j] = -inf`` wherever placing a vertex of ``weight``
    would push ``loads[j]`` over ``cap``; when *every* partition is over
    cap, only the emptiest survives (a stream must always be able to
    place).
    """
    full = loads + weight > cap
    if full.all():
        # Everything is over cap (tiny p or huge vertex): fall back to
        # the emptiest partition rather than dead-ending.
        full = loads != loads.min()
    values[full] = -np.inf


def pass_kernel(
    blocks,
    state,
    scorer,
    assignment: np.ndarray,
    *,
    restream: bool = False,
    score_mode: str = "vertex",
    cap: "float | None" = None,
) -> None:
    """Run one pass of visit -> score -> place over ``blocks``.

    Parameters
    ----------
    blocks:
        iterable of :class:`~repro.engine.blocks.VertexBlock` in stream
        order (a :class:`~repro.engine.blocks.VertexSource`'s
        ``blocks()``, ``blocks_of(chunk_stream)``, a single restream
        window, ...).
    state:
        kernel state (see :mod:`repro.engine.states` for the protocol);
        its ``loads`` and counts are mutated in place.
    scorer:
        value function (see :mod:`repro.engine.scorers`).
    assignment:
        length-``|V|`` partition vector indexed by *global* vertex id,
        updated in place; when ``restream`` is set it must hold each
        visited vertex's current partition on entry (the vertex is
        lifted out before scoring).
    restream:
        ``True`` re-places already-assigned vertices (HyperPRAW
        restreaming); ``False`` scores first-time arrivals.
    score_mode:
        ``"vertex"`` (exact, live state) or ``"chunk"`` (one matmul per
        block against the block-start state — the vectorised hot path).
    cap:
        optional hard balance cap passed to :func:`apply_balance_cap`.

    Returns
    -------
    None
        the pass's effects are the in-place updates to ``state`` and
        ``assignment``.
    """
    if score_mode not in ("vertex", "chunk"):
        raise ValueError(
            f"score_mode must be 'vertex' or 'chunk', got {score_mode!r}"
        )
    loads = state.loads
    values = np.empty(state.num_parts, dtype=np.float64)

    if score_mode == "vertex":
        for block in blocks:
            ids = block.ids
            ptr = block.vertex_ptr
            edges_all = block.vertex_edges
            weights = block.vertex_weights
            for i in range(ids.size):
                v = ids[i]
                edges = edges_all[ptr[i] : ptr[i + 1]]
                w_v = weights[i]
                if restream:
                    state.remove(edges, assignment[v], w_v)
                X = state.gather(edges) if edges.size else None
                scorer.vertex_values(X, loads, values)
                if cap is not None:
                    apply_balance_cap(values, loads, w_v, cap)
                j = int(np.argmax(values))
                state.place(edges, j, w_v)
                assignment[v] = j
        return

    # ------------------------------------------------------------------
    # chunk mode: neighbour terms frozen at block start, one matmul per
    # block; loads (and, for non-deferred states, the presence table)
    # update live per placement.
    # ------------------------------------------------------------------
    deferred = getattr(state, "place_deferred", False)
    for block in blocks:
        ids = block.ids
        ptr = block.vertex_ptr
        edges_all = block.vertex_edges
        weights = block.vertex_weights
        m = ids.size
        if m == 0:
            continue
        if restream:
            old = assignment[ids]
            state.lift_block(edges_all, ptr, old, weights)
        X = state.gather_block(edges_all, ptr)
        terms = scorer.block_terms(X)
        new = np.empty(m, dtype=np.int64)
        for i in range(m):
            scorer.chunk_values(terms[i], loads, values)
            if cap is not None:
                apply_balance_cap(values, loads, weights[i], cap)
            j = int(np.argmax(values))
            new[i] = j
            if deferred:
                loads[j] += weights[i]
            else:
                state.place(edges_all[ptr[i] : ptr[i + 1]], j, weights[i])
        if deferred:
            state.insert_block(edges_all, ptr, new)
        assignment[ids] = new
