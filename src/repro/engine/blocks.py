"""Vertex blocks and sources — the input side of the pass kernel.

Every stream-pass loop in the repository consumes the same currency: a
group of vertices with their incident hyperedge lists in local CSR form
plus their weights.  :class:`VertexBlock` is that currency, and a
:class:`VertexSource` is anything that yields blocks in stream order:

* :class:`InMemorySource` — blocks over an in-memory
  :class:`~repro.hypergraph.model.Hypergraph`, in natural or arbitrary
  (e.g. shuffled) vertex order.  Natural-order blocks are zero-copy views
  of the CSR arrays; arbitrary orders gather per block.
* chunk streams — the out-of-core readers of
  :mod:`repro.streaming.reader` yield :class:`VertexChunk` objects, which
  :func:`block_of` converts (the chunk *is* the block; only the explicit
  global-id array is added).
* sharded ranges — :func:`shard_ranges` splits a chunk index range into
  contiguous per-worker shards; each worker then draws its blocks from
  ``stream.iter_range`` (see :mod:`repro.engine.parallel`).
* persistent stores — :class:`ChunkStoreSource` replays a saved binary
  chunk store (:mod:`repro.streaming.chunkstore`) as memory-mapped
  zero-copy blocks, so restreaming passes skip text ingest entirely.

Unlike :class:`~repro.streaming.reader.VertexChunk`, a block's vertex ids
need not be contiguous — restream windows and shuffled orders carry an
explicit ``ids`` array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.hypergraph.model import Hypergraph

__all__ = [
    "VertexBlock",
    "VertexSource",
    "InMemorySource",
    "ChunkStoreSource",
    "block_of",
    "blocks_of",
    "segment_gather_index",
    "shard_ranges",
]


def segment_gather_index(global_starts: np.ndarray, degs: np.ndarray) -> np.ndarray:
    """Flat indices gathering variable-length segments from a CSR array.

    For segment ``i`` starting at ``global_starts[i]`` with length
    ``degs[i]``, the result indexes the concatenation of all segments:
    ``source[segment_gather_index(starts, degs)]`` is the segments laid
    out back to back — the one-fancy-index replacement for a per-segment
    slicing loop.
    """
    total = int(degs.sum())
    local_ptr = np.zeros(degs.size + 1, dtype=np.int64)
    np.cumsum(degs, out=local_ptr[1:])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(local_ptr[:-1], degs)
        + np.repeat(global_starts, degs)
    )


@dataclass(frozen=True)
class VertexBlock:
    """A group of vertices in local CSR form.

    ``vertex_edges[vertex_ptr[i]:vertex_ptr[i+1]]`` are the global
    hyperedge ids incident to the block's ``i``-th vertex, whose global id
    is ``ids[i]``.
    """

    ids: np.ndarray
    vertex_ptr: np.ndarray
    vertex_edges: np.ndarray
    vertex_weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.ids.size)

    @property
    def num_pins(self) -> int:
        return int(self.vertex_edges.size)

    def edges_of(self, i: int) -> np.ndarray:
        """Incident global hyperedge ids of the block's ``i``-th vertex."""
        return self.vertex_edges[self.vertex_ptr[i] : self.vertex_ptr[i + 1]]


@runtime_checkable
class VertexSource(Protocol):
    """Anything that can feed the pass kernel."""

    def blocks(self) -> Iterator[VertexBlock]:
        """Yield the source's vertices as blocks, in stream order."""
        ...


def block_of(chunk) -> VertexBlock:
    """Adapt a contiguous :class:`~repro.streaming.reader.VertexChunk`.

    The chunk *is* the block — its CSR arrays are reused as-is; only the
    explicit global-id array (``arange(start, stop)``) is added.
    """
    return VertexBlock(
        ids=np.arange(chunk.start, chunk.stop, dtype=np.int64),
        vertex_ptr=chunk.vertex_ptr,
        vertex_edges=chunk.vertex_edges,
        vertex_weights=chunk.vertex_weights,
    )


def blocks_of(chunks: Iterable) -> Iterator[VertexBlock]:
    """Adapt an iterable of chunks (e.g. a ``ChunkStream``) lazily.

    Yields one :class:`VertexBlock` per chunk via :func:`block_of`; the
    underlying stream controls chunk residency, so the adaptation adds
    no memory beyond the id arrays.
    """
    for chunk in chunks:
        yield block_of(chunk)


class InMemorySource:
    """Blocks over an in-memory hypergraph, in a given vertex order.

    Parameters
    ----------
    hg:
        the hypergraph.
    order:
        visit order (any permutation of ``arange(|V|)``); ``None`` is
        natural order.  Natural-order blocks are zero-copy CSR views.
    block_size:
        vertices per block; ``None`` yields one block covering the whole
        order (the right granularity for per-vertex scoring, where block
        boundaries are invisible).
    """

    def __init__(
        self,
        hg: Hypergraph,
        *,
        order: "np.ndarray | None" = None,
        block_size: "int | None" = None,
    ) -> None:
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1 or None, got {block_size}")
        self.hg = hg
        self.order = order
        self.block_size = block_size
        self._natural = order is None or bool(
            np.array_equal(order, np.arange(hg.num_vertices))
        )

    def blocks(self) -> Iterator[VertexBlock]:
        hg = self.hg
        order = (
            np.arange(hg.num_vertices, dtype=np.int64)
            if self.order is None
            else self.order
        )
        size = self.block_size or max(1, order.size)
        vptr, vedges, weights = hg.vertex_ptr, hg.vertex_edges, hg.vertex_weights
        for start in range(0, order.size, size):
            ids = order[start : start + size]
            if self._natural:
                lo, hi = int(ids[0]), int(ids[-1]) + 1
                base = vptr[lo]
                yield VertexBlock(
                    ids=ids,
                    vertex_ptr=vptr[lo : hi + 1] - base,
                    vertex_edges=vedges[base : vptr[hi]],
                    vertex_weights=weights[lo:hi],
                )
                continue
            # Arbitrary order: gather the concatenated incident-edge
            # lists of the block with one segmented fancy index.
            degs = vptr[ids + 1] - vptr[ids]
            ptr = np.zeros(ids.size + 1, dtype=np.int64)
            np.cumsum(degs, out=ptr[1:])
            yield VertexBlock(
                ids=ids,
                vertex_ptr=ptr,
                vertex_edges=vedges[segment_gather_index(vptr[ids], degs)],
                vertex_weights=weights[ids],
            )


class ChunkStoreSource:
    """Blocks replayed from a persistent on-disk chunk store.

    The :class:`VertexSource` face of
    :class:`~repro.streaming.chunkstore.ChunkStoreStream`: point it at a
    store directory (written by ``ChunkStream.save``) and every
    :meth:`blocks` call replays the stored chunks as memory-mapped
    zero-copy blocks — no text parsing, no spill files.  Restreaming
    drivers can call :meth:`blocks` once per pass; sharded workers pass
    a chunk range so each worker maps only its shard.

    Parameters
    ----------
    path:
        store directory (see :func:`repro.streaming.chunkstore.
        open_store`).
    chunk_range:
        optional ``(lo, hi)`` chunk-index range to replay (a shard);
        ``None`` replays the whole store.
    expected_digest:
        optional source digest the store manifest must match.
    """

    def __init__(
        self,
        path,
        *,
        chunk_range: "tuple[int, int] | None" = None,
        expected_digest: "str | None" = None,
    ) -> None:
        # Lazy import: repro.streaming drivers import this package.
        from repro.streaming.chunkstore import open_store

        self.stream = open_store(path, expected_digest=expected_digest)
        self.chunk_range = chunk_range

    def blocks(self) -> Iterator[VertexBlock]:
        """Replay the stored chunks (or the configured range) as blocks."""
        lo, hi = self.chunk_range or (0, self.stream.num_chunks)
        return blocks_of(self.stream.iter_range(lo, hi))


def shard_ranges(num_chunks: int, workers: int) -> "list[tuple[int, int]]":
    """Split ``[0, num_chunks)`` into ``workers`` contiguous chunk ranges.

    Ranges are near-equal (first ``num_chunks % workers`` shards get one
    extra chunk) and empty shards are dropped, so the result may be
    shorter than ``workers`` on tiny streams.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    base, extra = divmod(num_chunks, workers)
    ranges = []
    lo = 0
    for k in range(workers):
        hi = lo + base + (1 if k < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges
