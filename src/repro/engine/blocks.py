"""Vertex blocks and sources — the input side of the pass kernel.

Every stream-pass loop in the repository consumes the same currency: a
group of vertices with their incident hyperedge lists in local CSR form
plus their weights.  :class:`VertexBlock` is that currency, and a
:class:`VertexSource` is anything that yields blocks in stream order:

* :class:`InMemorySource` — blocks over an in-memory
  :class:`~repro.hypergraph.model.Hypergraph`, in natural or arbitrary
  (e.g. shuffled) vertex order.  Natural-order blocks are zero-copy views
  of the CSR arrays; arbitrary orders gather per block.
* chunk streams — the out-of-core readers of
  :mod:`repro.streaming.reader` yield :class:`VertexChunk` objects, which
  :func:`block_of` converts (the chunk *is* the block; only the explicit
  global-id array is added).
* sharded ranges — :func:`shard_ranges` splits a chunk index range into
  contiguous per-worker shards; each worker then draws its blocks from
  ``stream.iter_range`` (see :mod:`repro.engine.parallel`).
* persistent stores — :class:`ChunkStoreSource` replays a saved binary
  chunk store (:mod:`repro.streaming.chunkstore`) as memory-mapped
  zero-copy blocks, so restreaming passes skip text ingest entirely.

Unlike :class:`~repro.streaming.reader.VertexChunk`, a block's vertex ids
need not be contiguous — restream windows and shuffled orders carry an
explicit ``ids`` array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.hypergraph.model import Hypergraph

__all__ = [
    "VertexBlock",
    "VertexSource",
    "InMemorySource",
    "FringeExpansionSource",
    "ChunkStoreSource",
    "block_of",
    "blocks_of",
    "expansion_order",
    "segment_gather_index",
    "shard_ranges",
    "shard_ranges_by_pins",
]


def segment_gather_index(global_starts: np.ndarray, degs: np.ndarray) -> np.ndarray:
    """Flat indices gathering variable-length segments from a CSR array.

    For segment ``i`` starting at ``global_starts[i]`` with length
    ``degs[i]``, the result indexes the concatenation of all segments:
    ``source[segment_gather_index(starts, degs)]`` is the segments laid
    out back to back — the one-fancy-index replacement for a per-segment
    slicing loop.
    """
    total = int(degs.sum())
    local_ptr = np.zeros(degs.size + 1, dtype=np.int64)
    np.cumsum(degs, out=local_ptr[1:])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(local_ptr[:-1], degs)
        + np.repeat(global_starts, degs)
    )


@dataclass(frozen=True)
class VertexBlock:
    """A group of vertices in local CSR form.

    ``vertex_edges[vertex_ptr[i]:vertex_ptr[i+1]]`` are the global
    hyperedge ids incident to the block's ``i``-th vertex, whose global id
    is ``ids[i]``.
    """

    ids: np.ndarray
    vertex_ptr: np.ndarray
    vertex_edges: np.ndarray
    vertex_weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.ids.size)

    @property
    def num_pins(self) -> int:
        return int(self.vertex_edges.size)

    def edges_of(self, i: int) -> np.ndarray:
        """Incident global hyperedge ids of the block's ``i``-th vertex."""
        return self.vertex_edges[self.vertex_ptr[i] : self.vertex_ptr[i + 1]]


@runtime_checkable
class VertexSource(Protocol):
    """Anything that can feed the pass kernel."""

    def blocks(self) -> Iterator[VertexBlock]:
        """Yield the source's vertices as blocks, in stream order."""
        ...


def block_of(chunk) -> VertexBlock:
    """Adapt a contiguous :class:`~repro.streaming.reader.VertexChunk`.

    The chunk *is* the block — its CSR arrays are reused as-is; only the
    explicit global-id array (``arange(start, stop)``) is added.
    """
    return VertexBlock(
        ids=np.arange(chunk.start, chunk.stop, dtype=np.int64),
        vertex_ptr=chunk.vertex_ptr,
        vertex_edges=chunk.vertex_edges,
        vertex_weights=chunk.vertex_weights,
    )


def blocks_of(chunks: Iterable) -> Iterator[VertexBlock]:
    """Adapt an iterable of chunks (e.g. a ``ChunkStream``) lazily.

    Yields one :class:`VertexBlock` per chunk via :func:`block_of`; the
    underlying stream controls chunk residency, so the adaptation adds
    no memory beyond the id arrays.
    """
    for chunk in chunks:
        yield block_of(chunk)


class InMemorySource:
    """Blocks over an in-memory hypergraph, in a given vertex order.

    Parameters
    ----------
    hg:
        the hypergraph.
    order:
        visit order (any permutation of ``arange(|V|)``); ``None`` is
        natural order.  Natural-order blocks are zero-copy CSR views.
    block_size:
        vertices per block; ``None`` yields one block covering the whole
        order (the right granularity for per-vertex scoring, where block
        boundaries are invisible).
    """

    def __init__(
        self,
        hg: Hypergraph,
        *,
        order: "np.ndarray | None" = None,
        block_size: "int | None" = None,
    ) -> None:
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1 or None, got {block_size}")
        self.hg = hg
        self.order = order
        self.block_size = block_size
        self._natural = order is None or bool(
            np.array_equal(order, np.arange(hg.num_vertices))
        )

    def blocks(self) -> Iterator[VertexBlock]:
        hg = self.hg
        order = (
            np.arange(hg.num_vertices, dtype=np.int64)
            if self.order is None
            else self.order
        )
        size = self.block_size or max(1, order.size)
        vptr, vedges, weights = hg.vertex_ptr, hg.vertex_edges, hg.vertex_weights
        for start in range(0, order.size, size):
            ids = order[start : start + size]
            if self._natural:
                lo, hi = int(ids[0]), int(ids[-1]) + 1
                base = vptr[lo]
                yield VertexBlock(
                    ids=ids,
                    vertex_ptr=vptr[lo : hi + 1] - base,
                    vertex_edges=vedges[base : vptr[hi]],
                    vertex_weights=weights[lo:hi],
                )
                continue
            # Arbitrary order: gather the concatenated incident-edge
            # lists of the block with one segmented fancy index.
            degs = vptr[ids + 1] - vptr[ids]
            ptr = np.zeros(ids.size + 1, dtype=np.int64)
            np.cumsum(degs, out=ptr[1:])
            yield VertexBlock(
                ids=ids,
                vertex_ptr=ptr,
                vertex_edges=vedges[segment_gather_index(vptr[ids], degs)],
                vertex_weights=weights[ids],
            )


def expansion_order(
    hg: Hypergraph, *, max_expand_net: "int | None" = 256
) -> np.ndarray:
    """HYPE-style neighbourhood-expansion visit order (a permutation).

    Grows a fringe the way HYPE grows a part: seed at the lowest-degree
    unvisited vertex, then repeatedly pop the fringe vertex with the
    fewest incident nets (the cheapest external neighbourhood) and push
    its hyperedge neighbours.  When the fringe runs dry — a connected
    component is exhausted — the next lowest-degree unvisited vertex
    seeds a new expansion.  Every hyperedge is expanded through at most
    once (its first touch queues all its pins), so the whole order costs
    ``O(pins + |V| log |V|)``.

    Parameters
    ----------
    hg:
        the hypergraph.
    max_expand_net:
        nets with more pins than this are never expanded through —
        HYPE's own guard against hub nets turning the fringe into the
        whole graph in one step (``None`` expands through everything).

    Returns
    -------
    np.ndarray
        a permutation of ``arange(num_vertices)`` in expansion order.
    """
    import heapq

    n = hg.num_vertices
    degrees = np.diff(hg.vertex_ptr)
    net_sizes = np.diff(hg.edge_ptr)
    order = np.empty(n, dtype=np.int64)
    queued = np.zeros(n, dtype=bool)
    edge_done = np.zeros(hg.num_edges, dtype=bool)
    seeds = np.argsort(degrees, kind="stable")
    vptr, vedges = hg.vertex_ptr, hg.vertex_edges
    eptr, epins = hg.edge_ptr, hg.edge_pins
    heap: "list[tuple[int, int]]" = []
    seed_pos = 0
    for pos in range(n):
        if not heap:
            while queued[seeds[seed_pos]]:
                seed_pos += 1
            v = int(seeds[seed_pos])
            queued[v] = True
            heapq.heappush(heap, (int(degrees[v]), v))
        _, v = heapq.heappop(heap)
        order[pos] = v
        for e in vedges[vptr[v] : vptr[v + 1]].tolist():
            if edge_done[e]:
                continue
            edge_done[e] = True
            if max_expand_net is not None and net_sizes[e] > max_expand_net:
                continue
            for u in epins[eptr[e] : eptr[e + 1]].tolist():
                if not queued[u]:
                    queued[u] = True
                    heapq.heappush(heap, (int(degrees[u]), u))
    return order


class FringeExpansionSource:
    """Blocks over an in-memory hypergraph in fringe-expansion order.

    The :class:`VertexSource` face of :func:`expansion_order`: block
    ``k`` holds the ``k``-th slice of the expansion, so a place-only
    kernel pass fills parts neighbourhood by neighbourhood instead of in
    arrival order.  This stresses the presence table very differently
    from sequential streaming — consecutive vertices share nets, so the
    LRU working set is the *fringe's* nets, not the arrival window's.

    The order is computed lazily on first use and cached; gathering the
    reordered CSR reuses :class:`InMemorySource`'s segmented fancy
    indexing.

    Parameters
    ----------
    hg:
        the hypergraph.
    block_size:
        vertices per block (``None`` = one block, right for per-vertex
        scoring).
    max_expand_net:
        hub-net expansion guard, see :func:`expansion_order`.
    """

    def __init__(
        self,
        hg: Hypergraph,
        *,
        block_size: "int | None" = None,
        max_expand_net: "int | None" = 256,
    ) -> None:
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1 or None, got {block_size}")
        self.hg = hg
        self.block_size = block_size
        self.max_expand_net = max_expand_net
        self._order: "np.ndarray | None" = None

    @property
    def order(self) -> np.ndarray:
        """The cached expansion order (computed on first access)."""
        if self._order is None:
            self._order = expansion_order(
                self.hg, max_expand_net=self.max_expand_net
            )
        return self._order

    def blocks(self) -> Iterator[VertexBlock]:
        return InMemorySource(
            self.hg, order=self.order, block_size=self.block_size
        ).blocks()


class ChunkStoreSource:
    """Blocks replayed from a persistent on-disk chunk store.

    The :class:`VertexSource` face of
    :class:`~repro.streaming.chunkstore.ChunkStoreStream`: point it at a
    store directory (written by ``ChunkStream.save``) and every
    :meth:`blocks` call replays the stored chunks as memory-mapped
    zero-copy blocks — no text parsing, no spill files.  Restreaming
    drivers can call :meth:`blocks` once per pass; sharded workers pass
    a chunk range so each worker maps only its shard.

    Parameters
    ----------
    path:
        store directory (see :func:`repro.streaming.chunkstore.
        open_store`).
    chunk_range:
        optional ``(lo, hi)`` chunk-index range to replay (a shard);
        ``None`` replays the whole store.
    expected_digest:
        optional source digest the store manifest must match.
    """

    def __init__(
        self,
        path,
        *,
        chunk_range: "tuple[int, int] | None" = None,
        expected_digest: "str | None" = None,
    ) -> None:
        # Lazy import: repro.streaming drivers import this package.
        from repro.streaming.chunkstore import open_store

        self.stream = open_store(path, expected_digest=expected_digest)
        self.chunk_range = chunk_range

    def blocks(self) -> Iterator[VertexBlock]:
        """Replay the stored chunks (or the configured range) as blocks."""
        lo, hi = self.chunk_range or (0, self.stream.num_chunks)
        return blocks_of(self.stream.iter_range(lo, hi))


def shard_ranges(num_chunks: int, workers: int) -> "list[tuple[int, int]]":
    """Split ``[0, num_chunks)`` into ``workers`` contiguous chunk ranges.

    Ranges are near-equal (first ``num_chunks % workers`` shards get one
    extra chunk) and empty shards are dropped, so the result may be
    shorter than ``workers`` on tiny streams.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    base, extra = divmod(num_chunks, workers)
    ranges = []
    lo = 0
    for k in range(workers):
        hi = lo + base + (1 if k < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


def shard_ranges_by_pins(
    chunk_pins, workers: int
) -> "list[tuple[int, int]]":
    """Split chunks into contiguous ranges balancing *pins*, not counts.

    Streaming cost is proportional to pins, and chunk pin counts can be
    wildly skewed (hub-heavy prefixes), so equal chunk *counts* leave
    stragglers.  Each cut lands where the cumulative pin count reaches a
    fair share of what remains, with every shard guaranteed at least one
    chunk.  ``workers`` is clamped to the chunk count, so the result has
    exactly ``min(workers, len(chunk_pins))`` ranges.

    Parameters
    ----------
    chunk_pins:
        per-chunk pin counts, in chunk order (see
        ``ChunkStream.chunk_pins``).
    workers:
        requested shard count.

    Returns
    -------
    list[tuple[int, int]]
        contiguous ``(lo, hi)`` chunk-index ranges covering every chunk.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    pins = np.asarray(chunk_pins, dtype=np.int64)
    n = int(pins.size)
    if n == 0:
        return []
    workers = min(workers, n)
    total = int(pins.sum())
    if total <= 0:
        return shard_ranges(n, workers)
    cum = np.cumsum(pins)
    ranges: "list[tuple[int, int]]" = []
    lo = 0
    for k in range(workers):
        remaining = workers - k
        if remaining == 1:
            hi = n
        else:
            done = int(cum[lo - 1]) if lo else 0
            target = done + (total - done) / remaining
            hi = int(np.searchsorted(cum, target, side="left")) + 1
            # Cut at whichever adjacent chunk boundary lies closer to
            # the fair share — always taking the crossing chunk would
            # hand a hub-heavy prefix a systematic overshoot, the very
            # skew this function exists to remove.
            if hi - 1 > lo and (cum[hi - 1] - target) > (target - cum[hi - 2]):
                hi -= 1
            # every shard takes >= 1 chunk, and leaves >= 1 per remainder
            hi = max(hi, lo + 1)
            hi = min(hi, n - (remaining - 1))
        ranges.append((lo, hi))
        lo = hi
    return ranges
