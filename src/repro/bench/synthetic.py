"""Null-compute synthetic benchmark (paper Section 5.3).

Per timestep, every hyperedge makes each pair of its pins that live in
different partitions exchange one message in each direction.  With
``n_k(e)`` pins of hyperedge ``e`` in partition ``k``, the number of
logical messages from partition ``a`` to partition ``b != a`` is

.. math:: m_{ab} = \\sum_e n_a(e) \\cdot n_b(e) = (N^T N)_{ab}

— one matrix product over the hyperedge-partition count matrix ``N``
computes the whole exchange.  Bytes are ``message_bytes`` per logical
message (scaled by hyperedge weight when weights are in use, matching the
paper's "weighted hyperedges" extension).  The aggregated exchange is then
timed by the cluster simulator; total runtime is ``timesteps`` identical
exchanges plus a per-step synchronisation barrier.

The benchmark is an *extreme* application (zero compute), which is the
point: it isolates exactly the quantity the partitioners differ on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import edge_partition_counts
from repro.hypergraph.model import Hypergraph
from repro.simcomm.collectives import barrier_time
from repro.simcomm.network import LinkModel
from repro.simcomm.simulator import ClusterSimulator, ExchangeResult
from repro.simcomm.trace import TrafficTrace
from repro.utils.validation import check_positive

__all__ = ["partition_traffic", "BenchmarkOutcome", "SyntheticBenchmark"]


def partition_traffic(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    *,
    message_bytes: int = 1024,
    use_edge_weights: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-timestep traffic implied by a partition.

    Returns ``(bytes_matrix, messages_matrix)`` where entry ``[a, b]``
    aggregates the messages partition ``a`` sends to ``b`` during one
    timestep.  Both diagonals are zero — intra-partition pairs exchange
    nothing over the network.
    """
    check_positive("message_bytes", message_bytes)
    counts = edge_partition_counts(hg, assignment, num_parts).astype(np.float64)
    messages = counts.T @ counts
    np.fill_diagonal(messages, 0.0)
    if use_edge_weights and not np.all(hg.edge_weights == 1.0):
        weighted = counts * hg.edge_weights[:, None]
        bytes_matrix = (weighted.T @ counts) * float(message_bytes)
    else:
        bytes_matrix = messages * float(message_bytes)
    np.fill_diagonal(bytes_matrix, 0.0)
    return bytes_matrix, messages.astype(np.int64)


@dataclass(frozen=True)
class BenchmarkOutcome:
    """Result of one synthetic-benchmark run.

    Attributes
    ----------
    runtime_s:
        total simulated runtime over all timesteps (exchange + barrier).
    per_step_s:
        simulated seconds per timestep.
    barrier_s:
        synchronisation cost per timestep (identical across partitioners).
    total_bytes / total_messages:
        network totals per timestep.
    exchange:
        the simulator's detailed result for one timestep.
    trace:
        accumulated traffic matrix (all timesteps) for Figure 1B/6 plots.
    """

    runtime_s: float
    per_step_s: float
    barrier_s: float
    total_bytes: float
    total_messages: int
    exchange: ExchangeResult
    trace: TrafficTrace


class SyntheticBenchmark:
    """Runs the null-compute benchmark on a simulated machine.

    Parameters
    ----------
    link_model:
        the machine (must have at least ``num_parts`` ranks; partition
        ``k`` runs on rank ``k``).
    message_bytes:
        payload per logical message.
    timesteps:
        benchmark iterations; the traffic is identical each step, so the
        makespan is simulated once and scaled.
    model:
        ``"blocking"`` (default — the paper's blocking send/receive
        loop), ``"overlap"`` (LogGP-style non-blocking) or
        ``"endpoint"`` (event-driven serialisation) simulator model.
    include_barrier:
        add a per-step barrier, as a bulk-synchronous application would.
    """

    def __init__(
        self,
        link_model: LinkModel,
        *,
        message_bytes: int = 1024,
        timesteps: int = 10,
        model: str = "blocking",
        include_barrier: bool = True,
    ) -> None:
        self.link_model = link_model
        self.message_bytes = int(check_positive("message_bytes", message_bytes))
        self.timesteps = int(check_positive("timesteps", timesteps))
        self.model = model
        self.include_barrier = bool(include_barrier)
        self._simulator = ClusterSimulator(link_model)

    # ------------------------------------------------------------------
    def run(
        self,
        hg: Hypergraph,
        assignment: np.ndarray,
        num_parts: int,
        *,
        use_edge_weights: bool = True,
    ) -> BenchmarkOutcome:
        """Simulate the benchmark for one partition assignment."""
        if num_parts > self.link_model.num_ranks:
            raise ValueError(
                f"{num_parts} partitions but machine has only "
                f"{self.link_model.num_ranks} ranks"
            )
        bytes_m, msgs_m = partition_traffic(
            hg,
            assignment,
            num_parts,
            message_bytes=self.message_bytes,
            use_edge_weights=use_edge_weights,
        )
        # Pad to the machine size so rank ids align with partition ids.
        n = self.link_model.num_ranks
        if num_parts < n:
            padded_b = np.zeros((n, n))
            padded_b[:num_parts, :num_parts] = bytes_m
            padded_m = np.zeros((n, n), dtype=np.int64)
            padded_m[:num_parts, :num_parts] = msgs_m
            bytes_m, msgs_m = padded_b, padded_m
        exchange = self._simulator.run_exchange_matrix(
            bytes_m, messages_matrix=msgs_m, model=self.model
        )
        barrier = barrier_time(self.link_model) if self.include_barrier else 0.0
        per_step = exchange.makespan_s + barrier
        trace = TrafficTrace(n)
        for _ in range(self.timesteps):
            trace.record_matrix(bytes_m, msgs_m)
        return BenchmarkOutcome(
            runtime_s=per_step * self.timesteps,
            per_step_s=per_step,
            barrier_s=barrier,
            total_bytes=float(bytes_m.sum()),
            total_messages=int(msgs_m.sum()),
            exchange=exchange,
            trace=trace,
        )
