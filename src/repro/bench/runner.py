"""Multi-job experiment runner — the paper's evaluation protocol.

Section 5.3: *"To account for variable network traffic and different node
configurations provided by the job scheduler, the runtime experiments are
run on three different jobs (hence different node placement and
communication costs), with each job doing two iterations.  Therefore the
total number of simulations run per experiment is 6."*

:class:`ExperimentRunner` reproduces that protocol on the simulator:

1. For each of ``num_jobs`` simulated allocations, draw a fresh
   ground-truth bandwidth/latency realisation (different seed = different
   node placement) and **ring-profile** it — partitioners only ever see
   the *measured* cost matrix, never the ground truth.
2. Partition every instance with every strategy once per job.
3. Run the synthetic benchmark ``iterations`` times per job with
   per-iteration multiplicative bandwidth jitter (background traffic).
4. Aggregate runtimes and quality metrics per (instance, strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.architecture.bandwidth import BandwidthModel
from repro.architecture.profiling import RingProfiler
from repro.bench.synthetic import SyntheticBenchmark
from repro.core.base import Partitioner
from repro.core.metrics import PartitionQuality, evaluate_partition
from repro.hypergraph.model import Hypergraph
from repro.simcomm.network import LinkModel
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive

__all__ = ["JobContext", "RunRecord", "ExperimentRunner"]


@dataclass(frozen=True)
class JobContext:
    """One simulated job allocation.

    Attributes
    ----------
    job_id:
        index within the experiment.
    link_model:
        ground-truth machine for this allocation.
    measured_bandwidth:
        the ring-profiled bandwidth matrix (what the paper's tooling sees).
    cost_matrix:
        normalised cost matrix derived from the *measured* bandwidths.
    profiling_time_s:
        simulated cost of the profiling session itself.
    """

    job_id: int
    link_model: LinkModel
    measured_bandwidth: np.ndarray
    cost_matrix: np.ndarray
    profiling_time_s: float


@dataclass(frozen=True)
class RunRecord:
    """One benchmark simulation (one iteration of one job)."""

    instance: str
    algorithm: str
    job_id: int
    iteration: int
    runtime_s: float
    quality: PartitionQuality
    partition_wall_s: float


class ExperimentRunner:
    """Runs the full paper protocol for a set of instances and strategies.

    Parameters
    ----------
    bandwidth_model:
        generator of ground-truth machines (one realisation per job).
    num_parts:
        partitions / compute units used (defaults to the machine size).
    num_jobs / iterations:
        the paper uses 3 jobs x 2 iterations.
    message_bytes / timesteps / sim_model:
        synthetic benchmark parameters.
    iteration_noise:
        sigma of per-iteration log-normal bandwidth jitter (variable
        network traffic between iterations of the same job).
    profiler_repeats / profiler_noise:
        ring-profiling parameters.
    blind_rank_mapping:
        how partition ids of *architecture-blind* partitioners map onto
        physical ranks.  ``"shuffled"`` (default) applies a random, per-
        (job, instance, algorithm) permutation: a blind partitioner's part
        numbering carries no placement information, which is exactly what
        the paper's Figure 6B/6C shows for Zoltan and HyperPRAW-basic
        (uniformly random peer-to-peer patterns).  ``"identity"`` keeps
        part ``k`` on rank ``k``; with our recursive-bisection baseline
        that accidentally aligns sibling partitions (which share the
        heaviest boundary) with same-processor rank pairs — a numbering
        artefact, not an algorithmic property.  Architecture-aware
        partitioners always keep the identity mapping: their partition
        ids *are* physical ranks.
    seed:
        master seed; all per-job and per-iteration seeds derive from it.
    """

    def __init__(
        self,
        bandwidth_model: BandwidthModel,
        *,
        num_parts: "int | None" = None,
        num_jobs: int = 3,
        iterations: int = 2,
        message_bytes: int = 1024,
        timesteps: int = 10,
        sim_model: str = "blocking",
        iteration_noise: float = 0.03,
        profiler_repeats: int = 2,
        profiler_noise: float = 0.03,
        blind_rank_mapping: str = "shuffled",
        seed: int = 0,
    ) -> None:
        if blind_rank_mapping not in ("shuffled", "identity"):
            raise ValueError(
                f"blind_rank_mapping must be 'shuffled' or 'identity', "
                f"got {blind_rank_mapping!r}"
            )
        self.bandwidth_model = bandwidth_model
        machine_size = bandwidth_model.topology.num_units
        self.num_parts = int(num_parts) if num_parts is not None else machine_size
        if self.num_parts > machine_size:
            raise ValueError(
                f"num_parts={self.num_parts} exceeds machine size {machine_size}"
            )
        self.num_jobs = int(check_positive("num_jobs", num_jobs))
        self.iterations = int(check_positive("iterations", iterations))
        self.message_bytes = int(check_positive("message_bytes", message_bytes))
        self.timesteps = int(check_positive("timesteps", timesteps))
        self.sim_model = sim_model
        self.iteration_noise = float(iteration_noise)
        self.profiler_repeats = int(profiler_repeats)
        self.profiler_noise = float(profiler_noise)
        self.blind_rank_mapping = blind_rank_mapping
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def make_jobs(self) -> list[JobContext]:
        """Simulate ``num_jobs`` allocations, each ring-profiled."""
        jobs = []
        for j in range(self.num_jobs):
            bw_seed = derive_seed(self.seed, "job-bandwidth", j)
            bw, lat = self.bandwidth_model.matrices(seed=bw_seed)
            link = LinkModel(bw, lat)
            profiler = RingProfiler(
                link,
                repeats=self.profiler_repeats,
                measurement_noise=self.profiler_noise,
            )
            profile = profiler.profile(seed=derive_seed(self.seed, "profiling", j))
            jobs.append(
                JobContext(
                    job_id=j,
                    link_model=link,
                    measured_bandwidth=profile.bandwidth_mbs,
                    cost_matrix=profile.cost_matrix(),
                    profiling_time_s=profile.profiling_time_s,
                )
            )
        return jobs

    def _jittered_link(self, job: JobContext, iteration: int) -> LinkModel:
        """Per-iteration machine: ground truth + background-traffic jitter."""
        if self.iteration_noise <= 0:
            return job.link_model
        rng = np.random.default_rng(
            derive_seed(self.seed, "iteration-jitter", job.job_id, iteration)
        )
        n = job.link_model.num_ranks
        noise = rng.lognormal(0.0, self.iteration_noise, size=(n, n))
        iu = np.triu_indices(n, k=1)
        sym = np.ones((n, n))
        sym[iu] = noise[iu]
        sym.T[iu] = noise[iu]
        return LinkModel(
            job.link_model.bandwidth_mbs * sym, job.link_model.latency_s
        )

    # ------------------------------------------------------------------
    def run(
        self,
        instances: "dict[str, Hypergraph]",
        partitioners: "dict[str, Partitioner]",
        *,
        jobs: "list[JobContext] | None" = None,
    ) -> list[RunRecord]:
        """Run the full protocol; returns one record per simulation.

        ``len(instances) * len(partitioners) * num_jobs * iterations``
        records in total.
        """
        if jobs is None:
            jobs = self.make_jobs()
        records: list[RunRecord] = []
        for job in jobs:
            for inst_name, hg in instances.items():
                for algo_name, partitioner in partitioners.items():
                    part_seed = derive_seed(
                        self.seed, "partition", job.job_id, inst_name, algo_name
                    )
                    result = partitioner.partition(
                        hg,
                        self.num_parts,
                        cost_matrix=job.cost_matrix,
                        seed=part_seed,
                    )
                    assignment = self._map_to_ranks(
                        result, job.job_id, inst_name, algo_name
                    )
                    quality = evaluate_partition(
                        hg,
                        assignment,
                        self.num_parts,
                        job.cost_matrix,
                        algorithm=algo_name,
                    )
                    for it in range(self.iterations):
                        link = self._jittered_link(job, it)
                        bench = SyntheticBenchmark(
                            link,
                            message_bytes=self.message_bytes,
                            timesteps=self.timesteps,
                            model=self.sim_model,
                        )
                        outcome = bench.run(hg, assignment, self.num_parts)
                        records.append(
                            RunRecord(
                                instance=inst_name,
                                algorithm=algo_name,
                                job_id=job.job_id,
                                iteration=it,
                                runtime_s=outcome.runtime_s,
                                quality=quality,
                                partition_wall_s=float(
                                    result.metadata.get("wall_time_s", float("nan"))
                                ),
                            )
                        )
        return records

    # ------------------------------------------------------------------
    def _map_to_ranks(
        self, result, job_id: int, instance: str, algorithm: str
    ) -> np.ndarray:
        """Map partition ids to physical ranks (see ``blind_rank_mapping``)."""
        aware = bool(result.metadata.get("architecture_aware", False))
        if aware or self.blind_rank_mapping == "identity":
            return result.assignment
        rng = np.random.default_rng(
            derive_seed(self.seed, "rank-map", job_id, instance, algorithm)
        )
        perm = rng.permutation(self.num_parts)
        return perm[result.assignment]

    @staticmethod
    def aggregate_runtimes(records: "list[RunRecord]") -> dict:
        """``{(instance, algorithm): (mean_runtime, std_runtime)}``."""
        groups: dict[tuple, list[float]] = {}
        for r in records:
            groups.setdefault((r.instance, r.algorithm), []).append(r.runtime_s)
        return {
            key: (float(np.mean(vals)), float(np.std(vals)))
            for key, vals in groups.items()
        }

    @staticmethod
    def speedups(
        records: "list[RunRecord]", *, baseline: str
    ) -> dict:
        """``{(instance, algorithm): mean_baseline / mean_algorithm}``."""
        means = ExperimentRunner.aggregate_runtimes(records)
        out = {}
        instances = {inst for inst, _ in means}
        for inst in instances:
            base = means.get((inst, baseline))
            if base is None:
                continue
            for (i, algo), (mean, _) in means.items():
                if i == inst and mean > 0:
                    out[(inst, algo)] = base[0] / mean
        return out
