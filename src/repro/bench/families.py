"""Head-to-head comparison of the registered partitioner families.

:func:`compare_families` runs every competitor family of
:mod:`repro.partitioning.families` — plus the in-memory HyperPRAW anchor
and its FM-polished twin — on one suite instance and scores all of them
with the *same* in-memory metrics, so the table answers the question the
paper's claim hinges on: where does architecture-aware restreaming sit
against real external competitors, at what memory and wall cost?

Contenders:

* ``hyperpraw`` — the in-memory restreamer, the quality anchor;
* ``hyperpraw+fm`` — the anchor polished by the FM-style boundary
  refinement (:func:`repro.partitioning.families.refine_partition`) —
  the row the refinement acceptance criterion reads (its cut must not
  exceed the anchor's, and on real instances it should beat it);
* ``stream-onepass`` — the single-pass Eq. 1 streamer, streamed from an
  hMetis file so ``peak_resident_pins`` is the honest out-of-core bound;
* ``hype`` — HYPE-style neighbourhood expansion (in-memory by nature;
  its resident pins are the full pin count);
* ``minmax`` — limited-memory min-max streaming, same file stream;
* ``minmax-buffered`` — its similarity-ordered buffered variant.

Every row carries a sha256 digest of the assignment: the committed
``BENCH_FAMILIES.json`` (written by ``scripts/run_families_bench.py``)
doubles as a determinism contract, diffed in CI by
``benchmarks/bench_families.py``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro.architecture.cost import uniform_cost_matrix
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.core.metrics import PartitionQuality, evaluate_partition
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.model import Hypergraph
from repro.partitioning.families import (
    MinMaxStreamer,
    NeighborhoodExpansion,
    RefineConfig,
    refine_partition,
)
from repro.streaming import OnePassStreamer, stream_hmetis
from repro.utils.tables import format_table

__all__ = ["FamilyRecord", "FamilyReport", "compare_families"]


@dataclass(frozen=True)
class FamilyRecord:
    """One family's quality / memory / runtime row."""

    algorithm: str
    quality: PartitionQuality
    wall_time_s: float
    #: pins resident during the run (None = in-memory, the full count)
    peak_resident_pins: "int | None"
    peak_tracked_edges: "int | None"
    #: sha256[:16] of the int64 assignment — the determinism anchor the
    #: committed BENCH_FAMILIES.json baseline diffs against
    assignment_digest: str
    kernel_mode: "str | None" = None
    #: weighted cut before/after the FM polish (polished rows only)
    refine_cut_before: "float | None" = None
    refine_cut_after: "float | None" = None
    refine_moves: "int | None" = None


@dataclass
class FamilyReport:
    """All families on one instance, with a paper-style rendering."""

    instance: str
    num_parts: int
    num_pins: int
    chunk_size: int
    records: "list[FamilyRecord]"

    def record(self, algorithm: str) -> FamilyRecord:
        for r in self.records:
            if r.algorithm == algorithm:
                return r
        raise KeyError(f"no record for {algorithm!r}")

    def render(self) -> str:
        rows = []
        for r in self.records:
            rows.append(
                (
                    r.algorithm,
                    r.quality.hyperedge_cut,
                    r.quality.pc_cost,
                    r.quality.imbalance,
                    r.wall_time_s,
                    "full" if r.peak_resident_pins is None else r.peak_resident_pins,
                    "dense" if r.peak_tracked_edges is None else r.peak_tracked_edges,
                )
            )
        return format_table(
            (
                "algorithm",
                "cut",
                "pc_cost",
                "imbalance",
                "wall_s",
                "resident_pins",
                "tracked_edges",
            ),
            rows,
            title=(
                f"partitioner families — {self.instance}, "
                f"p={self.num_parts}, {self.num_pins} pins, "
                f"chunk={self.chunk_size}"
            ),
        )


def compare_families(
    hg: Hypergraph,
    num_parts: int,
    *,
    cost_matrix: "np.ndarray | None" = None,
    chunk_size: int = 512,
    buffer_pins: "int | None" = None,
    max_tracked_edges: "int | None" = None,
    max_iterations: int = 20,
    refine_passes: int = 4,
    kernel: str = "auto",
    seed: int = 0,
) -> FamilyReport:
    """Run the family head-to-head on ``hg``.

    The streamers are fed from a temporary hMetis file (weights
    included) so their ``peak_resident_pins`` report the real
    out-of-core figure; every partition is scored with the full
    in-memory :func:`~repro.core.metrics.evaluate_partition`.
    ``refine_passes`` sizes the polish of the ``hyperpraw+fm`` row.
    """
    if buffer_pins is None:
        buffer_pins = max(1024, 8 * chunk_size)
    C = uniform_cost_matrix(num_parts) if cost_matrix is None else cost_matrix
    records: "list[FamilyRecord]" = []

    def record(algorithm, assignment, wall, metadata, peak_pins, stats=None):
        quality = evaluate_partition(
            hg, assignment, num_parts, C, algorithm=algorithm
        )
        digest = hashlib.sha256(
            np.ascontiguousarray(assignment, dtype=np.int64).tobytes()
        ).hexdigest()[:16]
        stats = stats or {}
        records.append(
            FamilyRecord(
                algorithm=algorithm,
                quality=quality,
                wall_time_s=wall,
                peak_resident_pins=peak_pins,
                peak_tracked_edges=metadata.get("peak_tracked_edges"),
                assignment_digest=digest,
                kernel_mode=metadata.get("kernel_mode"),
                refine_cut_before=stats.get("refine_cut_before"),
                refine_cut_after=stats.get("refine_cut_after"),
                refine_moves=stats.get("refine_moves"),
            )
        )

    # -- the in-memory anchor and its polished twin --------------------
    cfg = HyperPRAWConfig(
        max_iterations=max_iterations, record_history=False, kernel=kernel
    )
    t0 = time.perf_counter()
    anchor = HyperPRAW(cfg).partition(
        hg, num_parts, cost_matrix=cost_matrix, seed=seed
    )
    record(
        "hyperpraw",
        anchor.assignment,
        time.perf_counter() - t0,
        anchor.metadata,
        None,
    )
    t0 = time.perf_counter()
    refined, stats = refine_partition(
        hg,
        anchor.assignment,
        num_parts,
        refine=RefineConfig(passes=refine_passes),
    )
    record(
        "hyperpraw+fm",
        refined,
        time.perf_counter() - t0,
        anchor.metadata,
        None,
        stats=stats,
    )

    # -- the streamed families, fed from a real file -------------------
    with tempfile.TemporaryDirectory(prefix="repro-bench-families-") as tmp:
        path = os.path.join(tmp, f"{hg.name}.hgr")
        # fmt 11: streamed contenders must see the same weights as the
        # in-memory anchor, or the comparison grades two different inputs
        write_hmetis(hg, path, write_weights=True)

        def streamed(label, make_partitioner):
            stream = stream_hmetis(
                path, chunk_size=chunk_size, buffer_pins=buffer_pins
            )
            with stream:
                t0 = time.perf_counter()
                result = make_partitioner().partition_stream(
                    stream, num_parts, cost_matrix=cost_matrix, seed=seed
                )
                record(
                    label,
                    result.assignment,
                    time.perf_counter() - t0,
                    result.metadata,
                    int(
                        result.metadata.get(
                            "peak_resident_pins", stream.peak_resident_pins
                        )
                    ),
                )

        streamed(
            "stream-onepass",
            lambda: OnePassStreamer(
                chunk_size=chunk_size,
                max_tracked_edges=max_tracked_edges,
                kernel=kernel,
            ),
        )
        streamed(
            "hype",
            lambda: NeighborhoodExpansion(
                chunk_size=chunk_size,
                max_tracked_edges=max_tracked_edges,
                kernel=kernel,
            ),
        )
        streamed(
            "minmax",
            lambda: MinMaxStreamer(
                chunk_size=chunk_size,
                max_tracked_edges=max_tracked_edges,
                kernel=kernel,
            ),
        )
        streamed(
            "minmax-buffered",
            lambda: MinMaxStreamer(
                chunk_size=chunk_size,
                buffer_size=max(1, hg.num_vertices // 4),
                max_tracked_edges=max_tracked_edges,
                kernel=kernel,
            ),
        )

    return FamilyReport(
        instance=hg.name,
        num_parts=num_parts,
        num_pins=hg.num_pins,
        chunk_size=chunk_size,
        records=records,
    )
