"""Service scenario: requests-per-second and upload-to-result latency.

The HTTP layer (:mod:`repro.service`) exists to serve traffic, so its
bench measures traffic, not kernels — everything over a real socket
against an in-process :class:`~repro.service.app.PartitionService` on an
ephemeral port:

1. **Latency ladder** (:func:`compare_service`): each synthetic suite
   instance is rendered to hMetis bytes and pushed through the three
   paths a client pays for — ``POST /v1/stores`` (pure streamed text
   ingest into the digest-keyed chunk store), ``POST /v1/partitions``
   with a fresh body (upload-to-result: ingest + store publish + sync
   partition), and ``POST /v1/partitions?store=<digest>`` (the re-serve
   hot path: mmap store replay, no text parse).  ``replay_speedup`` =
   upload-to-result over replay-to-result — the figure that justifies
   digest reuse.
2. **Throughput** (:class:`ServiceThroughput`): concurrent client
   threads hammer the replay hot path on the smallest instance;
   ``rps`` is completed requests over wall time.

Everything is stdlib ``urllib`` + ``threading`` — the bench must run
wherever the service runs, i.e. with no dependencies beyond the repo's.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
import urllib.request
from dataclasses import dataclass
from pathlib import Path

from repro.hypergraph.io import write_hmetis
from repro.hypergraph.suite import load_instance
from repro.service.app import PartitionService
from repro.service.handlers import ServiceConfig
from repro.utils.tables import format_kv, format_table

__all__ = [
    "ServiceRecord",
    "ServiceThroughput",
    "ServiceReport",
    "compare_service",
]

#: Default ladder: three differently-shaped suite instances (mesh,
#: banded shell, unstructured) — enough spread to see parse cost scale.
DEFAULT_INSTANCES = ("2cubes_sphere", "ABACUS_shell_hd", "sparsine")


def _post(url: str, data: "bytes | None") -> dict:
    req = urllib.request.Request(url, data=data, method="POST")
    with urllib.request.urlopen(req) as resp:
        return json.load(resp)


@dataclass(frozen=True)
class ServiceRecord:
    """One instance's latency figures, all over the wire.

    ``store_ingest_s`` is ``POST /v1/stores`` (parse + store publish);
    ``upload_partition_s`` is a body-carrying sync partition (the first
    request a client ever pays); ``replay_partition_s`` the same
    partition re-requested by digest (no parse).
    """

    instance: str
    num_vertices: int
    num_edges: int
    num_pins: int
    upload_bytes: int
    store_ingest_s: float
    upload_partition_s: float
    replay_partition_s: float

    @property
    def replay_speedup(self) -> float:
        """Upload-to-result over replay-to-result (>1 = reuse pays)."""
        return self.upload_partition_s / max(self.replay_partition_s, 1e-9)


@dataclass(frozen=True)
class ServiceThroughput:
    """Concurrent sync-partition throughput on the replay hot path."""

    instance: str
    threads: int
    requests: int
    wall_s: float
    errors: int

    @property
    def rps(self) -> float:
        return self.requests / max(self.wall_s, 1e-9)


@dataclass
class ServiceReport:
    """Latency ladder + throughput, with the repo's text rendering."""

    k: int
    partitioner: str
    records: "list[ServiceRecord]"
    throughput: ServiceThroughput

    def record(self, instance: str) -> ServiceRecord:
        for r in self.records:
            if r.instance == instance:
                return r
        raise KeyError(f"no record for {instance!r}")

    def render(self) -> str:
        rows = [
            (
                r.instance,
                r.num_vertices,
                r.num_pins,
                r.upload_bytes,
                f"{r.store_ingest_s:.4f}",
                f"{r.upload_partition_s:.4f}",
                f"{r.replay_partition_s:.4f}",
                f"{r.replay_speedup:.2f}x",
            )
            for r in self.records
        ]
        table = format_table(
            (
                "instance",
                "vertices",
                "pins",
                "bytes",
                "store_s",
                "upload->result_s",
                "replay->result_s",
                "reuse",
            ),
            rows,
            title=(
                f"service latency ladder — k={self.k}, "
                f"partitioner={self.partitioner}, sync over HTTP"
            ),
        )
        t = self.throughput
        kv = format_kv(
            {
                "instance": t.instance,
                "client threads": t.threads,
                "requests": t.requests,
                "errors": t.errors,
                "wall [s]": t.wall_s,
                "requests/s": round(t.rps, 2),
            },
            title="service throughput — sync partitions via store replay",
        )
        return f"{table}\n\n{kv}"


def compare_service(
    instances: "tuple[str, ...] | None" = None,
    *,
    scale: float = 0.05,
    k: int = 8,
    partitioner: str = "onepass",
    chunk_size: int = 256,
    threads: int = 4,
    requests: int = 32,
    seed: int = 0,
    config: "ServiceConfig | None" = None,
) -> ServiceReport:
    """Run the full service scenario against an in-process server.

    Parameters
    ----------
    instances:
        suite instance names for the latency ladder (default
        :data:`DEFAULT_INSTANCES`).
    scale:
        suite loader scale (0.05 keeps a laptop run in seconds; CI
        smoke uses less).
    k / partitioner / chunk_size / seed:
        the partition request every measurement issues.
    threads / requests:
        throughput phase: total sync requests spread over concurrent
        client threads, all hitting the smallest instance's store.
    config:
        service overrides; the port is always forced ephemeral.

    Returns
    -------
    ServiceReport
        latency records per instance plus the throughput figure.
    """
    names = tuple(instances) if instances else DEFAULT_INSTANCES
    base_cfg = config or ServiceConfig()
    cfg = ServiceConfig(
        host=base_cfg.host,
        port=0,
        cache_dir=base_cfg.cache_dir,
        workers=base_cfg.workers,
        default_chunk_size=chunk_size,
        default_buffer_pins=base_cfg.default_buffer_pins,
    )
    # The scratch dir holds the rendered .hgr files; a failed run (bad
    # partition, socket error) must not leak it.
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    try:
        return _run_scenario(
            cfg, names, scale, k, partitioner, threads, requests, seed, scratch
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _run_scenario(
    cfg: ServiceConfig,
    names: "tuple[str, ...]",
    scale: float,
    k: int,
    partitioner: str,
    threads: int,
    requests: int,
    seed: int,
    scratch: Path,
) -> ServiceReport:
    """The measured body of :func:`compare_service` (scratch is owned
    by the caller)."""
    records: "list[ServiceRecord]" = []
    with PartitionService(cfg) as svc:
        partition_url = (
            f"{svc.url}/v1/partitions?k={k}&partitioner={partitioner}"
            f"&sync=1&seed={seed}"
        )
        smallest: "tuple[int, str, bytes] | None" = None
        for name in names:
            hg = load_instance(name, scale=scale)
            hgr = scratch / f"{name}.hgr"
            write_hmetis(hg, hgr)
            raw = hgr.read_bytes()
            if smallest is None or len(raw) < smallest[0]:
                smallest = (len(raw), name, raw)

            t0 = time.perf_counter()
            store = _post(f"{svc.url}/v1/stores?name={name}", raw)
            store_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            upload_job = _post(f"{partition_url}&name={name}", raw)
            upload_s = time.perf_counter() - t0
            assert upload_job["status"] == "done", upload_job

            t0 = time.perf_counter()
            replay_job = _post(f"{partition_url}&store={store['digest']}", None)
            replay_s = time.perf_counter() - t0
            assert replay_job["status"] == "done", replay_job

            records.append(
                ServiceRecord(
                    instance=name,
                    num_vertices=store["num_vertices"],
                    num_edges=store["num_edges"],
                    num_pins=store["num_pins"],
                    upload_bytes=len(raw),
                    store_ingest_s=store_s,
                    upload_partition_s=upload_s,
                    replay_partition_s=replay_s,
                )
            )

        # Throughput: hammer the replay hot path on the smallest input.
        _, small_name, small_raw = smallest
        digest = _post(f"{svc.url}/v1/stores?name={small_name}", small_raw)[
            "digest"
        ]
        url = f"{partition_url}&store={digest}"
        per_thread = -(-requests // threads)
        total = per_thread * threads
        errors = [0] * threads

        def client(i: int) -> None:
            for _ in range(per_thread):
                try:
                    _post(url, None)
                except Exception:  # noqa: BLE001 — counted, not raised
                    errors[i] += 1

        workers = [
            threading.Thread(target=client, args=(i,)) for i in range(threads)
        ]
        t0 = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0
        throughput = ServiceThroughput(
            instance=small_name,
            threads=threads,
            requests=total,
            wall_s=wall,
            errors=sum(errors),
        )
    return ServiceReport(
        k=k, partitioner=partitioner, records=records, throughput=throughput
    )
