"""Service scenario: requests-per-second and upload-to-result latency.

The HTTP layer (:mod:`repro.service`) exists to serve traffic, so its
bench measures traffic, not kernels — everything over a real socket
against an in-process :class:`~repro.service.app.PartitionService` on an
ephemeral port:

1. **Latency ladder** (:func:`compare_service`): each synthetic suite
   instance is rendered to hMetis bytes and pushed through the three
   paths a client pays for — ``POST /v1/stores`` (pure streamed text
   ingest into the digest-keyed chunk store), ``POST /v1/partitions``
   with a fresh body (upload-to-result: ingest + store publish + sync
   partition), and ``POST /v1/partitions?store=<digest>`` (the re-serve
   hot path: mmap store replay, no text parse).  ``replay_speedup`` =
   upload-to-result over replay-to-result — the figure that justifies
   digest reuse.
2. **Throughput** (:class:`ServiceThroughput`): concurrent client
   threads hammer the replay hot path on the smallest instance;
   ``rps`` is completed requests over wall time.
3. **Pool ladder** (:func:`compare_pools`): the same concurrent replay
   load against a thread-pool and a process-pool service, one after the
   other.  ``speedup`` is process rps over thread rps — the number that
   justifies forking past the GIL — and each run records a sha256 of
   the assignment it serves, so the ladder doubles as a bit-identity
   contract between the two pools.

Everything is stdlib ``urllib`` + ``threading`` — the bench must run
wherever the service runs, i.e. with no dependencies beyond the repo's.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
import threading
import time
import urllib.request
from dataclasses import dataclass
from pathlib import Path

from repro.engine.parallel import fork_available
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.suite import load_instance
from repro.service.app import PartitionService
from repro.service.handlers import ServiceConfig
from repro.utils.tables import format_kv, format_table

__all__ = [
    "ServiceRecord",
    "ServiceThroughput",
    "ServiceReport",
    "PoolRun",
    "PoolLadder",
    "compare_service",
    "compare_pools",
]

#: Default ladder: three differently-shaped suite instances (mesh,
#: banded shell, unstructured) — enough spread to see parse cost scale.
DEFAULT_INSTANCES = ("2cubes_sphere", "ABACUS_shell_hd", "sparsine")


def _post(url: str, data: "bytes | None") -> dict:
    req = urllib.request.Request(url, data=data, method="POST")
    with urllib.request.urlopen(req) as resp:
        return json.load(resp)


def _get_text(url: str) -> str:
    with urllib.request.urlopen(url) as resp:
        return resp.read().decode()


@dataclass(frozen=True)
class ServiceRecord:
    """One instance's latency figures, all over the wire.

    ``store_ingest_s`` is ``POST /v1/stores`` (parse + store publish);
    ``upload_partition_s`` is a body-carrying sync partition (the first
    request a client ever pays); ``replay_partition_s`` the same
    partition re-requested by digest (no parse).
    """

    instance: str
    num_vertices: int
    num_edges: int
    num_pins: int
    upload_bytes: int
    store_ingest_s: float
    upload_partition_s: float
    replay_partition_s: float

    @property
    def replay_speedup(self) -> float:
        """Upload-to-result over replay-to-result (>1 = reuse pays)."""
        return self.upload_partition_s / max(self.replay_partition_s, 1e-9)


@dataclass(frozen=True)
class ServiceThroughput:
    """Concurrent sync-partition throughput on the replay hot path."""

    instance: str
    threads: int
    requests: int
    wall_s: float
    errors: int

    @property
    def rps(self) -> float:
        return self.requests / max(self.wall_s, 1e-9)


@dataclass(frozen=True)
class PoolRun:
    """One pool's concurrent sync-replay throughput figure.

    ``assignment_digest`` is the sha256 of the assignment text the run
    served — both pools must serve the same bytes for the same seed.
    """

    pool: str
    threads: int
    requests: int
    wall_s: float
    errors: int
    assignment_digest: str

    @property
    def rps(self) -> float:
        return self.requests / max(self.wall_s, 1e-9)


@dataclass
class PoolLadder:
    """Thread-vs-process throughput under identical concurrent load."""

    instance: str
    k: int
    partitioner: str
    runs: "list[PoolRun]"

    def run(self, pool: str) -> PoolRun:
        for r in self.runs:
            if r.pool == pool:
                return r
        raise KeyError(f"no run for pool {pool!r}")

    @property
    def speedup(self) -> "float | None":
        """Process rps over thread rps; ``None`` without a process run."""
        try:
            process = self.run("process")
        except KeyError:
            return None
        return process.rps / max(self.run("thread").rps, 1e-9)

    @property
    def digests_match(self) -> bool:
        return len({r.assignment_digest for r in self.runs}) == 1

    def render(self) -> str:
        rows = [
            (
                r.pool,
                r.threads,
                r.requests,
                r.errors,
                f"{r.wall_s:.4f}",
                f"{r.rps:.2f}",
                r.assignment_digest[:12],
            )
            for r in self.runs
        ]
        speedup = self.speedup
        title = (
            f"pool ladder — {self.instance}, k={self.k}, "
            f"partitioner={self.partitioner}"
        )
        if speedup is not None:
            title += f", process/thread = {speedup:.2f}x"
        return format_table(
            ("pool", "threads", "requests", "errors", "wall_s", "rps", "digest"),
            rows,
            title=title,
        )


@dataclass
class ServiceReport:
    """Latency ladder + throughput, with the repo's text rendering."""

    k: int
    partitioner: str
    records: "list[ServiceRecord]"
    throughput: ServiceThroughput

    def record(self, instance: str) -> ServiceRecord:
        for r in self.records:
            if r.instance == instance:
                return r
        raise KeyError(f"no record for {instance!r}")

    def render(self) -> str:
        rows = [
            (
                r.instance,
                r.num_vertices,
                r.num_pins,
                r.upload_bytes,
                f"{r.store_ingest_s:.4f}",
                f"{r.upload_partition_s:.4f}",
                f"{r.replay_partition_s:.4f}",
                f"{r.replay_speedup:.2f}x",
            )
            for r in self.records
        ]
        table = format_table(
            (
                "instance",
                "vertices",
                "pins",
                "bytes",
                "store_s",
                "upload->result_s",
                "replay->result_s",
                "reuse",
            ),
            rows,
            title=(
                f"service latency ladder — k={self.k}, "
                f"partitioner={self.partitioner}, sync over HTTP"
            ),
        )
        t = self.throughput
        kv = format_kv(
            {
                "instance": t.instance,
                "client threads": t.threads,
                "requests": t.requests,
                "errors": t.errors,
                "wall [s]": t.wall_s,
                "requests/s": round(t.rps, 2),
            },
            title="service throughput — sync partitions via store replay",
        )
        return f"{table}\n\n{kv}"


def compare_service(
    instances: "tuple[str, ...] | None" = None,
    *,
    scale: float = 0.05,
    k: int = 8,
    partitioner: str = "onepass",
    chunk_size: int = 256,
    threads: int = 4,
    requests: int = 32,
    seed: int = 0,
    config: "ServiceConfig | None" = None,
) -> ServiceReport:
    """Run the full service scenario against an in-process server.

    Parameters
    ----------
    instances:
        suite instance names for the latency ladder (default
        :data:`DEFAULT_INSTANCES`).
    scale:
        suite loader scale (0.05 keeps a laptop run in seconds; CI
        smoke uses less).
    k / partitioner / chunk_size / seed:
        the partition request every measurement issues.
    threads / requests:
        throughput phase: total sync requests spread over concurrent
        client threads, all hitting the smallest instance's store.
    config:
        service overrides; the port is always forced ephemeral.

    Returns
    -------
    ServiceReport
        latency records per instance plus the throughput figure.
    """
    names = tuple(instances) if instances else DEFAULT_INSTANCES
    base_cfg = config or ServiceConfig()
    cfg = ServiceConfig(
        host=base_cfg.host,
        port=0,
        cache_dir=base_cfg.cache_dir,
        workers=base_cfg.workers,
        default_chunk_size=chunk_size,
        default_buffer_pins=base_cfg.default_buffer_pins,
        pool=base_cfg.pool,
    )
    # The scratch dir holds the rendered .hgr files; a failed run (bad
    # partition, socket error) must not leak it.
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    try:
        return _run_scenario(
            cfg, names, scale, k, partitioner, threads, requests, seed, scratch
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _run_scenario(
    cfg: ServiceConfig,
    names: "tuple[str, ...]",
    scale: float,
    k: int,
    partitioner: str,
    threads: int,
    requests: int,
    seed: int,
    scratch: Path,
) -> ServiceReport:
    """The measured body of :func:`compare_service` (scratch is owned
    by the caller)."""
    records: "list[ServiceRecord]" = []
    with PartitionService(cfg) as svc:
        partition_url = (
            f"{svc.url}/v1/partitions?k={k}&partitioner={partitioner}"
            f"&sync=1&seed={seed}"
        )
        smallest: "tuple[int, str, bytes] | None" = None
        for name in names:
            hg = load_instance(name, scale=scale)
            hgr = scratch / f"{name}.hgr"
            write_hmetis(hg, hgr)
            raw = hgr.read_bytes()
            if smallest is None or len(raw) < smallest[0]:
                smallest = (len(raw), name, raw)

            t0 = time.perf_counter()
            store = _post(f"{svc.url}/v1/stores?name={name}", raw)
            store_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            upload_job = _post(f"{partition_url}&name={name}", raw)
            upload_s = time.perf_counter() - t0
            assert upload_job["status"] == "done", upload_job

            t0 = time.perf_counter()
            replay_job = _post(f"{partition_url}&store={store['digest']}", None)
            replay_s = time.perf_counter() - t0
            assert replay_job["status"] == "done", replay_job

            records.append(
                ServiceRecord(
                    instance=name,
                    num_vertices=store["num_vertices"],
                    num_edges=store["num_edges"],
                    num_pins=store["num_pins"],
                    upload_bytes=len(raw),
                    store_ingest_s=store_s,
                    upload_partition_s=upload_s,
                    replay_partition_s=replay_s,
                )
            )

        # Throughput: hammer the replay hot path on the smallest input.
        _, small_name, small_raw = smallest
        digest = _post(f"{svc.url}/v1/stores?name={small_name}", small_raw)[
            "digest"
        ]
        url = f"{partition_url}&store={digest}"
        per_thread = -(-requests // threads)
        total = per_thread * threads
        errors = [0] * threads

        def client(i: int) -> None:
            for _ in range(per_thread):
                try:
                    _post(url, None)
                except Exception:  # noqa: BLE001 — counted, not raised
                    errors[i] += 1

        workers = [
            threading.Thread(target=client, args=(i,)) for i in range(threads)
        ]
        t0 = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0
        throughput = ServiceThroughput(
            instance=small_name,
            threads=threads,
            requests=total,
            wall_s=wall,
            errors=sum(errors),
        )
    return ServiceReport(
        k=k, partitioner=partitioner, records=records, throughput=throughput
    )


def compare_pools(
    instance: str = "2cubes_sphere",
    *,
    scale: float = 0.05,
    k: int = 8,
    partitioner: str = "onepass",
    chunk_size: int = 256,
    threads: int = 4,
    requests: int = 16,
    seed: int = 0,
    pools: "tuple[str, ...] | None" = None,
) -> PoolLadder:
    """Concurrent sync-replay throughput, thread pool vs process pool.

    Boots one service per pool (same workers, same store, same seeded
    partition request) and drives ``requests`` sync replays from
    ``threads`` client threads.  The thread pool serialises the numpy
    pass kernels behind the GIL; the process pool forks one job per
    request, so on a multi-core box its rps should pull ahead — that
    ratio is :attr:`PoolLadder.speedup`, asserted in CI (gated on
    ``os.cpu_count()``).  Defaults to ``("thread",)`` only where fork
    is unavailable.
    """
    if pools is None:
        pools = ("thread", "process") if fork_available() else ("thread",)
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-pools-"))
    try:
        hg = load_instance(instance, scale=scale)
        hgr = scratch / f"{instance}.hgr"
        write_hmetis(hg, hgr)
        raw = hgr.read_bytes()
        runs: "list[PoolRun]" = []
        for pool in pools:
            runs.append(
                _run_pool(
                    pool, instance, raw, k, partitioner, chunk_size,
                    threads, requests, seed, scratch,
                )
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return PoolLadder(
        instance=instance, k=k, partitioner=partitioner, runs=runs
    )


def _run_pool(
    pool: str,
    instance: str,
    raw: bytes,
    k: int,
    partitioner: str,
    chunk_size: int,
    threads: int,
    requests: int,
    seed: int,
    scratch: Path,
) -> PoolRun:
    """One pool's measured leg of :func:`compare_pools`."""
    cfg = ServiceConfig(
        port=0,
        workers=threads,
        pool=pool,
        cache_dir=scratch / f"cache-{pool}",
        default_chunk_size=chunk_size,
    )
    with PartitionService(cfg) as svc:
        digest = _post(f"{svc.url}/v1/stores?name={instance}", raw)["digest"]
        url = (
            f"{svc.url}/v1/partitions?k={k}&partitioner={partitioner}"
            f"&sync=1&seed={seed}&store={digest}"
        )
        # Warm-up run also pins the determinism contract: the digest of
        # the assignment text must be identical across pools.
        warm = _post(url, None)
        assert warm["status"] == "done", warm
        text = _get_text(svc.url + warm["links"]["assignment"])
        assignment_digest = hashlib.sha256(text.encode()).hexdigest()

        per_thread = -(-requests // threads)
        total = per_thread * threads
        errors = [0] * threads

        def client(i: int) -> None:
            for _ in range(per_thread):
                try:
                    _post(url, None)
                except Exception:  # noqa: BLE001 — counted, not raised
                    errors[i] += 1

        workers = [
            threading.Thread(target=client, args=(i,)) for i in range(threads)
        ]
        t0 = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0
    return PoolRun(
        pool=pool,
        threads=threads,
        requests=total,
        wall_s=wall,
        errors=sum(errors),
        assignment_digest=assignment_digest,
    )
