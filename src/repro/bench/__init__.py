"""The paper's synthetic runtime benchmark and the multi-job experiment runner.

Section 5.3: *"The benchmark is a null-compute simulation based on the
input hypergraph ... for each hyperedge on a given hypergraph, a message is
sent to and from each vertex in the hyperedge if the vertices are located
in different partitions."*  It is purely communication-bound, so the
partition placement — and, on a heterogeneous machine, *which links* the
cut traffic lands on — fully determines runtime.

* :class:`~repro.bench.synthetic.SyntheticBenchmark` — builds the
  per-timestep traffic matrix implied by a partition and runs it through
  the :mod:`repro.simcomm` cluster simulator.
* :class:`~repro.bench.runner.ExperimentRunner` — the paper's evaluation
  protocol: several simulated job allocations (different bandwidth
  realisations), ring-profiling per job, partitioning per strategy, and
  repeated benchmark iterations with per-iteration network jitter.
* :func:`~repro.bench.streaming.compare_streaming` — the streamed vs
  in-memory scenario: quality / peak-memory / runtime of the
  :mod:`repro.streaming` partitioners against the in-memory anchor.
* :func:`~repro.bench.families.compare_families` — the competitor
  head-to-head: every registered partitioner family (HyperPRAW, its
  FM-polished twin, onepass, HYPE-style expansion, min-max streaming)
  on one instance, one table.
* :func:`~repro.bench.service.compare_service` — the HTTP traffic
  scenario: upload-to-result latency, digest-reuse speedup and sync
  requests-per-second against an in-process
  :mod:`repro.service` server.
* :func:`~repro.bench.service.compare_pools` — the same concurrent
  replay load against a thread-pool and a process-pool service; the
  rps ratio is the figure behind the service's ``--pool process``
  default.
"""

from repro.bench.synthetic import SyntheticBenchmark, BenchmarkOutcome, partition_traffic
from repro.bench.runner import ExperimentRunner, JobContext, RunRecord
from repro.bench.streaming import StreamingRecord, StreamingReport, compare_streaming
from repro.bench.families import FamilyRecord, FamilyReport, compare_families
from repro.bench.service import (
    PoolLadder,
    PoolRun,
    ServiceRecord,
    ServiceReport,
    ServiceThroughput,
    compare_pools,
    compare_service,
)

__all__ = [
    "SyntheticBenchmark",
    "BenchmarkOutcome",
    "partition_traffic",
    "ExperimentRunner",
    "JobContext",
    "RunRecord",
    "StreamingRecord",
    "StreamingReport",
    "compare_streaming",
    "FamilyRecord",
    "FamilyReport",
    "compare_families",
    "PoolLadder",
    "PoolRun",
    "ServiceRecord",
    "ServiceReport",
    "ServiceThroughput",
    "compare_pools",
    "compare_service",
]
