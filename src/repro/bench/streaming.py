"""Streamed vs in-memory comparison scenario.

The out-of-core subsystem (:mod:`repro.streaming`) buys bounded memory
with some combination of quality and wall time; this scenario measures
exactly that trade on a suite instance:

1. the instance is written to a temporary hMetis file and every streamed
   run re-reads it chunk by chunk through :func:`repro.streaming.reader.
   stream_hmetis`, so the reported *peak resident pins* are the real
   out-of-core figure, not a simulation;
2. contenders: in-memory HyperPRAW (the quality anchor), in-memory
   HyperPRAW with the vectorised ``chunk_size`` hot path, the single-pass
   :class:`~repro.streaming.onepass.OnePassStreamer`, and
   :class:`~repro.streaming.restream.BufferedRestreamer` at a ladder of
   buffer sizes (quality should climb the ladder toward the anchor);
3. every partition is scored with the full in-memory metrics
   (:func:`~repro.core.metrics.evaluate_partition`) — streamed runs don't
   get to grade their own homework with the bounded monitored cost.

``quality_gap`` is the relative PC-cost excess over the in-memory anchor
(0.0 means identical quality).

:func:`compare_sharded` is the companion scaling scenario for parallel
sharded streaming (:class:`~repro.streaming.sharded.ShardedStreamer`):
the same instance streamed at a ladder of worker counts, reporting
wall-clock speedup over one worker, the quality drift (hyperedge cut
and PC cost) the shard/merge/boundary-restream pipeline introduces, the
merge payload bytes actually shipped over the worker pipes against what
full-table shipping would have cost (``payload_reduction``), and the
per-shard pin skew the pin-balanced ``shard_ranges`` achieve.

:func:`compare_replay` is the ingest-vs-replay ladder for the persistent
binary chunk store (:mod:`repro.streaming.chunkstore`): text ingest,
spill replay, text *re*-ingest (what every fresh invocation pays without
a store), store conversion, store open and memory-mapped store replay —
with ``replay_speedup`` (text re-ingest over store replay) as the
headline number.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro.architecture.cost import uniform_cost_matrix
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.core.metrics import PartitionQuality, evaluate_partition
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.model import Hypergraph
from repro.streaming import (
    BufferedRestreamer,
    OnePassStreamer,
    ShardedStreamer,
    stream_hmetis,
)
from repro.utils.tables import format_table

__all__ = [
    "StreamingRecord",
    "StreamingReport",
    "compare_streaming",
    "ShardedRecord",
    "ShardedReport",
    "compare_sharded",
    "ReplayRecord",
    "ReplayReport",
    "compare_replay",
]


@dataclass(frozen=True)
class StreamingRecord:
    """One contender's quality / memory / runtime row."""

    algorithm: str
    quality: PartitionQuality
    quality_gap: float
    wall_time_s: float
    peak_resident_pins: "int | None"
    peak_tracked_edges: "int | None"
    #: sha256[:16] of the int64 assignment — the determinism anchor the
    #: committed BENCH_STREAMING.json baseline diffs against
    assignment_digest: "str | None" = None
    #: which pass kernel actually ran ("python" | "njit")
    kernel_mode: "str | None" = None

    @property
    def pc_cost(self) -> float:
        return self.quality.pc_cost


@dataclass
class StreamingReport:
    """All contenders on one instance, with the paper-style rendering."""

    instance: str
    num_parts: int
    num_pins: int
    chunk_size: int
    records: "list[StreamingRecord]"

    def record(self, algorithm: str) -> StreamingRecord:
        for r in self.records:
            if r.algorithm == algorithm:
                return r
        raise KeyError(f"no record for {algorithm!r}")

    def gap(self, algorithm: str) -> float:
        return self.record(algorithm).quality_gap

    def render(self) -> str:
        rows = []
        for r in self.records:
            rows.append(
                (
                    r.algorithm,
                    r.quality.pc_cost,
                    f"{r.quality_gap * 100:+.1f}%",
                    r.quality.hyperedge_cut,
                    r.quality.imbalance,
                    r.wall_time_s,
                    "full" if r.peak_resident_pins is None else r.peak_resident_pins,
                    "dense" if r.peak_tracked_edges is None else r.peak_tracked_edges,
                )
            )
        return format_table(
            (
                "algorithm",
                "pc_cost",
                "gap",
                "cut",
                "imbalance",
                "wall_s",
                "resident_pins",
                "tracked_edges",
            ),
            rows,
            title=(
                f"streamed vs in-memory — {self.instance}, p={self.num_parts}, "
                f"{self.num_pins} pins, chunk={self.chunk_size}"
            ),
        )


def compare_streaming(
    hg: Hypergraph,
    num_parts: int,
    *,
    cost_matrix: "np.ndarray | None" = None,
    chunk_size: int = 512,
    buffer_pins: "int | None" = None,
    buffer_fractions: "tuple[float, ...]" = (0.125, 0.5, 1.0),
    pin_budget: "int | None" = None,
    max_tracked_edges: "int | None" = None,
    max_iterations: int = 100,
    kernel: str = "auto",
    seed: int = 0,
) -> StreamingReport:
    """Run the full streamed-vs-in-memory comparison on ``hg``.

    ``buffer_fractions`` are :class:`BufferedRestreamer` window sizes as
    fractions of ``|V|`` (1.0 buffers everything — the convergence check).
    ``buffer_pins`` is the readers' ingest buffer; the default scales with
    the chunk size so the reported peak resident pins reflect the
    out-of-core bound even on laptop-sized instances.  ``pin_budget``
    switches the streamed contenders to pin-budgeted chunk boundaries.
    ``kernel`` selects the pass-kernel implementation (docs/performance.md)
    for every contender.

    The buffered restreamers run twice per fraction: once scoring
    vertex-by-vertex (the historical path) and once with the chunked
    restream scorer (``chunk_size`` sub-blocks per window) — the
    ``stream-buffered-chunk`` rows are the headline of the compiled-speed
    PR's ladder.
    """
    if buffer_pins is None:
        buffer_pins = max(1024, 8 * chunk_size)
    C = uniform_cost_matrix(num_parts) if cost_matrix is None else cost_matrix
    records: "list[StreamingRecord]" = []

    def run(algorithm: str, fn, peak_pins=None):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        quality = evaluate_partition(
            hg, result.assignment, num_parts, C, algorithm=algorithm
        )
        digest = hashlib.sha256(
            np.ascontiguousarray(result.assignment, dtype=np.int64).tobytes()
        ).hexdigest()[:16]
        records.append(
            StreamingRecord(
                algorithm=algorithm,
                quality=quality,
                quality_gap=0.0,  # filled in below, once the anchor exists
                wall_time_s=wall,
                peak_resident_pins=(
                    peak_pins() if callable(peak_pins) else peak_pins
                ),
                peak_tracked_edges=result.metadata.get("peak_tracked_edges"),
                assignment_digest=digest,
                kernel_mode=result.metadata.get("kernel_mode"),
            )
        )
        return result

    cfg = HyperPRAWConfig(
        max_iterations=max_iterations, record_history=False, kernel=kernel
    )
    run(
        "hyperpraw (in-memory)",
        lambda: HyperPRAW(cfg).partition(hg, num_parts, cost_matrix=cost_matrix, seed=seed),
    )
    chunked_cfg = cfg.with_(chunk_size=chunk_size)
    run(
        f"hyperpraw (chunk={chunk_size})",
        lambda: HyperPRAW(chunked_cfg).partition(
            hg, num_parts, cost_matrix=cost_matrix, seed=seed
        ),
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as tmp:
        path = os.path.join(tmp, f"{hg.name}.hgr")
        # fmt 11: streamed contenders must see the same weights as the
        # in-memory anchor, or the comparison grades two different inputs
        write_hmetis(hg, path, write_weights=True)

        def streamed(make_partitioner, label, stream_chunk):
            stream = stream_hmetis(
                path,
                chunk_size=stream_chunk,
                buffer_pins=buffer_pins,
                pin_budget=pin_budget,
            )
            with stream:
                run(
                    label,
                    lambda: make_partitioner().partition_stream(
                        stream, num_parts, cost_matrix=cost_matrix, seed=seed
                    ),
                    peak_pins=lambda: stream.peak_resident_pins,
                )

        streamed(
            lambda: OnePassStreamer(
                chunk_size=chunk_size,
                max_tracked_edges=max_tracked_edges,
                kernel=kernel,
            ),
            "stream-onepass",
            chunk_size,
        )
        for frac in buffer_fractions:
            buffer = max(1, int(round(frac * hg.num_vertices)))
            streamed(
                lambda: BufferedRestreamer(
                    cfg,
                    buffer_size=buffer,
                    max_tracked_edges=max_tracked_edges,
                ),
                f"stream-buffered ({frac:g}|V|)",
                chunk_size,
            )
        # Same window ladder with the chunked restream scorer: one
        # block-terms matmul per chunk_size sub-block instead of a
        # per-vertex python loop over the window.
        for frac in buffer_fractions:
            buffer = max(1, int(round(frac * hg.num_vertices)))
            streamed(
                lambda: BufferedRestreamer(
                    chunked_cfg,
                    buffer_size=buffer,
                    max_tracked_edges=max_tracked_edges,
                ),
                f"stream-buffered-chunk ({frac:g}|V|)",
                chunk_size,
            )

    # Normalise: gaps are relative to the in-memory anchor.
    anchor = records[0].quality.pc_cost
    records = [
        StreamingRecord(
            algorithm=r.algorithm,
            quality=r.quality,
            quality_gap=(r.quality.pc_cost - anchor) / anchor if anchor else 0.0,
            wall_time_s=r.wall_time_s,
            peak_resident_pins=r.peak_resident_pins,
            peak_tracked_edges=r.peak_tracked_edges,
            assignment_digest=r.assignment_digest,
            kernel_mode=r.kernel_mode,
        )
        for r in records
    ]
    return StreamingReport(
        instance=hg.name,
        num_parts=num_parts,
        num_pins=hg.num_pins,
        chunk_size=chunk_size,
        records=records,
    )


# ----------------------------------------------------------------------
# parallel sharded streaming scaling scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardedRecord:
    """One worker count's wall-clock / quality / payload row."""

    workers: int
    quality: PartitionQuality
    wall_time_s: float
    speedup: float
    cut_drift: float
    boundary_vertices: int
    boundary_iterations: int
    #: bytes actually shipped over the worker pipes at the merge
    merge_payload_bytes: int = 0
    #: bytes full-table shipping would have cost on the same run
    full_payload_bytes: int = 0
    #: max/mean per-shard pin count (1.0 = perfectly pin-balanced);
    #: ``None`` when the stream could not report per-chunk pins
    pin_skew: "float | None" = None

    @property
    def pc_cost(self) -> float:
        return self.quality.pc_cost

    @property
    def payload_reduction(self) -> float:
        """How much boundary-only shipping saved vs full tables."""
        if not self.merge_payload_bytes:
            return float("inf") if self.full_payload_bytes else 1.0
        return self.full_payload_bytes / self.merge_payload_bytes


@dataclass
class ShardedReport:
    """Worker-count scaling of the sharded streamer on one instance."""

    instance: str
    num_parts: int
    num_pins: int
    chunk_size: int
    base_algorithm: str
    records: "list[ShardedRecord]"

    def record(self, workers: int) -> ShardedRecord:
        for r in self.records:
            if r.workers == workers:
                return r
        raise KeyError(f"no record for workers={workers}")

    def render(self) -> str:
        rows = [
            (
                r.workers,
                r.wall_time_s,
                f"{r.speedup:.2f}x",
                r.quality.pc_cost,
                r.quality.hyperedge_cut,
                f"{r.cut_drift * 100:+.1f}%",
                r.quality.imbalance,
                r.boundary_vertices,
                r.boundary_iterations,
                r.merge_payload_bytes,
                f"{r.payload_reduction:.2f}x",
                "n/a" if r.pin_skew is None else f"{r.pin_skew:.3f}",
            )
            for r in self.records
        ]
        return format_table(
            (
                "workers",
                "wall_s",
                "speedup",
                "pc_cost",
                "cut",
                "cut_drift",
                "imbalance",
                "boundary_v",
                "boundary_it",
                "payload_B",
                "vs_full",
                "pin_skew",
            ),
            rows,
            title=(
                f"sharded streaming scaling — {self.instance}, "
                f"p={self.num_parts}, {self.num_pins} pins, "
                f"base={self.base_algorithm}, chunk={self.chunk_size}"
            ),
        )


# ----------------------------------------------------------------------
# chunk-store ingest-vs-replay ladder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayRecord:
    """One step of the ingest-vs-replay ladder."""

    step: str
    wall_time_s: float
    pins_per_s: float


@dataclass
class ReplayReport:
    """The chunk-store ladder on one instance: how much replay saves."""

    instance: str
    num_pins: int
    chunk_size: int
    store_bytes: int
    records: "list[ReplayRecord]"

    def record(self, step: str) -> ReplayRecord:
        for r in self.records:
            if r.step == step:
                return r
        raise KeyError(f"no record for {step!r}")

    @property
    def replay_speedup(self) -> float:
        """Text re-ingest wall time over memory-mapped store replay."""
        replay = self.record("store-replay").wall_time_s
        if replay == 0.0:
            return float("inf")
        return self.record("text-reingest").wall_time_s / replay

    def render(self) -> str:
        reingest = self.record("text-reingest").wall_time_s
        rows = [
            (
                r.step,
                r.wall_time_s,
                f"{reingest / r.wall_time_s:.1f}x" if r.wall_time_s else "inf",
                f"{r.pins_per_s:,.0f}",
            )
            for r in self.records
        ]
        return format_table(
            ("step", "wall_s", "vs_text_reingest", "pins/s"),
            rows,
            title=(
                f"chunk-store ingest vs replay — {self.instance}, "
                f"{self.num_pins} pins, chunk={self.chunk_size}, "
                f"store={self.store_bytes} bytes"
            ),
        )


def compare_replay(
    hg: Hypergraph,
    *,
    chunk_size: int = 512,
    buffer_pins: "int | None" = None,
    pin_budget: "int | None" = None,
) -> ReplayReport:
    """Measure what the persistent chunk store saves on ``hg``.

    Ladder steps, each a timed full pass of the same pin structure:

    * ``text-ingest`` — first parse of the hMetis file into spill files;
    * ``spill-replay`` — one chunk iteration over the live spill stream
      (what each extra restream pass costs *within* one invocation);
    * ``text-reingest`` — parsing the file again (what a *fresh*
      invocation pays without a store);
    * ``store-write`` — materialising the store from the spill stream;
    * ``store-open`` — manifest read + validation;
    * ``store-replay`` — one memory-mapped chunk iteration over the
      store (what a fresh invocation pays *with* a store).

    ``buffer_pins`` defaults like :func:`compare_streaming`'s so the
    ingest figures reflect the out-of-core configuration.
    """
    from repro.streaming.chunkstore import open_store

    if buffer_pins is None:
        buffer_pins = max(1024, 8 * chunk_size)
    records: "list[ReplayRecord]" = []

    def timed(step: str, fn):
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        records.append(
            ReplayRecord(
                step=step,
                wall_time_s=wall,
                pins_per_s=hg.num_pins / wall if wall else float("inf"),
            )
        )
        return out

    def drain(stream):
        # Touch every pin array so memory-mapped replays actually fault
        # their pages in — otherwise the mmap path would time an almost
        # empty loop over lazy views, not a real replay pass.
        touched = 0
        for chunk in stream:
            touched += int(chunk.vertex_edges.sum())
        return stream

    kwargs = dict(
        chunk_size=chunk_size, buffer_pins=buffer_pins, pin_budget=pin_budget
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-replay-") as tmp:
        path = os.path.join(tmp, f"{hg.name}.hgr")
        write_hmetis(hg, path, write_weights=True)
        store_dir = os.path.join(tmp, f"{hg.name}.chunkstore")
        with timed("text-ingest", lambda: stream_hmetis(path, **kwargs)) as stream:
            timed("spill-replay", lambda: drain(stream))
            timed("store-write", lambda: stream.save(store_dir))
        with timed("text-reingest", lambda: stream_hmetis(path, **kwargs)):
            pass
        store = timed("store-open", lambda: open_store(store_dir))
        timed("store-replay", lambda: drain(store))
        store_bytes = int(store.manifest["data_bytes"])

    # Ladder order for the rendering; timings were taken in run order.
    order = (
        "text-ingest",
        "spill-replay",
        "text-reingest",
        "store-write",
        "store-open",
        "store-replay",
    )
    records = sorted(records, key=lambda r: order.index(r.step))
    return ReplayReport(
        instance=hg.name,
        num_pins=hg.num_pins,
        chunk_size=chunk_size,
        store_bytes=store_bytes,
        records=records,
    )


def compare_sharded(
    hg: Hypergraph,
    num_parts: int,
    *,
    workers: "tuple[int, ...]" = (1, 2, 4),
    cost_matrix: "np.ndarray | None" = None,
    chunk_size: int = 512,
    buffer_fraction: float = 0.25,
    pin_budget: "int | None" = None,
    max_tracked_edges: "int | None" = None,
    max_iterations: int = 100,
    payload: str = "boundary",
    shard_by: str = "pins",
    kernel: str = "auto",
    seed: int = 0,
) -> ShardedReport:
    """Stream ``hg`` at a ladder of worker counts, sharing one spill file.

    The base partitioner is a :class:`BufferedRestreamer` windowing
    ``buffer_fraction * |V|`` vertices; ``cut_drift`` is each run's
    relative hyperedge-cut excess over the single-worker run (the
    acceptance metric for the sharded pipeline), and ``speedup`` its
    single-worker wall-clock ratio.  Each record also carries the merge
    payload bytes the run actually shipped, what full-table shipping
    would have cost (``payload_reduction``), and the per-shard pin skew
    (``payload`` / ``shard_by`` select the v2 knobs under test).
    """
    C = uniform_cost_matrix(num_parts) if cost_matrix is None else cost_matrix
    cfg = HyperPRAWConfig(
        max_iterations=max_iterations, record_history=False, kernel=kernel
    )
    buffer = max(1, int(round(buffer_fraction * hg.num_vertices)))
    records: "list[ShardedRecord]" = []
    base_name = ""

    with tempfile.TemporaryDirectory(prefix="repro-bench-sharded-") as tmp:
        path = os.path.join(tmp, f"{hg.name}.hgr")
        write_hmetis(hg, path, write_weights=True)
        for w in workers:
            stream = stream_hmetis(
                path, chunk_size=chunk_size, pin_budget=pin_budget
            )
            with stream:
                base = BufferedRestreamer(
                    cfg, buffer_size=buffer, max_tracked_edges=max_tracked_edges
                )
                sharded = ShardedStreamer(
                    base, workers=w, payload=payload, shard_by=shard_by
                )
                base_name = base.name
                t0 = time.perf_counter()
                result = sharded.partition_stream(
                    stream, num_parts, cost_matrix=cost_matrix, seed=seed
                )
                wall = time.perf_counter() - t0
            quality = evaluate_partition(
                hg, result.assignment, num_parts, C, algorithm=f"workers={w}"
            )
            md = result.metadata
            records.append(
                ShardedRecord(
                    workers=w,
                    quality=quality,
                    wall_time_s=wall,
                    speedup=0.0,  # filled in below, once the anchor exists
                    cut_drift=0.0,
                    boundary_vertices=md["boundary_vertices"],
                    boundary_iterations=md["boundary_iterations"],
                    merge_payload_bytes=md["merge_payload_bytes"],
                    full_payload_bytes=md["merge_full_payload_bytes"],
                    pin_skew=md["shard_pin_skew"],
                )
            )

    # Anchor on the lowest worker count in the ladder (workers=1 when
    # present) — not on list position, which would follow whatever order
    # the caller passed.
    anchor = min(records, key=lambda r: r.workers)
    records = [
        ShardedRecord(
            workers=r.workers,
            quality=r.quality,
            wall_time_s=r.wall_time_s,
            speedup=anchor.wall_time_s / r.wall_time_s if r.wall_time_s else 0.0,
            cut_drift=(
                (r.quality.hyperedge_cut - anchor.quality.hyperedge_cut)
                / anchor.quality.hyperedge_cut
                if anchor.quality.hyperedge_cut
                else 0.0
            ),
            boundary_vertices=r.boundary_vertices,
            boundary_iterations=r.boundary_iterations,
            merge_payload_bytes=r.merge_payload_bytes,
            full_payload_bytes=r.full_payload_bytes,
            pin_skew=r.pin_skew,
        )
        for r in records
    ]
    return ShardedReport(
        instance=hg.name,
        num_parts=num_parts,
        num_pins=hg.num_pins,
        chunk_size=chunk_size,
        base_algorithm=base_name,
        records=records,
    )
