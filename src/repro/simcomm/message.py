"""Message primitives for the cluster simulator.

The synthetic benchmark generates an enormous number of *logical* messages
(one per pair of cut pins per hyperedge per timestep).  Simulating each
individually would be pointless detail: what determines time is, per
(source, destination) pair, **how many** messages were sent (latency term)
and **how many bytes** in total (bandwidth term).  A :class:`Flow`
aggregates exactly that, so the simulator's event count is bounded by
``p^2`` rather than the number of logical messages.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Flow"]


@dataclass(frozen=True)
class Flow:
    """An aggregated unidirectional message stream ``src -> dst``.

    Attributes
    ----------
    src, dst:
        endpoint ranks; must differ (self-messages are free and never
        enter the simulator).
    total_bytes:
        sum of payload sizes over all aggregated messages.
    num_messages:
        number of logical messages aggregated (each pays the link latency).
    """

    src: int
    dst: int
    total_bytes: float
    num_messages: int = 1

    def __post_init__(self):
        if self.src == self.dst:
            raise ValueError(f"flow endpoints must differ, got src == dst == {self.src}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"ranks must be non-negative, got ({self.src}, {self.dst})")
        if self.total_bytes < 0:
            raise ValueError(f"total_bytes must be >= 0, got {self.total_bytes}")
        if self.num_messages < 1:
            raise ValueError(f"num_messages must be >= 1, got {self.num_messages}")

    def merged_with(self, other: "Flow") -> "Flow":
        """Combine two flows over the same link."""
        if (self.src, self.dst) != (other.src, other.dst):
            raise ValueError(
                f"cannot merge flows over different links: "
                f"({self.src},{self.dst}) vs ({other.src},{other.dst})"
            )
        return Flow(
            self.src,
            self.dst,
            self.total_bytes + other.total_bytes,
            self.num_messages + other.num_messages,
        )
