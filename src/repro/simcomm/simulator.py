"""Cluster exchange simulator.

Given a set of :class:`~repro.simcomm.message.Flow` objects describing one
bulk exchange (e.g. one timestep of the synthetic benchmark), the simulator
answers: *how long does the exchange take on this machine?*

Three models are provided; all are deterministic.

``overlap`` (default)
    LogGP-style full-duplex model with concurrent transfers.  Per rank,
    sends overlap across destination links — modern NICs multiplex many
    streams — so the send side finishes after

    ``o * msgs_sent  +  max( total_bytes / nic_bw ,  max_j [ lat_ij + bytes_ij / bw_ij ] )``

    i.e. serialised per-message host overhead ``o`` plus the slower of the
    NIC aggregate-bandwidth constraint and the slowest single link's
    stream.  The receive side is symmetric; the exchange makespan is the
    worst rank.  This matches how a bulk-synchronous MPI exchange with
    non-blocking sends actually behaves on Aries-class networks: one
    congested slow link, or one rank with too many messages, stalls the
    step.

``endpoint``
    Event-driven single-port model: each rank's NIC transmits one flow at
    a time and absorbs one flow at a time.  A pessimistic serialisation
    bound (no overlap at all); useful as a contention stress model.

``blocking`` (default for the paper experiments)
    Per-rank serial bound: every rank sends its flows one after another
    (``sum_j [msgs_ij * lat_ij + bytes_ij / bw_ij]``) and likewise for
    receives; the makespan is the busiest rank.  This models the paper's
    synthetic benchmark loop — a null-compute code that walks its
    hyperedges issuing blocking send/receive pairs — where a process's
    step time is essentially the serial cost of its own message list.
    Cross-rank rendezvous stalls are ignored (a lower bound); tests
    assert it never exceeds ``endpoint``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.simcomm.message import Flow
from repro.simcomm.network import LinkModel

__all__ = ["ClusterSimulator", "ExchangeResult"]


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of simulating one bulk exchange.

    Attributes
    ----------
    makespan_s:
        simulated seconds from exchange start until the last byte is
        absorbed by its receiver.
    send_busy_s / recv_busy_s:
        per-rank NIC busy time (seconds); useful for spotting hotspots.
    num_flows:
        number of aggregated flows simulated.
    model:
        which timing model produced the result.
    """

    makespan_s: float
    send_busy_s: np.ndarray
    recv_busy_s: np.ndarray
    num_flows: int
    model: str

    def busiest_sender(self) -> int:
        return int(np.argmax(self.send_busy_s))

    def busiest_receiver(self) -> int:
        return int(np.argmax(self.recv_busy_s))


class ClusterSimulator:
    """Simulates bulk exchanges over a :class:`LinkModel`.

    Parameters
    ----------
    link_model:
        the machine's latency/bandwidth surface.
    """

    def __init__(
        self,
        link_model: LinkModel,
        *,
        nic_bandwidth_mbs: "float | None" = None,
        host_overhead_s: float = 1e-6,
    ):
        """
        Parameters
        ----------
        link_model:
            per-pair latency/bandwidth surface.
        nic_bandwidth_mbs:
            aggregate injection bandwidth per rank for the ``overlap``
            model; defaults to 2x the fastest link (a NIC can saturate a
            couple of its best peers simultaneously, typical of
            Aries/InfiniBand adapters).
        host_overhead_s:
            serialised CPU cost per logical message (LogGP's ``o``).
        """
        self.link_model = link_model
        if nic_bandwidth_mbs is None:
            n = link_model.num_ranks
            off = ~np.eye(n, dtype=bool)
            peak = link_model.bandwidth_mbs[off].max() if n > 1 else 1.0
            nic_bandwidth_mbs = 2.0 * float(peak)
        if nic_bandwidth_mbs <= 0:
            raise ValueError(f"nic_bandwidth_mbs must be > 0, got {nic_bandwidth_mbs}")
        if host_overhead_s < 0:
            raise ValueError(f"host_overhead_s must be >= 0, got {host_overhead_s}")
        self.nic_bandwidth_mbs = float(nic_bandwidth_mbs)
        self.host_overhead_s = float(host_overhead_s)

    @property
    def num_ranks(self) -> int:
        return self.link_model.num_ranks

    # ------------------------------------------------------------------
    def run_exchange(
        self, flows: "Iterable[Flow]", *, model: str = "overlap"
    ) -> ExchangeResult:
        """Simulate one bulk exchange of ``flows``.

        Flows are deterministic: the sender processes its flows in
        ascending destination order (matching the loop order of a typical
        MPI exchange), receivers grant slots in arrival order.
        """
        flow_list = sorted(flows, key=lambda f: (f.src, f.dst))
        self._check_ranks(flow_list)
        if model == "overlap":
            n = self.num_ranks
            bytes_m = np.zeros((n, n))
            msgs_m = np.zeros((n, n), dtype=np.int64)
            for f in flow_list:
                bytes_m[f.src, f.dst] += f.total_bytes
                msgs_m[f.src, f.dst] += f.num_messages
            return self._run_overlap(bytes_m, msgs_m, len(flow_list))
        if model == "endpoint":
            return self._run_endpoint(flow_list)
        if model == "blocking":
            return self._run_blocking(flow_list)
        raise ValueError(
            f"unknown model {model!r}; use 'overlap', 'endpoint' or 'blocking'"
        )

    # ------------------------------------------------------------------
    def _check_ranks(self, flows: Sequence[Flow]) -> None:
        n = self.num_ranks
        for f in flows:
            if f.src >= n or f.dst >= n:
                raise ValueError(
                    f"flow ({f.src} -> {f.dst}) references rank outside 0..{n - 1}"
                )

    def _transfer(self, f: Flow) -> float:
        return self.link_model.flow_time(f)

    def _run_endpoint(self, flows: Sequence[Flow]) -> ExchangeResult:
        n = self.num_ranks
        send_free = np.zeros(n)
        send_busy = np.zeros(n)
        recv_free = np.zeros(n)
        recv_busy = np.zeros(n)

        # Phase 1: sender serialisation — each sender transmits its flows
        # back-to-back; compute each flow's arrival time at the receiver.
        arrivals: list[tuple[float, int, Flow, float]] = []
        for order, f in enumerate(flows):
            duration = self._transfer(f)
            start = send_free[f.src]
            send_free[f.src] = start + duration
            send_busy[f.src] += duration
            latency = float(self.link_model.latency_s[f.src, f.dst])
            arrivals.append((start + duration + latency, order, f, duration))

        # Phase 2: receiver serialisation in arrival order.  The receive
        # occupies the destination NIC for the transfer duration again
        # (store-and-forward absorption).
        heapq.heapify(arrivals)
        makespan = 0.0
        while arrivals:
            arrival, _, f, duration = heapq.heappop(arrivals)
            start = max(arrival, recv_free[f.dst])
            finish = start + duration
            recv_free[f.dst] = finish
            recv_busy[f.dst] += duration
            makespan = max(makespan, finish)
        return ExchangeResult(
            makespan_s=float(makespan),
            send_busy_s=send_busy,
            recv_busy_s=recv_busy,
            num_flows=len(flows),
            model="endpoint",
        )

    def _run_overlap(
        self, bytes_m: np.ndarray, msgs_m: np.ndarray, num_flows: int
    ) -> ExchangeResult:
        """Vectorised LogGP-style overlap model over dense traffic matrices."""
        n = self.num_ranks
        np.fill_diagonal(bytes_m, 0.0)
        np.fill_diagonal(msgs_m, 0)
        bps = self.link_model.bandwidth_mbs * 1e6
        # Per-link stream completion: latency (pipeline fill) + bytes/bw,
        # only where traffic exists.
        with np.errstate(divide="ignore", invalid="ignore"):
            link_time = self.link_model.latency_s + bytes_m / bps
        link_time = np.where(bytes_m > 0, link_time, 0.0)
        nic_bps = self.nic_bandwidth_mbs * 1e6
        o = self.host_overhead_s

        send_busy = (
            o * msgs_m.sum(axis=1)
            + np.maximum(bytes_m.sum(axis=1) / nic_bps, link_time.max(axis=1))
        )
        recv_busy = (
            o * msgs_m.sum(axis=0)
            + np.maximum(bytes_m.sum(axis=0) / nic_bps, link_time.max(axis=0))
        )
        makespan = float(
            max(send_busy.max(initial=0.0), recv_busy.max(initial=0.0))
        )
        return ExchangeResult(
            makespan_s=makespan,
            send_busy_s=send_busy,
            recv_busy_s=recv_busy,
            num_flows=num_flows,
            model="overlap",
        )

    def _run_blocking(self, flows: Sequence[Flow]) -> ExchangeResult:
        n = self.num_ranks
        send_busy = np.zeros(n)
        recv_busy = np.zeros(n)
        for f in flows:
            duration = self._transfer(f)
            send_busy[f.src] += duration
            recv_busy[f.dst] += duration
        makespan = float(max(send_busy.max(initial=0.0), recv_busy.max(initial=0.0)))
        return ExchangeResult(
            makespan_s=makespan,
            send_busy_s=send_busy,
            recv_busy_s=recv_busy,
            num_flows=len(flows),
            model="blocking",
        )

    # ------------------------------------------------------------------
    def run_exchange_matrix(
        self,
        bytes_matrix: np.ndarray,
        *,
        messages_matrix: "np.ndarray | None" = None,
        model: str = "overlap",
    ) -> ExchangeResult:
        """Simulate an exchange described by a dense traffic matrix.

        ``bytes_matrix[i, j]`` holds total payload bytes ``i -> j``;
        ``messages_matrix`` the logical message counts (defaults to one
        message per non-empty pair).  The diagonal is ignored.
        """
        bytes_matrix = np.asarray(bytes_matrix, dtype=np.float64)
        n = self.num_ranks
        if bytes_matrix.shape != (n, n):
            raise ValueError(
                f"bytes_matrix must be {n}x{n}, got {bytes_matrix.shape}"
            )
        if messages_matrix is None:
            messages_matrix = (bytes_matrix > 0).astype(np.int64)
        src_idx, dst_idx = np.nonzero(bytes_matrix)
        flows = [
            Flow(
                int(i),
                int(j),
                float(bytes_matrix[i, j]),
                max(1, int(messages_matrix[i, j])),
            )
            for i, j in zip(src_idx, dst_idx)
            if i != j
        ]
        return self.run_exchange(flows, model=model)
