"""Link cost model: latency + size/bandwidth.

This is the single place where simulated time comes from.  Both the ring
profiler and the synthetic benchmark charge a flow of ``m`` messages
totalling ``s`` bytes between ranks ``i`` and ``j``:

.. math:: t = m \\cdot \\lambda_{ij} + s / \\beta_{ij}

with :math:`\\lambda` in seconds and :math:`\\beta` in bytes/second
(converted from the MB/s matrices of :mod:`repro.architecture.bandwidth`).
"""

from __future__ import annotations

import numpy as np

from repro.simcomm.message import Flow
from repro.utils.validation import check_square_matrix

__all__ = ["LinkModel"]

_MB = 1e6  # the paper's profiler reports MB/s; we use decimal megabytes


class LinkModel:
    """Latency/bandwidth cost surface over a set of ranks.

    Parameters
    ----------
    bandwidth_mbs:
        square matrix, peer-to-peer bandwidth in MB/s (diagonal ignored).
    latency_s:
        optional square matrix of one-way latencies in seconds; defaults
        to zero latency (pure bandwidth model).
    """

    def __init__(self, bandwidth_mbs: np.ndarray, latency_s: "np.ndarray | None" = None):
        self.bandwidth_mbs = check_square_matrix("bandwidth_mbs", bandwidth_mbs)
        off = ~np.eye(self.num_ranks, dtype=bool)
        if self.num_ranks > 1 and (self.bandwidth_mbs[off] <= 0).any():
            raise ValueError("off-diagonal bandwidths must be positive")
        if latency_s is None:
            latency_s = np.zeros_like(self.bandwidth_mbs)
        self.latency_s = check_square_matrix("latency_s", latency_s, self.num_ranks)
        if (self.latency_s < 0).any():
            raise ValueError("latencies must be non-negative")
        self._bytes_per_s = self.bandwidth_mbs * _MB

    @property
    def num_ranks(self) -> int:
        return self.bandwidth_mbs.shape[0]

    # ------------------------------------------------------------------
    def transfer_time(self, src: int, dst: int, nbytes: float, *, num_messages: int = 1) -> float:
        """Simulated seconds to move ``nbytes`` as ``num_messages`` messages."""
        if src == dst:
            return 0.0
        return (
            num_messages * float(self.latency_s[src, dst])
            + float(nbytes) / float(self._bytes_per_s[src, dst])
        )

    def flow_time(self, flow: Flow) -> float:
        """Transfer time of an aggregated :class:`Flow`."""
        return self.transfer_time(
            flow.src, flow.dst, flow.total_bytes, num_messages=flow.num_messages
        )

    def flow_times(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray, num_messages: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`transfer_time` over parallel arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        t = np.asarray(num_messages, dtype=np.float64) * self.latency_s[src, dst]
        t += np.asarray(nbytes, dtype=np.float64) / self._bytes_per_s[src, dst]
        return t

    def effective_bandwidth_mbs(self, src: int, dst: int, nbytes: float) -> float:
        """Observed MB/s for a single message of ``nbytes`` (what a
        profiler measures: payload over end-to-end time, latency included)."""
        t = self.transfer_time(src, dst, nbytes)
        if t <= 0:
            return float("inf")
        return float(nbytes) / _MB / t

    def __repr__(self) -> str:
        off = ~np.eye(self.num_ranks, dtype=bool)
        if self.num_ranks > 1:
            lo = self.bandwidth_mbs[off].min()
            hi = self.bandwidth_mbs[off].max()
        else:
            lo = hi = float("nan")
        return (
            f"LinkModel(ranks={self.num_ranks}, "
            f"bw=[{lo:.0f}, {hi:.0f}] MB/s)"
        )
