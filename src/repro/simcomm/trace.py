"""Traffic accounting — the bytes-sent matrices of Figures 1B and 6B–D.

The paper inspects *where* an application's bytes flow relative to where
the machine is fast.  :class:`TrafficTrace` accumulates a dense
``ranks x ranks`` bytes matrix across exchanges and offers the two
diagnostics used in the paper's discussion:

* rendering as a (log-scaled) heatmap, and
* correlation between the traffic pattern and the bandwidth matrix —
  HyperPRAW-aware should produce *positive* correlation (traffic rides the
  fast links), architecture-blind partitioners near zero.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.simcomm.message import Flow
from repro.utils.heatmap import ascii_heatmap

__all__ = ["TrafficTrace"]


class TrafficTrace:
    """Accumulates per-pair traffic over one or more exchanges."""

    def __init__(self, num_ranks: int):
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = int(num_ranks)
        self.bytes_matrix = np.zeros((num_ranks, num_ranks), dtype=np.float64)
        self.message_matrix = np.zeros((num_ranks, num_ranks), dtype=np.int64)
        self.num_exchanges = 0

    # ------------------------------------------------------------------
    def record_flows(self, flows: Iterable[Flow]) -> None:
        """Add one exchange's flows to the running totals."""
        for f in flows:
            self.bytes_matrix[f.src, f.dst] += f.total_bytes
            self.message_matrix[f.src, f.dst] += f.num_messages
        self.num_exchanges += 1

    def record_matrix(self, bytes_matrix: np.ndarray, messages_matrix=None) -> None:
        """Add a dense per-pair byte matrix (diagonal ignored)."""
        bytes_matrix = np.asarray(bytes_matrix, dtype=np.float64)
        if bytes_matrix.shape != self.bytes_matrix.shape:
            raise ValueError(
                f"matrix must be {self.bytes_matrix.shape}, got {bytes_matrix.shape}"
            )
        contribution = bytes_matrix.copy()
        np.fill_diagonal(contribution, 0.0)
        self.bytes_matrix += contribution
        if messages_matrix is not None:
            messages_matrix = np.asarray(messages_matrix, dtype=np.int64)
            np.fill_diagonal(messages_matrix, 0)
            self.message_matrix += messages_matrix
        else:
            self.message_matrix += (contribution > 0).astype(np.int64)
        self.num_exchanges += 1

    # ------------------------------------------------------------------
    def total_bytes(self) -> float:
        return float(self.bytes_matrix.sum())

    def bandwidth_affinity(self, bandwidth_mbs: np.ndarray) -> float:
        """Pearson correlation between off-diagonal traffic and bandwidth.

        Positive values mean traffic concentrates on fast links — the
        signature of HyperPRAW-aware in Figure 6D.  Returns 0.0 when either
        side is constant (e.g. no traffic at all).
        """
        bandwidth_mbs = np.asarray(bandwidth_mbs, dtype=np.float64)
        if bandwidth_mbs.shape != self.bytes_matrix.shape:
            raise ValueError("bandwidth matrix shape mismatch")
        off = ~np.eye(self.num_ranks, dtype=bool)
        x = self.bytes_matrix[off]
        y = bandwidth_mbs[off]
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    def fraction_on_fast_links(self, bandwidth_mbs: np.ndarray, *, quantile: float = 0.75) -> float:
        """Fraction of bytes carried by links above the bandwidth quantile.

        A coarser, scale-free version of :meth:`bandwidth_affinity`; the
        paper's Figure 6 argument is exactly that aware placement pushes
        most bytes onto the few fast (intra-node) links.
        """
        bandwidth_mbs = np.asarray(bandwidth_mbs, dtype=np.float64)
        off = ~np.eye(self.num_ranks, dtype=bool)
        threshold = np.quantile(bandwidth_mbs[off], quantile)
        fast = off & (bandwidth_mbs >= threshold)
        total = self.bytes_matrix[off].sum()
        if total == 0:
            return 0.0
        return float(self.bytes_matrix[fast].sum() / total)

    def render(self, *, title: str | None = None, max_size: int = 48) -> str:
        """ASCII heatmap of log10 bytes sent (Figure 1B / 6 style)."""
        return ascii_heatmap(
            self.bytes_matrix,
            title=title or "bytes sent (log10)",
            max_size=max_size,
            log=True,
        )
