"""Closed-form collective-operation timing estimates.

The synthetic benchmark synchronises all ranks once per timestep (the
paper's null-compute loop is a bulk-synchronous exchange).  We charge a
standard binomial-tree estimate over the *worst* link in the job: for
``p`` ranks, ``ceil(log2 p)`` rounds of one small message each.

These are deliberately coarse — collectives contribute a constant per-step
overhead that is identical across partitioners, so they never change the
paper's comparisons; they exist so absolute simulated runtimes include the
synchronisation floor a real bulk-synchronous code pays.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simcomm.network import LinkModel

__all__ = ["barrier_time", "allreduce_time", "tree_rounds"]


def tree_rounds(num_ranks: int) -> int:
    """Rounds of a binomial-tree collective over ``num_ranks`` ranks."""
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    return int(math.ceil(math.log2(num_ranks))) if num_ranks > 1 else 0


def _worst_small_message(link: LinkModel, payload_bytes: float) -> float:
    n = link.num_ranks
    if n == 1:
        return 0.0
    off = ~np.eye(n, dtype=bool)
    lat = link.latency_s[off].max()
    bw = link.bandwidth_mbs[off].min() * 1e6
    return float(lat + payload_bytes / bw)


def barrier_time(link: LinkModel) -> float:
    """Estimated seconds for a barrier (8-byte token messages)."""
    return tree_rounds(link.num_ranks) * _worst_small_message(link, 8.0)


def allreduce_time(link: LinkModel, payload_bytes: float = 8.0) -> float:
    """Estimated seconds for an allreduce of ``payload_bytes``.

    Reduce + broadcast over a binomial tree: twice the tree depth.
    """
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    return 2 * tree_rounds(link.num_ranks) * _worst_small_message(link, payload_bytes)
