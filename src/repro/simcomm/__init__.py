"""Simulated message-passing substrate.

The paper runs its profiler and its synthetic benchmark as real MPI jobs on
ARCHER.  Offline we replace the MPI runtime with a simulator that charges
each message the classic latency/bandwidth cost

.. math:: t(i, j, s) = \\lambda_{ij} + s / \\beta_{ij}

over the ground-truth matrices from :mod:`repro.architecture`, and models
endpoint contention: a rank's NIC serialises its sends, and independently
serialises its receives (single-port full-duplex model, standard in LogGP-
style analyses).  Everything the paper measures — per-pair bandwidth during
profiling, per-pair traffic patterns, total exchange runtime — is exposed:

* :class:`~repro.simcomm.message.Flow` — an aggregated message stream
  between two ranks;
* :class:`~repro.simcomm.network.LinkModel` — the latency/bandwidth cost
  surface;
* :class:`~repro.simcomm.simulator.ClusterSimulator` — runs a set of flows
  to completion and reports the simulated makespan plus per-rank busy
  times (two models: event-driven endpoint serialisation, and a cheap
  analytic bottleneck bound);
* :class:`~repro.simcomm.trace.TrafficTrace` — accumulates the bytes-sent
  matrix plotted in Figures 1B and 6B–D;
* :mod:`~repro.simcomm.collectives` — closed-form estimates for
  barrier/allreduce used by the benchmark's per-timestep synchronisation.
"""

from repro.simcomm.message import Flow
from repro.simcomm.network import LinkModel
from repro.simcomm.simulator import ClusterSimulator, ExchangeResult
from repro.simcomm.trace import TrafficTrace
from repro.simcomm.collectives import barrier_time, allreduce_time

__all__ = [
    "Flow",
    "LinkModel",
    "ClusterSimulator",
    "ExchangeResult",
    "TrafficTrace",
    "barrier_time",
    "allreduce_time",
]
