"""Hierarchical machine topology.

A topology is a balanced tree of *levels*.  Bottom-up, each level groups a
fixed number of children: e.g. ARCHER groups 12 cores per processor, 2
processors per node, 4 nodes per blade (Aries router), and many blades per
group.  Two compute units communicate through their *lowest common level*:
cores 0 and 1 share a processor, cores 0 and 23 only share a node, cores 0
and 25 only share a blade, and so on.  All bandwidth/latency synthesis in
:mod:`repro.architecture.bandwidth` is keyed on this **distance class**:

* class 0 — same unit (``i == j``),
* class 1 — same level-1 group (e.g. same processor),
* class k — lowest common ancestor at level k.

The class matrix is what Figure 1A's nested-block structure visualises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "MachineTopology",
    "archer_like_topology",
    "fat_tree_topology",
    "flat_topology",
]


@dataclass(frozen=True)
class MachineTopology:
    """A balanced hierarchical machine.

    Parameters
    ----------
    level_names:
        names of grouping levels, bottom-up, e.g.
        ``("processor", "node", "blade", "group")``.
    arities:
        ``arities[k]`` children per level-``k`` group: ``arities[0]`` is
        units per level-1 group, etc.  The total unit count is
        ``prod(arities)``.

    Notes
    -----
    ``num_classes = len(arities) + 1``: class 0 is "same unit"; class
    ``len(arities)`` is "only share the machine root".
    """

    level_names: tuple
    arities: tuple

    def __post_init__(self):
        if len(self.level_names) != len(self.arities):
            raise ValueError(
                f"{len(self.level_names)} level names but {len(self.arities)} arities"
            )
        if not self.arities:
            raise ValueError("topology needs at least one level")
        for name, a in zip(self.level_names, self.arities):
            if int(a) < 1:
                raise ValueError(f"level {name!r} arity must be >= 1, got {a}")

    # ------------------------------------------------------------------
    @property
    def num_units(self) -> int:
        """Total number of compute units (leaf cores)."""
        return int(np.prod(self.arities))

    @property
    def num_classes(self) -> int:
        """Number of distance classes, including class 0 (self)."""
        return len(self.arities) + 1

    def strides(self) -> np.ndarray:
        """``strides[k]`` = units per level-(k+1) group.

        ``unit // strides[k]`` is a unit's ancestor id at level ``k+1``.
        """
        return np.cumprod(np.asarray(self.arities, dtype=np.int64))

    def coordinates(self, unit: int) -> tuple:
        """Per-level ancestor ids of ``unit``, bottom-up.

        Example: with arities (12, 2, 4), unit 30 is
        ``(processor=2, node=1, blade=0)``.
        """
        if not 0 <= unit < self.num_units:
            raise ValueError(f"unit {unit} outside [0, {self.num_units})")
        return tuple(int(unit // s) for s in self.strides())

    def distance_class(self, i: int, j: int) -> int:
        """Distance class of the pair ``(i, j)`` (0 = same unit)."""
        if i == j:
            return 0
        for k, s in enumerate(self.strides(), start=1):
            if i // s == j // s:
                return k
        return self.num_classes - 1  # only the implicit machine root

    def class_matrix(self) -> np.ndarray:
        """``num_units x num_units`` int matrix of distance classes.

        Vectorised: walk levels top-down, overwriting entries as pairs are
        found to share deeper (faster) ancestors.
        """
        n = self.num_units
        ids = np.arange(n, dtype=np.int64)
        out = np.full((n, n), self.num_classes - 1, dtype=np.int8)
        for k in range(len(self.arities) - 1, -1, -1):
            anc = ids // self.strides()[k]
            eq = anc[:, None] == anc[None, :]
            out[eq] = k + 1
        np.fill_diagonal(out, 0)
        return out

    def class_names(self) -> list[str]:
        """Human-readable labels for each distance class."""
        labels = ["self"]
        labels.extend(f"same {name}" for name in self.level_names)
        # The outermost class means sharing *only* the machine root; rename
        # for clarity ("same group" -> crossing every named level).
        if len(labels) >= 2:
            labels[-1] = f"cross {self.level_names[-1]}"
        return labels

    def describe(self) -> str:
        """One-line summary, e.g. ``96 units = 12 x 2 x 4``."""
        dims = " x ".join(str(a) for a in self.arities)
        return f"{self.num_units} units = {dims} ({', '.join(self.level_names)})"


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------
def archer_like_topology(num_nodes: int = 4, *, cores_per_processor: int = 12,
                         processors_per_node: int = 2,
                         nodes_per_blade: int = 4) -> MachineTopology:
    """ARCHER-like topology (paper Section 1).

    ARCHER nodes hold two 12-core Ivy Bridge processors; four nodes share an
    Aries router ("blade").  ``num_nodes`` nodes are allocated; blades are
    filled in order (a partially filled last blade is modelled by rounding
    the blade count up, which only affects distance classes across the
    job's tail nodes).

    The paper's quality/runtime experiments use 576 cores = 24 nodes; the
    default here (4 nodes = 96 cores) keeps the simulated evaluation
    laptop-sized while preserving four distinct distance classes.
    """
    check_positive("num_nodes", num_nodes)
    if num_nodes <= nodes_per_blade:
        # Single blade: the blade level's arity is the actual node count.
        return MachineTopology(
            level_names=("processor", "node", "blade"),
            arities=(cores_per_processor, processors_per_node, num_nodes),
        )
    num_blades = -(-num_nodes // nodes_per_blade)  # ceil division
    return MachineTopology(
        level_names=("processor", "node", "blade", "group"),
        arities=(cores_per_processor, processors_per_node, nodes_per_blade, num_blades),
    )


def fat_tree_topology(cores: int = 16, nodes: int = 4, racks: int = 2) -> MachineTopology:
    """Generic commodity-cluster topology: cores / node, nodes / rack, racks."""
    return MachineTopology(
        level_names=("node", "rack", "cluster"),
        arities=(cores, nodes, racks),
    )


def flat_topology(num_units: int) -> MachineTopology:
    """Degenerate single-level topology (homogeneous network).

    Useful as a control: with a flat machine the aware and basic variants
    of HyperPRAW should behave identically (tested in the suite).
    """
    check_positive("num_units", num_units)
    return MachineTopology(level_names=("network",), arities=(num_units,))
