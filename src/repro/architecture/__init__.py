"""Architecture substrate: machine topology, bandwidth and cost matrices.

The paper's core claim is that HPC systems are *communication-
heterogeneous*: two cores in the same processor talk orders of magnitude
faster than two cores in different cabinets (Figure 1A profiles ARCHER's
24-core nodes).  HyperPRAW consumes that heterogeneity as a peer-to-peer
**cost matrix**.  This package models the machine side:

* :mod:`~repro.architecture.topology` — hierarchical machine descriptions
  (core / socket / node / blade / group) with an ARCHER-like preset;
* :mod:`~repro.architecture.bandwidth` — synthesis of peer-to-peer
  bandwidth and latency matrices from a topology plus per-level link
  characteristics and multiplicative noise;
* :mod:`~repro.architecture.cost` — the paper's normalisation
  ``C(i,j) = 2 - (b_ij - b_min)/(b_max - b_min)`` (Section 4.2) and the
  uniform matrix used by HyperPRAW-basic;
* :mod:`~repro.architecture.profiling` — the mpiGraph-style ring protocol
  that *discovers* the bandwidth matrix by timing messages on the
  :mod:`repro.simcomm` simulator, mirroring the paper's
  profile-at-job-start workflow.
"""

from repro.architecture.topology import (
    MachineTopology,
    archer_like_topology,
    fat_tree_topology,
    flat_topology,
)
from repro.architecture.bandwidth import LevelLinkSpec, BandwidthModel, archer_like_bandwidth
from repro.architecture.cost import (
    cost_matrix_from_bandwidth,
    uniform_cost_matrix,
    validate_cost_matrix,
)
from repro.architecture.profiling import RingProfiler, ProfileResult

__all__ = [
    "MachineTopology",
    "archer_like_topology",
    "fat_tree_topology",
    "flat_topology",
    "LevelLinkSpec",
    "BandwidthModel",
    "archer_like_bandwidth",
    "cost_matrix_from_bandwidth",
    "uniform_cost_matrix",
    "validate_cost_matrix",
    "RingProfiler",
    "ProfileResult",
]
