"""Peer-to-peer bandwidth / latency matrix synthesis.

The ground-truth network characteristics of a simulated machine.  Each
distance class of the topology (same processor, same node, same blade, ...)
gets a nominal bandwidth and latency; per-pair multiplicative log-normal
noise models manufacturing variation and background traffic, and a per-job
seed models the scheduler handing out different node allocations — the
paper re-profiles every job precisely because of this (Section 4.2).

Bandwidth magnitudes follow the ARCHER profile in the paper's Figure 1A,
whose colour bar spans ``log(MB/s)`` of roughly 5.5–8 (natural log): about
3 GB/s within a processor down to ~250 MB/s across blades.  Only the
*ratios* matter to HyperPRAW (costs are min-max normalised); tests pin the
ratios, not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.architecture.topology import MachineTopology
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["LevelLinkSpec", "BandwidthModel", "archer_like_bandwidth"]


@dataclass(frozen=True)
class LevelLinkSpec:
    """Nominal link characteristics for one distance class.

    Attributes
    ----------
    bandwidth_mbs:
        nominal peer-to-peer bandwidth in MB/s.
    latency_us:
        nominal one-way message latency in microseconds.
    """

    bandwidth_mbs: float
    latency_us: float

    def __post_init__(self):
        check_positive("bandwidth_mbs", self.bandwidth_mbs)
        check_positive("latency_us", self.latency_us, strict=False)


class BandwidthModel:
    """Generates ground-truth bandwidth/latency matrices for a topology.

    Parameters
    ----------
    topology:
        machine description.
    class_specs:
        one :class:`LevelLinkSpec` per distance class **starting at class 1**
        (class 0 — a unit talking to itself — is free and excluded from
        normalisation, matching ``C(i,i) = 0`` in the paper).
    noise_sigma:
        sigma of multiplicative log-normal noise applied per (unordered)
        pair. 0 disables noise.
    """

    def __init__(
        self,
        topology: MachineTopology,
        class_specs: "list[LevelLinkSpec]",
        *,
        noise_sigma: float = 0.08,
    ) -> None:
        if len(class_specs) != topology.num_classes - 1:
            raise ValueError(
                f"need {topology.num_classes - 1} class specs for "
                f"{topology.num_classes} distance classes, got {len(class_specs)}"
            )
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        bws = [spec.bandwidth_mbs for spec in class_specs]
        if any(b2 > b1 for b1, b2 in zip(bws, bws[1:])):
            raise ValueError(
                "class bandwidths must be non-increasing with distance "
                f"(got {bws}); a farther pair cannot be faster"
            )
        self.topology = topology
        self.class_specs = list(class_specs)
        self.noise_sigma = float(noise_sigma)

    # ------------------------------------------------------------------
    def bandwidth_matrix(self, *, seed=None) -> np.ndarray:
        """Ground-truth symmetric bandwidth matrix in MB/s.

        The diagonal holds the class-1 nominal bandwidth purely as a
        placeholder — self-communication never happens in the simulator and
        the cost normalisation excludes the diagonal.
        """
        classes = self.topology.class_matrix()
        nominal = np.empty(self.topology.num_classes, dtype=np.float64)
        nominal[0] = self.class_specs[0].bandwidth_mbs
        for k, spec in enumerate(self.class_specs, start=1):
            nominal[k] = spec.bandwidth_mbs
        bw = nominal[classes]
        bw = self._apply_noise(bw, seed, tag=0)
        np.fill_diagonal(bw, nominal[0])
        return bw

    def latency_matrix(self, *, seed=None) -> np.ndarray:
        """Ground-truth symmetric one-way latency matrix in **seconds**."""
        classes = self.topology.class_matrix()
        nominal = np.empty(self.topology.num_classes, dtype=np.float64)
        nominal[0] = 0.0
        for k, spec in enumerate(self.class_specs, start=1):
            nominal[k] = spec.latency_us * 1e-6
        lat = nominal[classes]
        lat = self._apply_noise(lat, seed, tag=1)
        np.fill_diagonal(lat, 0.0)
        return lat

    def matrices(self, *, seed=None) -> tuple[np.ndarray, np.ndarray]:
        """``(bandwidth_mbs, latency_s)`` pair sharing one seed."""
        return self.bandwidth_matrix(seed=seed), self.latency_matrix(seed=seed)

    # ------------------------------------------------------------------
    def _apply_noise(self, matrix: np.ndarray, seed, *, tag: int) -> np.ndarray:
        if self.noise_sigma == 0:
            return matrix
        rng = as_generator(None if seed is None else _mix_seed(seed, tag))
        n = matrix.shape[0]
        noise = rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=(n, n))
        # Symmetrise so (i, j) and (j, i) see the same link.
        iu = np.triu_indices(n, k=1)
        sym = np.ones_like(matrix)
        sym[iu] = noise[iu]
        sym.T[iu] = noise[iu]
        return matrix * sym


def _mix_seed(seed, tag: int):
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.SeedSequence([int(seed), tag])


def archer_like_bandwidth(
    topology: MachineTopology, *, noise_sigma: float = 0.08
) -> BandwidthModel:
    """ARCHER-flavoured link characteristics for an
    :func:`~repro.architecture.topology.archer_like_topology` machine.

    Values approximate Figure 1A read as natural-log MB/s: ~3 GB/s inside a
    processor, ~1.8 GB/s between the two processors of a node, ~400 MB/s
    between nodes of a blade, ~250 MB/s across blades, ~230 MB/s across
    groups.  The fastest/slowest ratio of ~13x is the heterogeneity the
    paper exploits.
    """
    tiers = [
        LevelLinkSpec(bandwidth_mbs=3000.0, latency_us=0.8),   # same processor
        LevelLinkSpec(bandwidth_mbs=1800.0, latency_us=1.2),   # same node
        LevelLinkSpec(bandwidth_mbs=400.0, latency_us=2.5),    # same blade
        LevelLinkSpec(bandwidth_mbs=250.0, latency_us=3.5),    # same group
        LevelLinkSpec(bandwidth_mbs=230.0, latency_us=5.0),    # cross group
    ]
    return BandwidthModel(
        topology,
        tiers[: topology.num_classes - 1],
        noise_sigma=noise_sigma,
    )
