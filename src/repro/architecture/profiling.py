"""Ring-protocol bandwidth discovery (the paper's mpiGraph step).

HyperPRAW does not assume the architecture is known: it *profiles* the
allocated job before partitioning (Section 4.2), using the LLNL mpiGraph
tool — every rank sends fixed-size messages around a ring at increasing
offsets and times them, yielding a full peer-to-peer bandwidth matrix.

:class:`RingProfiler` reproduces that workflow on the simulator: for each
ring offset ``d`` each rank ``i`` measures the transfer ``i -> (i+d) % p``
through the ground-truth :class:`~repro.simcomm.network.LinkModel`, with
multiplicative measurement noise.  The measured matrix therefore *is not*
the ground truth — it is an estimate, exactly as on a real machine — and
the experiments feed only the estimate to HyperPRAW-aware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.architecture.cost import cost_matrix_from_bandwidth
from repro.simcomm.network import LinkModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["RingProfiler", "ProfileResult"]


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of a profiling session.

    Attributes
    ----------
    bandwidth_mbs:
        measured peer-to-peer bandwidth matrix (MB/s); the diagonal is
        filled with the maximum measured value purely as a placeholder.
    message_bytes / repeats:
        profiling parameters (larger messages drown the latency term and
        approach the ground-truth bandwidth; repeats average out noise).
    profiling_time_s:
        simulated seconds the session itself took — profiling is not free,
        and the experiment runner reports it as setup cost.
    """

    bandwidth_mbs: np.ndarray
    message_bytes: int
    repeats: int
    profiling_time_s: float

    def cost_matrix(self) -> np.ndarray:
        """The paper's normalised communication-cost matrix (Section 4.2)."""
        return cost_matrix_from_bandwidth(self.bandwidth_mbs)

    def relative_error(self, ground_truth_mbs: np.ndarray) -> float:
        """Median relative error vs the ground-truth matrix (diagnostics)."""
        gt = np.asarray(ground_truth_mbs, dtype=np.float64)
        n = self.bandwidth_mbs.shape[0]
        off = ~np.eye(n, dtype=bool)
        rel = np.abs(self.bandwidth_mbs[off] - gt[off]) / gt[off]
        return float(np.median(rel))


class RingProfiler:
    """Simulated mpiGraph: measures a link model via ring exchanges.

    Parameters
    ----------
    link_model:
        ground-truth machine (what a real job would physically have).
    message_bytes:
        payload per probe; mpiGraph defaults to ~1 MB, large enough that
        the latency term is negligible.
    repeats:
        probes averaged per pair.
    measurement_noise:
        sigma of multiplicative log-normal timing noise per probe (OS
        jitter, background traffic).  0 gives exact measurements.
    """

    def __init__(
        self,
        link_model: LinkModel,
        *,
        message_bytes: int = 1 << 20,
        repeats: int = 3,
        measurement_noise: float = 0.03,
    ) -> None:
        self.link_model = link_model
        self.message_bytes = int(check_positive("message_bytes", message_bytes))
        self.repeats = int(check_positive("repeats", repeats))
        if measurement_noise < 0:
            raise ValueError(f"measurement_noise must be >= 0, got {measurement_noise}")
        self.measurement_noise = float(measurement_noise)

    # ------------------------------------------------------------------
    def profile(self, *, seed=None, symmetrize: bool = True) -> ProfileResult:
        """Run the full ring sweep and return the measured matrix.

        For each offset ``d in 1..p-1``, rank ``i`` probes ``(i+d) % p``
        ``repeats`` times.  ``symmetrize=True`` averages the two directions
        of each pair (links are physically symmetric; averaging halves the
        noise), which is also what mpiGraph post-processing does.
        """
        rng = as_generator(seed)
        p = self.link_model.num_ranks
        measured = np.zeros((p, p), dtype=np.float64)
        total_time = 0.0
        ranks = np.arange(p, dtype=np.int64)
        for d in range(1, p):
            dsts = (ranks + d) % p
            # True per-probe times for this offset's p simultaneous probes.
            true_t = self.link_model.flow_times(
                ranks, dsts, np.full(p, self.message_bytes), np.ones(p)
            )
            obs = np.zeros(p)
            for _ in range(self.repeats):
                noise = (
                    rng.lognormal(0.0, self.measurement_noise, size=p)
                    if self.measurement_noise > 0
                    else np.ones(p)
                )
                sample = true_t * noise
                obs += sample
                # Ring rounds run concurrently across ranks; the round's
                # simulated duration is its slowest probe.
                total_time += float(sample.max())
            obs /= self.repeats
            measured[ranks, dsts] = (self.message_bytes / 1e6) / obs
        if symmetrize:
            measured = 0.5 * (measured + measured.T)
        np.fill_diagonal(measured, measured.max() if p > 1 else 1.0)
        return ProfileResult(
            bandwidth_mbs=measured,
            message_bytes=self.message_bytes,
            repeats=self.repeats,
            profiling_time_s=total_time,
        )
