"""Communication-cost matrix normalisation (paper Section 4.2).

From the profiled bandwidth matrix ``B`` the paper derives

.. math::

    C(i, j) = 2 - \\frac{b_{ij} - b_{min}}{b_{max} - b_{min}},
    \\qquad C(i, i) = 0,

so the fastest link costs 1, the slowest costs 2, and self-communication is
free.  The normalisation makes HyperPRAW independent of the absolute
bandwidth magnitude — the paper notes un-normalised costs would distort the
balance between the workload and communication terms of the value function.

``b_min``/``b_max`` are taken over **off-diagonal** entries only: the
diagonal is a self-communication placeholder, and including it would
compress all real links toward cost 2.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_square_matrix

__all__ = [
    "cost_matrix_from_bandwidth",
    "uniform_cost_matrix",
    "validate_cost_matrix",
    "is_uniform_cost",
]


def cost_matrix_from_bandwidth(bandwidth: np.ndarray) -> np.ndarray:
    """Normalise a bandwidth matrix into the paper's cost matrix.

    Parameters
    ----------
    bandwidth:
        square matrix of peer-to-peer bandwidths (any consistent unit);
        only off-diagonal entries are read.

    Returns
    -------
    numpy.ndarray
        cost matrix with ``C[i, i] = 0`` and off-diagonal entries in
        ``[1, 2]`` (all exactly 1 when every link is identical, e.g. a
        ``1x1`` or perfectly homogeneous machine).
    """
    bw = check_square_matrix("bandwidth", bandwidth)
    n = bw.shape[0]
    if n == 1:
        return np.zeros((1, 1))
    off = ~np.eye(n, dtype=bool)
    values = bw[off]
    if (values <= 0).any():
        raise ValueError("bandwidths must be strictly positive")
    bmin, bmax = float(values.min()), float(values.max())
    if bmax == bmin:
        cost = np.ones_like(bw)
    else:
        cost = 2.0 - (bw - bmin) / (bmax - bmin)
    np.fill_diagonal(cost, 0.0)
    return cost


def uniform_cost_matrix(num_units: int) -> np.ndarray:
    """The cost matrix HyperPRAW-basic uses: every distinct pair costs 1.

    Equivalent to pretending the machine is perfectly homogeneous; the
    value function then reduces to pure (architecture-blind) communication
    minimisation.
    """
    if num_units < 1:
        raise ValueError(f"num_units must be >= 1, got {num_units}")
    cost = np.ones((num_units, num_units), dtype=np.float64)
    np.fill_diagonal(cost, 0.0)
    return cost


def is_uniform_cost(cost: np.ndarray) -> bool:
    """True when every distinct pair costs the same (a flat machine).

    A literally uniform matrix makes any architecture-aware algorithm
    coincide with its architecture-blind variant; the partitioners use
    this to label results honestly.
    """
    cost = np.asarray(cost)
    n = cost.shape[0]
    if n <= 1:
        return True
    off = cost[~np.eye(n, dtype=bool)]
    return bool(np.allclose(off, cost[0, 1]))


def validate_cost_matrix(cost: np.ndarray, *, num_units: int | None = None) -> np.ndarray:
    """Check the structural invariants of a cost matrix.

    Zero diagonal and non-negative entries are required by the value
    function and the PC-cost metric; symmetry is required because the
    synthetic benchmark sends messages both ways over each cut pair.
    """
    cost = check_square_matrix("cost", cost, num_units)
    if not np.allclose(np.diag(cost), 0.0):
        raise ValueError("cost matrix must have a zero diagonal")
    if (cost < 0).any():
        raise ValueError("cost matrix entries must be non-negative")
    if not np.allclose(cost, cost.T, rtol=1e-9, atol=1e-12):
        raise ValueError("cost matrix must be symmetric")
    return cost
