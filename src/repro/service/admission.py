"""Admission control: API-key auth and per-key token-bucket rate limits.

The service ships open by default (no keys configured → every request is
admitted, exactly the PR 5 behaviour).  Configuring keys — via the
``REPRO_API_KEYS`` environment variable (comma-separated) or a key file
(``--api-key-file``, one key per line, ``#`` comments) — flips every
route except ``/v1/healthz``, ``/v1/metrics`` and ``/v1/openapi.json``
to require one:

* no key presented          → ``401 unauthorized``
* unknown key presented     → ``403 forbidden``
* key over its request rate → ``429 rate_limited`` + ``Retry-After``

Keys ride in the ``X-API-Key`` header or as ``Authorization: Bearer
<key>`` — headers only, never query parameters (they would end up in
access logs and the strict unknown-parameter validation).

Rate limiting is a classic token bucket per key: ``rate`` tokens/second
refill up to a ``burst`` cap, one token per admitted request.  A bucket
is created lazily on a key's first request, so memory is bounded by the
number of *configured* keys, not by traffic.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.service.errors import Forbidden, TooManyRequests, Unauthorized

__all__ = [
    "API_KEYS_ENV",
    "TokenBucket",
    "AdmissionControl",
    "load_key_file",
    "keys_from_env",
]

#: Environment variable holding comma-separated API keys.
API_KEYS_ENV = "REPRO_API_KEYS"

#: Routes that never require a key (probes, scrapers, spec fetches).
PUBLIC_PATHS = ("/v1/healthz", "/v1/metrics", "/v1/openapi.json")


def load_key_file(path) -> "tuple[str, ...]":
    """API keys from a file: one per line, blank lines and ``#`` comments
    ignored.  Duplicates collapse; order is preserved otherwise."""
    keys: "list[str]" = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line not in keys:
            keys.append(line)
    return tuple(keys)


def keys_from_env(environ=None) -> "tuple[str, ...]":
    """API keys from :data:`API_KEYS_ENV` (comma-separated, may be empty)."""
    env = os.environ if environ is None else environ
    raw = env.get(API_KEYS_ENV, "")
    keys: "list[str]" = []
    for part in raw.split(","):
        key = part.strip()
        if key and key not in keys:
            keys.append(key)
    return tuple(keys)


class TokenBucket:
    """One key's request budget: ``rate`` tokens/s refilling to ``burst``.

    ``take()`` consumes a token if one is available and returns ``None``;
    otherwise it returns the whole-second wait after which a token will
    exist — the ``Retry-After`` value.  Monotonic time, thread-safe.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def take(self) -> "int | None":
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            deficit = 1.0 - self._tokens
            return max(1, int(-(-deficit // self.rate)))


class AdmissionControl:
    """Decides, per request, whether the caller gets in.

    Parameters
    ----------
    api_keys:
        the accepted keys; empty/None means the service is open and
        :meth:`admit` is a no-op.
    rate / burst:
        per-key token-bucket parameters (requests per second, burst
        cap).  ``rate=None`` disables rate limiting while keeping auth.
    """

    def __init__(
        self,
        api_keys=None,
        *,
        rate: "float | None" = None,
        burst: float = 10.0,
    ) -> None:
        self.api_keys = frozenset(api_keys or ())
        self.rate = rate
        self.burst = float(burst)
        self._buckets: "dict[str, TokenBucket]" = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return bool(self.api_keys)

    @staticmethod
    def is_public(path: str) -> bool:
        return path in PUBLIC_PATHS

    @staticmethod
    def extract_key(headers) -> "str | None":
        """The API key a request presented, or ``None``.

        ``X-API-Key: <key>`` wins; ``Authorization: Bearer <key>`` is
        the fallback for clients that only speak standard headers.
        """
        key = headers.get("X-API-Key")
        if key:
            return key.strip() or None
        auth = headers.get("Authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip() or None
        return None

    def admit(self, path: str, headers) -> "str | None":
        """Admit or raise; returns the authenticated key (``None`` when
        the service is open or the route is public).

        Raises :class:`Unauthorized` (no key), :class:`Forbidden`
        (unknown key) or :class:`TooManyRequests` (rate exceeded).
        """
        if not self.enabled or self.is_public(path):
            return None
        key = self.extract_key(headers)
        if key is None:
            raise Unauthorized(
                "missing API key; send X-API-Key or Authorization: Bearer"
            )
        if key not in self.api_keys:
            raise Forbidden("unknown API key")
        if self.rate is not None:
            wait = self._bucket(key).take()
            if wait is not None:
                raise TooManyRequests(
                    f"rate limit exceeded ({self.rate:g} requests/s per "
                    f"key); retry in {wait}s",
                    retry_after=wait,
                    code="rate_limited",
                )
        return key

    def _bucket(self, key: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(self.rate, self.burst)
            return bucket
