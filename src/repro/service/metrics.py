"""A minimal Prometheus-text-format metrics registry (stdlib only).

``GET /v1/metrics`` exposes everything the service already counts
(healthz stats, job states) plus the operational signals this layer
adds: queue depth, per-route request latency histograms, evictions,
admission rejections.  The exposition format is Prometheus text v0.0.4
— ``# HELP`` / ``# TYPE`` comments, one sample per line — which every
scraper and ``curl | grep`` understands; no client library is needed to
*produce* it, so none is imported.

Three metric kinds cover the service:

* :class:`Counter` — monotonically increasing event counts.
* :class:`Gauge` — instantaneous values, read from a callable at scrape
  time (queue depth, store bytes) so the registry never holds stale
  copies of state owned elsewhere.
* :class:`Histogram` — cumulative-bucket latency distributions with
  optional label sets (one child per ``(method, path)`` route).

All metrics are thread-safe; the HTTP layer observes latencies from
many handler threads concurrently.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "LATENCY_BUCKETS"]

#: Request-latency bucket bounds in seconds (Prometheus convention:
#: cumulative ``le`` upper bounds; +Inf is implicit).
LATENCY_BUCKETS = (0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0, 30.0)


def _fmt(value) -> str:
    """A Prometheus-friendly number: integral values without the dot."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _fmt_labels(labels: "dict | None", extra: "dict | None" = None) -> str:
    merged: "dict[str, str]" = {}
    if labels:
        merged.update(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in merged.items()
    )
    return "{" + inner + "}"


class Counter:
    """Monotonic event counter, optionally with fixed labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: "dict[tuple, float]" = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        for key, value in items:
            yield f"{self.name}{_fmt_labels(dict(key))} {_fmt(value)}"


class Gauge:
    """Value pulled from ``fn`` at scrape time (no stale copies).

    ``kind`` may be declared ``"counter"`` when the backing value is
    monotonic but owned elsewhere (e.g. an existing stats dict entry) —
    the exposition TYPE then matches the semantics scrapers expect.
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str, fn, *, kind: str = "gauge") -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self._fn = fn

    def samples(self):
        yield f"{self.name} {_fmt(self._fn())}"


class Histogram:
    """Cumulative-bucket distribution with per-label-set children."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, buckets=LATENCY_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._lock = threading.Lock()
        # label-key → [bucket_counts..., total_count, value_sum]
        self._children: "dict[tuple, list]" = {}

    def observe(self, value: float, **labels) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = [0] * len(self.buckets) + [0, 0.0]
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    child[i] += 1
            child[-2] += 1
            child[-1] += float(value)

    def samples(self):
        with self._lock:
            items = sorted((k, list(v)) for k, v in self._children.items())
        for key, child in items:
            labels = dict(key)
            for i, bound in enumerate(self.buckets):
                le = _fmt_labels(labels, {"le": _fmt(bound)})
                yield f"{self.name}_bucket{le} {child[i]}"
            inf = _fmt_labels(labels, {"le": "+Inf"})
            yield f"{self.name}_bucket{inf} {child[-2]}"
            yield f"{self.name}_sum{_fmt_labels(labels)} {_fmt(child[-1])}"
            yield f"{self.name}_count{_fmt_labels(labels)} {child[-2]}"


class MetricsRegistry:
    """Holds every metric and renders the scrape body."""

    def __init__(self) -> None:
        self._metrics: "list" = []
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str) -> Counter:
        return self._add(Counter(name, help_text))

    def gauge(self, name: str, help_text: str, fn, *, kind: str = "gauge") -> Gauge:
        return self._add(Gauge(name, help_text, fn, kind=kind))

    def histogram(self, name: str, help_text: str, buckets=LATENCY_BUCKETS) -> Histogram:
        return self._add(Histogram(name, help_text, buckets))

    def _add(self, metric):
        with self._lock:
            self._metrics.append(metric)
        return metric

    def render(self) -> str:
        """The full Prometheus text-format exposition body."""
        lines: "list[str]" = []
        with self._lock:
            metrics = list(self._metrics)
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"
