"""Streaming partition service: the library as HTTP traffic.

HyperPRAW's premise is that partitioning is a *preprocessing service*
for parallel applications — a hypergraph comes in, an architecture-aware
assignment comes out.  This package is that deployment shape (ROADMAP
item (b); the standalone-component framing of HYPE, arXiv:1810.11319,
and the limited-memory streaming of arXiv:2103.05394), built entirely on
the stdlib (``http.server`` + threads) so the repo's no-new-dependencies
rule holds:

* :mod:`~repro.service.app` — :class:`PartitionService`, the threading
  HTTP server; request bodies are framed (``Content-Length`` or
  chunked) into byte-block iterators and fed *directly* into the
  streaming readers, so an upload is parsed as it arrives and is never
  materialised — the service inherits the readers' O(buffer + chunk)
  resident-pin bound.
* :mod:`~repro.service.handlers` — :class:`ServiceHandlers`, the route
  logic: uploads land in a **digest-keyed persistent chunk store**
  (:mod:`repro.streaming.chunkstore`), every partition run replays the
  memory-mapped store, and ``store=<digest>`` re-partitions skip text
  parsing entirely (observable via the ``text_ingests`` /
  ``store_replays`` counters).
* :mod:`~repro.service.jobs` — :class:`JobStore`: async partition jobs
  polled by id, executed by :class:`ProcessJobPool` (one forked child
  per job — N concurrent jobs use N cores, a dead worker marks its job
  ``failed`` instead of hanging the poller) or :class:`ThreadJobPool`
  (inline, the fallback where ``fork`` is unavailable); ``sync=1`` runs
  on the request thread through the same pool.
* :mod:`~repro.service.admission` — API-key auth (``REPRO_API_KEYS`` /
  ``--api-key-file``) and per-key token-bucket rate limiting; with the
  queue-depth backpressure in :class:`JobStore` these are the 401 / 403
  / 429 admission layer.
* :mod:`~repro.service.storecache` — byte-budgeted LRU eviction for the
  store directory, pin-protected against in-flight replays, with a
  ``409 store_evicted`` re-upload path.
* :mod:`~repro.service.metrics` — the Prometheus-text registry behind
  ``GET /v1/metrics`` (queue depth, per-route latency histograms,
  evictions, rejections, kernel runs).
* :mod:`~repro.service.openapi` — the handwritten OpenAPI contract
  served at ``/v1/openapi.json`` and diffed against ``docs/service.md``
  by the test suite.
* :mod:`~repro.service.errors` — the error taxonomy and JSON envelope.

Routes: ``POST /v1/partitions``, ``GET /v1/partitions/<id>``,
``GET /v1/partitions/<id>/assignment``, ``POST /v1/stores``,
``GET /v1/healthz``, ``GET /v1/metrics``, ``GET /v1/openapi.json`` —
full reference in ``docs/service.md``; quickstart in
``examples/service_quickstart.py``; CLI entry ``hyperpraw-repro serve``.
"""

from repro.service.admission import AdmissionControl, TokenBucket
from repro.service.app import PartitionService, make_server, serve
from repro.service.errors import (
    BadRequest,
    Conflict,
    Forbidden,
    InvalidUpload,
    LengthRequired,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceError,
    StoreEvicted,
    TooManyRequests,
    Unauthorized,
    error_body,
)
from repro.service.handlers import (
    PARTITIONERS,
    ServiceConfig,
    ServiceHandlers,
    UPLOAD_FORMATS,
    json_safe,
)
from repro.service.jobs import (
    JOB_POOLS,
    JOB_STATUSES,
    Job,
    JobStore,
    ProcessJobPool,
    ThreadJobPool,
)
from repro.service.metrics import MetricsRegistry
from repro.service.openapi import openapi_spec
from repro.service.storecache import StoreCache

__all__ = [
    "PartitionService",
    "make_server",
    "serve",
    "ServiceConfig",
    "ServiceHandlers",
    "PARTITIONERS",
    "UPLOAD_FORMATS",
    "json_safe",
    "Job",
    "JobStore",
    "ThreadJobPool",
    "ProcessJobPool",
    "JOB_STATUSES",
    "JOB_POOLS",
    "AdmissionControl",
    "TokenBucket",
    "StoreCache",
    "MetricsRegistry",
    "openapi_spec",
    "ServiceError",
    "BadRequest",
    "InvalidUpload",
    "NotFound",
    "MethodNotAllowed",
    "LengthRequired",
    "PayloadTooLarge",
    "Conflict",
    "StoreEvicted",
    "Unauthorized",
    "Forbidden",
    "TooManyRequests",
    "error_body",
]
