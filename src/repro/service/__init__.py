"""Streaming partition service: the library as HTTP traffic.

HyperPRAW's premise is that partitioning is a *preprocessing service*
for parallel applications — a hypergraph comes in, an architecture-aware
assignment comes out.  This package is that deployment shape (ROADMAP
item (b); the standalone-component framing of HYPE, arXiv:1810.11319,
and the limited-memory streaming of arXiv:2103.05394), built entirely on
the stdlib (``http.server`` + threads) so the repo's no-new-dependencies
rule holds:

* :mod:`~repro.service.app` — :class:`PartitionService`, the threading
  HTTP server; request bodies are framed (``Content-Length`` or
  chunked) into byte-block iterators and fed *directly* into the
  streaming readers, so an upload is parsed as it arrives and is never
  materialised — the service inherits the readers' O(buffer + chunk)
  resident-pin bound.
* :mod:`~repro.service.handlers` — :class:`ServiceHandlers`, the route
  logic: uploads land in a **digest-keyed persistent chunk store**
  (:mod:`repro.streaming.chunkstore`), every partition run replays the
  memory-mapped store, and ``store=<digest>`` re-partitions skip text
  parsing entirely (observable via the ``text_ingests`` /
  ``store_replays`` counters).
* :mod:`~repro.service.jobs` — :class:`JobStore`: async partition jobs
  on a fixed worker-thread pool, polled by id; ``sync=1`` runs inline.
* :mod:`~repro.service.openapi` — the handwritten OpenAPI contract
  served at ``/v1/openapi.json`` and diffed against ``docs/service.md``
  by the test suite.
* :mod:`~repro.service.errors` — the error taxonomy and JSON envelope.

Routes: ``POST /v1/partitions``, ``GET /v1/partitions/<id>``,
``GET /v1/partitions/<id>/assignment``, ``POST /v1/stores``,
``GET /v1/healthz``, ``GET /v1/openapi.json`` — full reference in
``docs/service.md``; quickstart in ``examples/service_quickstart.py``;
CLI entry ``hyperpraw-repro serve``.
"""

from repro.service.app import PartitionService, make_server, serve
from repro.service.errors import (
    BadRequest,
    Conflict,
    InvalidUpload,
    LengthRequired,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceError,
    error_body,
)
from repro.service.handlers import (
    PARTITIONERS,
    ServiceConfig,
    ServiceHandlers,
    UPLOAD_FORMATS,
    json_safe,
)
from repro.service.jobs import JOB_STATUSES, Job, JobStore
from repro.service.openapi import openapi_spec

__all__ = [
    "PartitionService",
    "make_server",
    "serve",
    "ServiceConfig",
    "ServiceHandlers",
    "PARTITIONERS",
    "UPLOAD_FORMATS",
    "json_safe",
    "Job",
    "JobStore",
    "JOB_STATUSES",
    "openapi_spec",
    "ServiceError",
    "BadRequest",
    "InvalidUpload",
    "NotFound",
    "MethodNotAllowed",
    "LengthRequired",
    "PayloadTooLarge",
    "Conflict",
    "error_body",
]
