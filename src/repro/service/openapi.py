"""The service's API contract: a handwritten OpenAPI 3.0 document.

This dict is the **single source of truth** for the HTTP surface:
``GET /v1/openapi.json`` serves it verbatim, ``docs/service.md`` is
diffed against it by ``tests/test_docs.py`` (every route, method,
status code and schema field in the doc must match the spec, and vice
versa), and the service tests assert the routes it declares are the
routes the app dispatches.

It is deliberately *handwritten* — no framework introspection — so the
contract changes only when a human edits this file, and a drifted
implementation fails tests instead of silently republishing itself.
"""

from __future__ import annotations

import copy

from repro.partitioning.families import family_names

__all__ = ["openapi_spec", "OPENAPI_VERSION", "SERVICE_VERSION"]

OPENAPI_VERSION = "3.0.3"

#: The service's own version: reported in the spec's ``info.version``
#: and by ``GET /v1/healthz``.  Single-sourced here; a test pins it to
#: the ``version=`` in setup.py so a one-sided bump fails CI.
SERVICE_VERSION = "0.8.0"

_ERROR_SCHEMA = {
    "type": "object",
    "description": "Error envelope returned by every non-2xx response.",
    "properties": {
        "error": {
            "type": "object",
            "properties": {
                "code": {
                    "type": "string",
                    "description": "stable machine-readable error code",
                },
                "message": {
                    "type": "string",
                    "description": "human-readable diagnostic (parser "
                    "messages pass through verbatim)",
                },
            },
            "required": ["code", "message"],
        }
    },
    "required": ["error"],
}

_STORE_INFO_SCHEMA = {
    "type": "object",
    "description": "A persisted, digest-keyed binary chunk store.",
    "properties": {
        "digest": {
            "type": "string",
            "description": "sha256:<hex> over the uploaded source bytes; "
            "the reuse key for store=<digest> re-partitions",
        },
        "created": {
            "type": "boolean",
            "description": "true when this request wrote a new store, "
            "false when the digest was already present",
        },
        "name": {"type": "string", "description": "stream/instance name"},
        "num_vertices": {"type": "integer"},
        "num_edges": {"type": "integer"},
        "num_pins": {"type": "integer"},
        "num_chunks": {"type": "integer"},
        "chunk_size": {"type": "integer"},
        "pin_budget": {"type": "integer", "nullable": True},
        "upload_bytes": {
            "type": "integer",
            "description": "raw bytes received (absent on store= reuse)",
        },
        "peak_resident_pins": {
            "type": "integer",
            "description": "ingest high-water mark of pins resident in "
            "memory — the out-of-core bound the service guarantees",
        },
    },
    "required": ["digest", "num_vertices", "num_edges", "num_pins"],
}

_JOB_SCHEMA = {
    "type": "object",
    "description": "A partition job's lifecycle record.",
    "properties": {
        "id": {"type": "string", "description": "opaque job identifier"},
        "status": {
            "type": "string",
            "enum": ["queued", "running", "done", "failed"],
        },
        "request": {
            "type": "object",
            "description": "validated request echo: k, partitioner, "
            "scorer, kernel, workers, buffer_fraction, buffer_size, "
            "max_tracked_edges, max_iterations, seed, cost, and the "
            "source StoreInfo",
        },
        "digest": {
            "type": "string",
            "description": "chunk-store key of the job's input",
        },
        "created_at": {"type": "number"},
        "started_at": {"type": "number", "nullable": True},
        "finished_at": {"type": "number", "nullable": True},
        "error": {
            "type": "object",
            "nullable": True,
            "description": "{code, message} when status is failed",
        },
        "metrics": {
            "type": "object",
            "nullable": True,
            "description": "JSON-safe partitioner metadata when done: "
            "algorithm, wall_time_s, imbalance, monitored_pc_cost, "
            "peak_tracked_edges, peak_resident_pins, num_vertices, "
            "num_edges, num_pins, ...",
        },
        "links": {
            "type": "object",
            "description": "self + assignment URLs",
            "properties": {
                "self": {"type": "string"},
                "assignment": {"type": "string"},
            },
        },
    },
    "required": ["id", "status", "request", "links"],
}

_HEALTH_SCHEMA = {
    "type": "object",
    "description": "Service liveness and observable counters.",
    "properties": {
        "status": {"type": "string", "enum": ["ok"]},
        "version": {"type": "string"},
        "uptime_s": {"type": "number"},
        "workers": {"type": "integer"},
        "pool": {
            "type": "string",
            "enum": ["process", "thread"],
            "description": "how partition jobs execute: one forked child "
            "per job (process) or inline on the worker thread (thread)",
        },
        "queue_depth": {
            "type": "integer",
            "description": "jobs accepted but not yet running — the "
            "backpressure signal behind 429 queue_full",
        },
        "auth": {
            "type": "boolean",
            "description": "true when API keys are configured (requests "
            "to non-public routes need X-API-Key)",
        },
        "jobs": {
            "type": "object",
            "description": "job count per status (queued/running/done/failed)",
        },
        "stores": {
            "type": "integer",
            "description": "chunk stores currently in the cache",
        },
        "store_bytes": {
            "type": "integer",
            "description": "bytes of chunk stores on disk, the quantity "
            "the LRU byte budget bounds",
        },
        "stats": {
            "type": "object",
            "description": "uploads, text_ingests, store_replays counters "
            "— store_replays without text_ingests is the digest-reuse "
            "hit path — plus pass-kernel observability: pass_seconds "
            "(cumulative seconds inside pass_kernel across finished "
            "runs) and kernel_python_runs / kernel_njit_runs — plus "
            "operational counters: rejected_requests (admission "
            "refusals), evictions (stores reclaimed by the byte budget) "
            "and jobs_crashed (pool workers that died mid-job)",
        },
    },
    "required": ["status", "jobs", "stats"],
}


def _q(name, schema, description, required=False):
    param = {
        "name": name,
        "in": "query",
        "schema": schema,
        "description": description,
    }
    if required:
        param["required"] = True
    return param


_UPLOAD_PARAMETERS = [
    _q(
        "format",
        {"type": "string", "enum": ["hmetis", "mtx"], "default": "hmetis"},
        "upload format: hMetis (.hgr) or MatrixMarket coordinate (.mtx)",
    ),
    _q(
        "model",
        {"type": "string", "enum": ["row-net", "column-net"], "default": "row-net"},
        "hypergraph model for format=mtx (rejected otherwise)",
    ),
    _q(
        "chunk_size",
        {"type": "integer", "default": 1024, "minimum": 1},
        "vertices per streamed chunk (the ingest/replay granularity)",
    ),
    _q(
        "buffer_pins",
        {"type": "integer", "default": 65536, "minimum": 1},
        "ingest spill-buffer capacity in pins — the resident-memory knob",
    ),
    _q(
        "pin_budget",
        {"type": "integer", "minimum": 1},
        "cut chunk boundaries by resident pins instead of a fixed "
        "vertex count (hub-dominated graphs)",
    ),
    _q("name", {"type": "string"}, "stream name recorded in the store"),
]

_PARTITION_PARAMETERS = [
    _q(
        "k",
        {"type": "integer", "minimum": 1},
        "number of partitions",
        required=True,
    ),
    _q(
        "partitioner",
        {
            "type": "string",
            "enum": list(family_names()),
            "default": "onepass",
        },
        "registered streaming partitioner (the "
        "repro.partitioning.families registry: onepass, buffered, "
        "sharded, hype, minmax)",
    ),
    _q(
        "scorer",
        {"type": "string", "enum": ["eq1", "fennel"], "default": "eq1"},
        "value function (fennel is onepass-only)",
    ),
    _q(
        "gamma",
        {"type": "number", "default": 1.5},
        "FENNEL load-penalty exponent (scorer=fennel)",
    ),
    _q(
        "kernel",
        {
            "type": "string",
            "enum": ["auto", "python", "njit"],
            "default": "auto",
        },
        "pass-kernel implementation; njit needs numba and a supported "
        "state/scorer combo, otherwise the run falls back to python "
        "(the resolved mode is reported as metrics.kernel_mode)",
    ),
    _q(
        "workers",
        {"type": "integer", "minimum": 1},
        "parallel sharded streaming workers (default 1; sharded "
        "defaults to 2 and requires >= 2)",
    ),
    _q(
        "shard_payload",
        {"type": "string", "enum": ["boundary", "full"], "default": "boundary"},
        "what sharded workers ship at the merge",
    ),
    _q(
        "shard_by",
        {"type": "string", "enum": ["pins", "chunks"], "default": "pins"},
        "how sharded worker ranges are balanced",
    ),
    _q(
        "buffer_fraction",
        {"type": "number", "default": 0.25},
        "BufferedRestreamer window as a fraction of |V| (buffered/sharded)",
    ),
    _q(
        "buffer_size",
        {"type": "integer", "minimum": 1},
        "explicit BufferedRestreamer window in vertices (overrides "
        "buffer_fraction)",
    ),
    _q(
        "max_tracked_edges",
        {"type": "integer", "minimum": 1},
        "presence-table cap (absent = unbounded / exact)",
    ),
    _q(
        "max_iterations",
        {"type": "integer", "default": 20, "minimum": 1},
        "restreaming pass cap per window",
    ),
    _q(
        "refine",
        {"type": "string", "enum": ["1", "0"], "default": "0"},
        "polish the result with FM-style boundary refinement "
        "(attachable to any partitioner; reported as refine_* metrics)",
    ),
    _q(
        "refine_passes",
        {"type": "integer", "default": 4, "minimum": 1},
        "maximum refinement propose/apply rounds (refine=1)",
    ),
    _q("seed", {"type": "integer", "default": 20190805}, "deterministic seed"),
    _q(
        "cost",
        {"type": "string", "enum": ["uniform", "archer"], "default": "uniform"},
        "communication cost matrix: uniform or an ARCHER-like profiled "
        "machine (architecture-aware)",
    ),
    _q(
        "sync",
        {"type": "string", "enum": ["1", "0"], "default": "0"},
        "run on the request thread and return the finished job (small "
        "graphs); otherwise the job is queued",
    ),
    _q(
        "store",
        {"type": "string"},
        "partition a previous upload by digest instead of sending a "
        "body — replays the mmap chunk store, no text parse",
    ),
] + _UPLOAD_PARAMETERS

_UPLOAD_BODY = {
    "description": "The hypergraph text bytes (hMetis or MatrixMarket "
    "coordinate), raw in the request body; Content-Length or chunked "
    "transfer encoding required.  The service parses the body as it "
    "arrives — the file is never materialised.",
    "required": False,
    "content": {
        "text/plain": {"schema": {"type": "string", "format": "binary"}},
        "application/octet-stream": {
            "schema": {"type": "string", "format": "binary"}
        },
    },
}


def _error_response(description):
    return {
        "description": description,
        "content": {
            "application/json": {
                "schema": {"$ref": "#/components/schemas/Error"}
            }
        },
    }


def _json_response(description, ref):
    return {
        "description": description,
        "content": {
            "application/json": {"schema": {"$ref": ref}}
        },
    }


def _auth_responses():
    """The admission-control responses shared by every protected route.

    Only reported when the service is configured with API keys; an open
    service never returns them.
    """
    return {
        "401": _error_response(
            "no API key presented (code unauthorized); send X-API-Key "
            "or Authorization: Bearer"
        ),
        "403": _error_response("unknown API key (code forbidden)"),
        "429": _error_response(
            "over the per-key rate limit (code rate_limited); the "
            "Retry-After header says when to retry"
        ),
    }


_SPEC = {
    "openapi": OPENAPI_VERSION,
    "info": {
        "title": "HyperPRAW streaming partition service",
        "version": SERVICE_VERSION,
        "description": (
            "Upload a hypergraph (hMetis or MatrixMarket), stream it "
            "through the out-of-core readers into an architecture-aware "
            "streaming partitioner, and poll for the assignment.  "
            "Uploads land in a digest-keyed persistent chunk store, so "
            "re-partitioning the same bytes with different parameters "
            "replays memory-mapped chunks instead of re-parsing text."
        ),
    },
    "paths": {
        "/v1/partitions": {
            "post": {
                "operationId": "createPartition",
                "summary": "Upload a hypergraph (or reference a stored "
                "digest) and start a partition job",
                "parameters": copy.deepcopy(_PARTITION_PARAMETERS),
                "requestBody": copy.deepcopy(_UPLOAD_BODY),
                "responses": {
                    "200": _json_response(
                        "sync=1: the finished job record (status done "
                        "or failed)",
                        "#/components/schemas/Job",
                    ),
                    "202": _json_response(
                        "job accepted and queued; poll links.self",
                        "#/components/schemas/Job",
                    ),
                    "400": _error_response(
                        "bad parameter or malformed upload "
                        "(codes bad_request / invalid_upload)"
                    ),
                    "404": _error_response("store= digest has no chunk store"),
                    "409": _error_response(
                        "store= digest was evicted by the byte budget "
                        "(code store_evicted); re-upload the same bytes "
                        "to restore it"
                    ),
                    "411": _error_response(
                        "body without Content-Length or chunked framing"
                    ),
                    "413": _error_response(
                        "body exceeds the configured max_body_bytes cap"
                    ),
                    **_auth_responses(),
                    "429": _error_response(
                        "over the per-key rate limit (code rate_limited) "
                        "or the job queue is at max_queue_depth (code "
                        "queue_full); the Retry-After header says when "
                        "to retry"
                    ),
                },
            }
        },
        "/v1/partitions/{job_id}": {
            "get": {
                "operationId": "getPartition",
                "summary": "Poll a partition job's status and metrics",
                "parameters": [
                    {
                        "name": "job_id",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                        "description": "id returned by POST /v1/partitions",
                    }
                ],
                "responses": {
                    "200": _json_response(
                        "the job record", "#/components/schemas/Job"
                    ),
                    "404": _error_response("unknown job id"),
                    **_auth_responses(),
                },
            }
        },
        "/v1/partitions/{job_id}/assignment": {
            "get": {
                "operationId": "getAssignment",
                "summary": "Stream the finished assignment, one partition "
                "id per line (line v = vertex v)",
                "parameters": [
                    {
                        "name": "job_id",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                        "description": "id of a job with status done",
                    }
                ],
                "responses": {
                    "200": {
                        "description": "the assignment vector as "
                        "newline-separated integers, streamed",
                        "content": {
                            "text/plain": {"schema": {"type": "string"}}
                        },
                    },
                    "404": _error_response("unknown job id"),
                    "409": _error_response(
                        "job exists but is not done (queued, running or "
                        "failed)"
                    ),
                    **_auth_responses(),
                },
            }
        },
        "/v1/stores": {
            "post": {
                "operationId": "createStore",
                "summary": "Upload a hypergraph into the digest-keyed "
                "chunk store without partitioning it",
                "parameters": copy.deepcopy(_UPLOAD_PARAMETERS),
                "requestBody": copy.deepcopy(_UPLOAD_BODY),
                "responses": {
                    "201": _json_response(
                        "a new chunk store was written",
                        "#/components/schemas/StoreInfo",
                    ),
                    "200": _json_response(
                        "identical bytes were already stored (created: "
                        "false)",
                        "#/components/schemas/StoreInfo",
                    ),
                    "400": _error_response(
                        "bad parameter or malformed upload"
                    ),
                    "411": _error_response(
                        "body without Content-Length or chunked framing"
                    ),
                    "413": _error_response(
                        "body exceeds the configured max_body_bytes cap"
                    ),
                    **_auth_responses(),
                },
            }
        },
        "/v1/healthz": {
            "get": {
                "operationId": "healthz",
                "summary": "Liveness, job counts and ingest/replay counters",
                "responses": {
                    "200": _json_response(
                        "service is up", "#/components/schemas/Health"
                    )
                },
            }
        },
        "/v1/metrics": {
            "get": {
                "operationId": "metrics",
                "summary": "Operational metrics in Prometheus text format",
                "responses": {
                    "200": {
                        "description": "the metrics exposition: healthz "
                        "counters plus queue depth, store bytes, "
                        "evictions, admission rejections and per-route "
                        "request latency histograms "
                        "(repro_request_seconds)",
                        "content": {
                            "text/plain": {"schema": {"type": "string"}}
                        },
                    }
                },
            }
        },
        "/v1/openapi.json": {
            "get": {
                "operationId": "openapi",
                "summary": "This document",
                "responses": {
                    "200": {
                        "description": "the OpenAPI contract",
                        "content": {
                            "application/json": {"schema": {"type": "object"}}
                        },
                    }
                },
            }
        },
    },
    "components": {
        "schemas": {
            "Error": _ERROR_SCHEMA,
            "StoreInfo": _STORE_INFO_SCHEMA,
            "Job": _JOB_SCHEMA,
            "Health": _HEALTH_SCHEMA,
        }
    },
}


def openapi_spec() -> dict:
    """A deep copy of the service's OpenAPI document.

    Returns
    -------
    dict
        the full OpenAPI 3.0 spec; a fresh copy each call, so callers
        (including the route handler serialising it) can never mutate
        the contract.  The ``partitioner`` enum is re-read from the
        live :data:`repro.partitioning.families.PARTITIONERS` registry
        on every call, so a family registered at runtime shows up in
        the served contract immediately.
    """
    spec = copy.deepcopy(_SPEC)
    for param in spec["paths"]["/v1/partitions"]["post"]["parameters"]:
        if param["name"] == "partitioner":
            param["schema"]["enum"] = list(family_names())
    return spec
