"""Service error taxonomy and the wire shape of error responses.

Every failure the HTTP layer reports is a :class:`ServiceError` carrying
an HTTP status and a stable machine-readable ``code``; the handler layer
raises them and :mod:`repro.service.app` turns them into the JSON error
envelope documented in ``docs/service.md``::

    {"error": {"code": "invalid_upload", "message": "<upload>:3: ..."}}

Malformed hypergraph uploads surface the *parser's* message verbatim —
the streaming readers validate socket-fed bytes exactly as strictly as
files, so the client sees the same line-accurate diagnostics the CLI
prints.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BadRequest",
    "InvalidUpload",
    "NotFound",
    "MethodNotAllowed",
    "LengthRequired",
    "PayloadTooLarge",
    "Conflict",
    "StoreEvicted",
    "Unauthorized",
    "Forbidden",
    "TooManyRequests",
    "error_body",
]


class ServiceError(Exception):
    """Base class for every error the service reports over HTTP.

    Parameters
    ----------
    message:
        human-readable description, returned verbatim in the body.
    status:
        HTTP status code override (subclasses carry sensible defaults).
    code:
        machine-readable error code override (stable across releases;
        clients should branch on it, not on the message).
    """

    status: int = 500
    code: str = "internal"

    def __init__(
        self,
        message: str,
        *,
        status: "int | None" = None,
        code: "str | None" = None,
    ) -> None:
        super().__init__(message)
        if status is not None:
            self.status = int(status)
        if code is not None:
            self.code = code

    @property
    def message(self) -> str:
        return str(self)


class BadRequest(ServiceError):
    """A request parameter is missing, ill-typed or out of range (400)."""

    status = 400
    code = "bad_request"


class InvalidUpload(BadRequest):
    """The uploaded hypergraph failed format validation (400).

    The message is the streaming parser's own diagnostic — same text a
    malformed file produces locally.
    """

    code = "invalid_upload"


class NotFound(ServiceError):
    """No such route, job or store (404)."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ServiceError):
    """The route exists but not for this HTTP method (405)."""

    status = 405
    code = "method_not_allowed"


class LengthRequired(ServiceError):
    """An upload arrived with neither Content-Length nor chunked framing (411)."""

    status = 411
    code = "length_required"


class PayloadTooLarge(ServiceError):
    """The upload exceeds the configured ``max_body_bytes`` cap (413)."""

    status = 413
    code = "payload_too_large"


class Conflict(ServiceError):
    """The resource exists but is not in a state the request needs (409).

    E.g. requesting the assignment body of a job that has not finished.
    """

    status = 409
    code = "conflict"


class StoreEvicted(Conflict):
    """The store existed but was evicted by the byte budget (409).

    Distinguishes "re-upload and retry" from a plain 404 (never seen):
    the digest *was* ingested, the LRU eviction reclaimed its bytes, and
    a fresh upload of the same bytes restores it under the same digest.
    """

    code = "store_evicted"


class Unauthorized(ServiceError):
    """No API key on a request to a protected route (401).

    Only raised when the service is configured with keys; an open
    service never returns 401.
    """

    status = 401
    code = "unauthorized"


class Forbidden(ServiceError):
    """The presented API key is not one the service knows (403)."""

    status = 403
    code = "forbidden"


class TooManyRequests(ServiceError):
    """The caller must slow down (429).

    Raised both by per-key token-bucket rate limiting
    (``code="rate_limited"``) and by job-queue backpressure
    (``code="queue_full"``).  ``retry_after`` is the whole-second hint
    the transport layer echoes as a ``Retry-After`` header.
    """

    status = 429
    code = "rate_limited"

    def __init__(
        self,
        message: str,
        *,
        retry_after: int = 1,
        status: "int | None" = None,
        code: "str | None" = None,
    ) -> None:
        super().__init__(message, status=status, code=code)
        self.retry_after = max(1, int(retry_after))


def error_body(exc: ServiceError) -> dict:
    """The JSON error envelope for ``exc`` (spec: ``Error`` schema)."""
    return {"error": {"code": exc.code, "message": exc.message}}
