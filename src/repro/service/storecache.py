"""Byte-budgeted LRU eviction for the digest-keyed chunk-store directory.

PR 5's store directory grew forever: every distinct upload left a
``<sha256-hex>.chunkstore`` directory behind.  :class:`StoreCache` puts
it under a byte budget with classic LRU semantics, made safe against the
service's concurrency:

* **Pinning.**  A partition job replays its store from a forked worker;
  evicting the directory mid-replay would tear mmap'd pages out from
  under it.  The request path pins the digest *before* the job is
  scheduled and unpins it from the job's ``on_complete`` (which runs in
  the parent) — pinned stores are never evicted, however cold.
* **Atomic removal.**  Eviction renames the store directory to a
  ``.evict-<uuid>`` tombstone first and removes the tree afterwards, so
  any concurrent ``open_store`` sees either a complete store or a clean
  ``ENOENT`` — never a half-deleted manifest.
* **Re-upload path.**  Evicted digests are remembered; a later
  ``POST /v1/partitions?store=<digest>`` gets ``409 store_evicted``
  (re-upload the bytes — same digest, store restored) instead of the
  404 a never-seen digest gets.

With no budget configured (the default) the cache only does accounting:
``store_bytes`` in ``/v1/healthz`` is the directory's live size.
"""

from __future__ import annotations

import shutil
import threading
import uuid
from collections import OrderedDict
from pathlib import Path

__all__ = ["StoreCache", "dir_bytes"]


def dir_bytes(path: Path) -> int:
    """Total file bytes under ``path`` (0 if it vanished meanwhile)."""
    total = 0
    try:
        for child in Path(path).rglob("*"):
            try:
                if child.is_file():
                    total += child.stat().st_size
            except OSError:
                continue
    except OSError:
        return 0
    return total


class StoreCache:
    """LRU byte accounting and eviction for one ``stores/`` directory.

    Parameters
    ----------
    stores_dir:
        directory holding ``<hex>.chunkstore`` stores (created on
        demand).  Pre-existing stores are adopted on startup, oldest
        modification time first, and stale ``.ingest-*`` / ``.evict-*``
        temporaries are swept.
    budget_bytes:
        total byte budget across all stores; ``None`` disables eviction
        (accounting only).  A single store larger than the budget is
        admitted — the budget bounds the *cache*, it does not reject
        uploads — and simply evicts everything else.
    """

    def __init__(self, stores_dir, *, budget_bytes: "int | None" = None) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0 or None, got {budget_bytes}"
            )
        self.stores_dir = Path(stores_dir)
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._sizes: "OrderedDict[str, int]" = OrderedDict()  # LRU: old → new
        self._pins: "dict[str, int]" = {}
        self._evicted: "set[str]" = set()
        self.evictions = 0
        self._adopt_existing()

    # -- digest bookkeeping -------------------------------------------
    @staticmethod
    def _stem(digest: str) -> str:
        """``sha256:<hex>`` → ``<hex>`` (the on-disk directory stem)."""
        return digest.split(":", 1)[-1]

    def path_for(self, digest: str) -> Path:
        """The on-disk store directory for ``digest``."""
        return self.stores_dir / f"{self._stem(digest)}.chunkstore"

    def _adopt_existing(self) -> None:
        if not self.stores_dir.is_dir():
            return
        entries = []
        for child in self.stores_dir.iterdir():
            name = child.name
            if name.startswith((".ingest-", ".evict-")):
                shutil.rmtree(child, ignore_errors=True)
                continue
            if child.is_dir() and name.endswith(".chunkstore"):
                try:
                    mtime = child.stat().st_mtime
                except OSError:
                    continue
                entries.append((mtime, name[: -len(".chunkstore")], child))
        for _, stem, child in sorted(entries):
            self._sizes[stem] = dir_bytes(child)
        self._evict_excess()

    # -- the request-path API -----------------------------------------
    def pin(self, digest: str) -> None:
        """Protect ``digest`` from eviction until :meth:`unpin`."""
        stem = self._stem(digest)
        with self._lock:
            self._pins[stem] = self._pins.get(stem, 0) + 1

    def unpin(self, digest: str) -> None:
        stem = self._stem(digest)
        with self._lock:
            count = self._pins.get(stem, 0) - 1
            if count > 0:
                self._pins[stem] = count
            else:
                self._pins.pop(stem, None)
            doomed = self._evict_excess()
        self._reap(doomed)

    def touch(self, digest: str) -> None:
        """Record a use of ``digest`` (moves it to the LRU's fresh end)."""
        stem = self._stem(digest)
        with self._lock:
            if stem in self._sizes:
                self._sizes.move_to_end(stem)

    def added(self, digest: str) -> None:
        """Account a just-published store and enforce the budget."""
        stem = self._stem(digest)
        size = dir_bytes(self.path_for(digest))
        with self._lock:
            self._sizes[stem] = size
            self._sizes.move_to_end(stem)
            self._evicted.discard(stem)
            doomed = self._evict_excess()
        self._reap(doomed)

    def was_evicted(self, digest: str) -> bool:
        """True when ``digest`` was ingested once and later evicted."""
        with self._lock:
            return self._stem(digest) in self._evicted

    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    def known(self) -> int:
        """Stores currently on disk (healthz's ``stores`` count)."""
        with self._lock:
            return len(self._sizes)

    # -- eviction ------------------------------------------------------
    def _evict_excess(self) -> "list[Path]":
        """Under ``self._lock``: tombstone-rename LRU victims until the
        budget holds; returns the tombstones for out-of-lock removal."""
        if self.budget_bytes is None:
            return []
        doomed: "list[Path]" = []
        total = sum(self._sizes.values())
        stems = list(self._sizes)  # oldest → freshest
        for stem in stems[:-1]:  # the freshest store is always admitted
            if total <= self.budget_bytes:
                break
            if self._pins.get(stem, 0) > 0:
                continue
            size = self._sizes.pop(stem)
            total -= size
            self._evicted.add(stem)
            self.evictions += 1
            src = self.stores_dir / f"{stem}.chunkstore"
            tomb = self.stores_dir / f".evict-{uuid.uuid4().hex}"
            try:
                src.rename(tomb)
            except OSError:
                continue  # already gone — accounting was stale
            doomed.append(tomb)
        return doomed

    @staticmethod
    def _reap(doomed: "list[Path]") -> None:
        for tomb in doomed:
            shutil.rmtree(tomb, ignore_errors=True)
