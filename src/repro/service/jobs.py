"""Asynchronous partition jobs: records, store, and the worker pool.

``POST /v1/partitions`` returns before the partitioner runs; the work
lands here.  :class:`Job` is the persistent record a client polls
(``GET /v1/partitions/<id>``); :class:`JobStore` owns the records plus a
fixed pool of daemon worker threads draining a FIFO queue.  Partitioning
releases the GIL for long NumPy stretches and the sharded partitioners
fork their own processes, so a small thread pool overlaps real work.

Lifecycle::

    queued ──► running ──► done
                   └─────► failed

Jobs are kept in memory for the lifetime of the service (the hypergraph
bytes themselves live in the on-disk chunk store, keyed by digest — see
:mod:`repro.service.handlers`); ``sync`` requests execute the same job
function inline on the request thread and return the finished record.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Job", "JobStore", "JOB_STATUSES"]

#: Every state a job can report, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One partition request's full lifecycle record.

    Attributes
    ----------
    id:
        opaque hex identifier, unique per service instance.
    status:
        one of :data:`JOB_STATUSES`.
    request:
        the validated request parameters, echoed back to the client.
    digest:
        ``"sha256:..."`` of the uploaded source bytes — the key under
        which the ingest landed in the chunk store, reusable via
        ``POST /v1/partitions?store=<digest>``.
    created_at / started_at / finished_at:
        UNIX timestamps; ``None`` until the phase is reached.
    error:
        ``{"code", "message"}`` when ``status == "failed"``.
    metrics:
        JSON-safe run metrics (partitioner metadata, timings, peak
        resident pins) when ``status == "done"``.
    assignment:
        the partition vector (``int`` array, length ``num_vertices``);
        streamed to clients line by line, never inlined in job JSON.
    num_parts:
        the ``k`` the assignment maps into.
    """

    id: str
    request: dict
    digest: "str | None" = None
    status: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: "float | None" = None
    finished_at: "float | None" = None
    error: "dict | None" = None
    metrics: "dict | None" = None
    assignment: "np.ndarray | None" = None
    num_parts: "int | None" = None

    def to_json(self) -> dict:
        """The client-facing job document (spec: ``Job`` schema)."""
        doc = {
            "id": self.id,
            "status": self.status,
            "request": self.request,
            "digest": self.digest,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "metrics": self.metrics,
            "links": {
                "self": f"/v1/partitions/{self.id}",
                "assignment": f"/v1/partitions/{self.id}/assignment",
            },
        }
        return doc


class JobStore:
    """Thread-safe job registry plus a fixed worker pool.

    Parameters
    ----------
    workers:
        worker thread count (>= 1).  Each worker pops one queued job at
        a time and runs its job function to completion; queue order is
        FIFO, so the pool bounds concurrent partition runs at
        ``workers``.

    Notes
    -----
    A job function takes no arguments and returns
    ``(assignment, num_parts, metrics)``; any exception it raises marks
    the job ``failed`` with the exception text (the service never dies
    with a worker).
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._jobs: "dict[str, Job]" = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"partition-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def create(self, request: dict, *, digest: "str | None" = None) -> Job:
        """Register a new ``queued`` job (not yet scheduled)."""
        job = Job(id=uuid.uuid4().hex[:16], request=request, digest=digest)
        with self._lock:
            self._jobs[job.id] = job
        return job

    def submit(self, job: Job, fn) -> Job:
        """Queue ``fn`` to run ``job`` on the worker pool (async path)."""
        self._queue.put((job, fn))
        return job

    def run(self, job: Job, fn) -> Job:
        """Run ``fn`` inline on the calling thread (the ``sync=1`` path)."""
        self._execute(job, fn)
        return job

    def get(self, job_id: str) -> "Job | None":
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict:
        """``{status: n}`` over every job the service has seen."""
        with self._lock:
            out = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                out[job.status] += 1
        return out

    def close(self) -> None:
        """Stop the workers after the queue drains (idempotent)."""
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=30)
        self._threads = []

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, fn = item
            self._execute(job, fn)

    def _execute(self, job: Job, fn) -> None:
        job.status = "running"
        job.started_at = time.time()
        try:
            assignment, num_parts, metrics = fn()
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            job.error = {"code": type(exc).__name__, "message": str(exc)}
            job.status = "failed"
        else:
            job.assignment = np.asarray(assignment)
            job.num_parts = int(num_parts)
            job.metrics = metrics
            job.status = "done"
        finally:
            job.finished_at = time.time()
