"""Asynchronous partition jobs: records, execution pools, and the store.

``POST /v1/partitions`` returns before the partitioner runs; the work
lands here.  :class:`Job` is the persistent record a client polls
(``GET /v1/partitions/<id>``); :class:`JobStore` owns the records plus a
fixed pool of worker threads draining a FIFO queue.  What a worker does
with a popped job is delegated to an **execution pool**:

* :class:`ProcessJobPool` (the default wherever ``fork`` exists) runs
  each job in its own forked child via
  :class:`repro.engine.parallel.ForkedCall` — N concurrent partition
  jobs really use N cores instead of time-slicing one GIL, and a worker
  that *dies* mid-job (OOM-kill, SIGKILL) marks the job ``failed`` with
  the stable error code ``worker_crashed`` instead of hanging a poller.
* :class:`ThreadJobPool` runs the job function inline on the worker
  thread — the tested fallback where fork is unavailable, bit-identical
  in results (partition runs are seeded and deterministic).

Lifecycle::

    queued ──► running ──► done
                   └─────► failed

Jobs are kept in memory for the lifetime of the service (the hypergraph
bytes themselves live in the on-disk chunk store, keyed by digest — see
:mod:`repro.service.handlers`); ``sync`` requests execute the same job
function through the same pool on the request thread and return the
finished record.  ``on_complete`` callbacks always run in the *parent*
process — that is where the service's stats and store pins live.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.engine.parallel import ForkedCall, fork_available

__all__ = [
    "Job",
    "JobStore",
    "ThreadJobPool",
    "ProcessJobPool",
    "JOB_STATUSES",
    "JOB_POOLS",
    "resolve_pool",
]

#: Every state a job can report, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed")

#: Accepted ``ServiceConfig.pool`` values; ``auto`` resolves at runtime.
JOB_POOLS = ("auto", "process", "thread")

#: Stable error code for a pool worker that died without reporting.
WORKER_CRASHED = "worker_crashed"

#: Stable error code for a job submitted after the pool shut down.
POOL_CLOSED = "pool_closed"


def resolve_pool(pool: str) -> str:
    """The execution pool a config value actually gets on this platform.

    ``auto`` prefers the process pool (real multi-core partition
    throughput) and falls back to threads where ``fork`` does not exist;
    an explicit ``process`` on a fork-less platform raises rather than
    silently serialising.
    """
    if pool not in JOB_POOLS:
        raise ValueError(f"pool must be one of {JOB_POOLS}, got {pool!r}")
    if pool == "auto":
        return "process" if fork_available() else "thread"
    if pool == "process" and not fork_available():
        raise ValueError(
            "pool='process' requires the 'fork' start method; use "
            "pool='auto' to fall back to threads on this platform"
        )
    return pool


@dataclass
class Job:
    """One partition request's full lifecycle record.

    Attributes
    ----------
    id:
        opaque hex identifier, unique per service instance.
    status:
        one of :data:`JOB_STATUSES`.
    request:
        the validated request parameters, echoed back to the client.
    digest:
        ``"sha256:..."`` of the uploaded source bytes — the key under
        which the ingest landed in the chunk store, reusable via
        ``POST /v1/partitions?store=<digest>``.
    created_at / started_at / finished_at:
        UNIX timestamps; ``None`` until the phase is reached.
    error:
        ``{"code", "message"}`` when ``status == "failed"``; ``code`` is
        the raising exception's type name, or one of the pool's stable
        codes (``worker_crashed``, ``pool_closed``).
    metrics:
        JSON-safe run metrics (partitioner metadata, timings, peak
        resident pins) when ``status == "done"``.
    assignment:
        the partition vector (``int`` array, length ``num_vertices``);
        streamed to clients line by line, never inlined in job JSON.
    num_parts:
        the ``k`` the assignment maps into.
    """

    id: str
    request: dict
    digest: "str | None" = None
    status: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: "float | None" = None
    finished_at: "float | None" = None
    error: "dict | None" = None
    metrics: "dict | None" = None
    assignment: "np.ndarray | None" = None
    num_parts: "int | None" = None

    def to_json(self) -> dict:
        """The client-facing job document (spec: ``Job`` schema)."""
        doc = {
            "id": self.id,
            "status": self.status,
            "request": self.request,
            "digest": self.digest,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "metrics": self.metrics,
            "links": {
                "self": f"/v1/partitions/{self.id}",
                "assignment": f"/v1/partitions/{self.id}/assignment",
            },
        }
        return doc

    def finish_ok(self, assignment, num_parts, metrics) -> None:
        """Fill the success fields (shared by both pools)."""
        self.assignment = np.asarray(assignment)
        self.num_parts = int(num_parts)
        self.metrics = metrics
        self.status = "done"

    def finish_failed(self, code: str, message: str) -> None:
        """Fill the failure fields (shared by both pools)."""
        self.error = {"code": code, "message": message}
        self.status = "failed"


class ThreadJobPool:
    """Run job functions inline on the calling thread (GIL-sharing).

    The tested fallback where ``fork`` is unavailable, and the explicit
    choice for embedders who want zero process overhead.  A job function
    takes no arguments and returns ``(assignment, num_parts, metrics)``;
    any exception marks the job ``failed`` with the exception's type
    name as the stable code (the service never dies with a job).
    """

    mode = "thread"

    def execute(self, job: Job, fn) -> None:
        try:
            assignment, num_parts, metrics = fn()
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            job.finish_failed(type(exc).__name__, str(exc))
        else:
            job.finish_ok(assignment, num_parts, metrics)

    def active_pid(self, job_id: str) -> "int | None":
        """Thread jobs have no child process to target."""
        return None

    def close(self) -> None:
        """Nothing to tear down."""


class ProcessJobPool:
    """Run each job in its own forked child process.

    Partition jobs are CPU-bound and mostly interpreter-bound (chunk
    loops, scoring); threads serialise on the GIL, so N sync requests on
    N cores previously ran at ~1-core speed.  Forking per job (the
    :class:`~repro.engine.parallel.ForkedCall` machinery) gives each job
    a whole core and — because the fork inherits the mmap'd chunk store
    pages copy-on-write — costs no re-ingest and no pickling of inputs;
    only the result (assignment array + JSON-safe metrics) crosses the
    pipe, however large (the pipe framing handles multi-megabyte
    assignments).

    Crash detection is the contract: a child that dies without
    reporting (SIGKILL, OOM) marks its job ``failed`` with the stable
    code ``worker_crashed`` *immediately* (pipe EOF, no timeout, no hung
    poller).  In-child exceptions keep the exact ``{code, message}``
    shape the thread pool produces, so clients cannot tell the pools
    apart on the error path either.
    """

    mode = "process"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active: "dict[str, ForkedCall]" = {}

    def execute(self, job: Job, fn) -> None:
        call = ForkedCall(fn)
        with self._lock:
            self._active[job.id] = call
        try:
            outcome, payload = call.wait()
        finally:
            with self._lock:
                self._active.pop(job.id, None)
        if outcome == "ok":
            assignment, num_parts, metrics = payload
            job.finish_ok(assignment, num_parts, metrics)
        elif outcome == "error":
            code, message = payload
            job.finish_failed(code, message)
        else:
            job.finish_failed(
                WORKER_CRASHED,
                f"partition worker died mid-job ({payload}); the job was "
                "not retried",
            )

    def active_pid(self, job_id: str) -> "int | None":
        """The child pid currently running ``job_id`` (fault injection)."""
        with self._lock:
            call = self._active.get(job_id)
        return call.pid if call is not None else None

    def close(self) -> None:
        """Terminate any children still running (service shutdown)."""
        with self._lock:
            active = list(self._active.values())
            self._active.clear()
        for call in active:
            call.terminate()


class JobStore:
    """Thread-safe job registry plus a fixed worker pool.

    Parameters
    ----------
    workers:
        worker thread count (>= 1).  Each worker pops one queued job at
        a time and drives it through the execution pool to completion;
        queue order is FIFO, so the pool bounds concurrent partition
        runs at ``workers``.
    pool:
        execution pool: ``"process"`` (forked children — real
        multi-core throughput), ``"thread"`` (inline), or ``"auto"``
        (process where fork exists, thread otherwise).  See
        :func:`resolve_pool`.
    max_queue_depth:
        admission bound on *queued* (not yet running) jobs; ``None``
        disables the bound.  :meth:`try_submit` refuses beyond it — the
        handlers turn that refusal into ``429 + Retry-After``
        backpressure instead of letting the queue grow without bound.

    Notes
    -----
    A job function takes no arguments and returns
    ``(assignment, num_parts, metrics)``; any exception it raises marks
    the job ``failed`` (the service never dies with a worker).  The
    optional ``on_complete`` callback passed to :meth:`submit` /
    :meth:`run` fires in the parent process after the job reaches a
    terminal state — stats accounting and store unpinning belong there,
    because in process mode the job function's own side effects happen
    in a forked copy and are lost.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        pool: str = "auto",
        max_queue_depth: "int | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0 or None, got {max_queue_depth}"
            )
        self.workers = int(workers)
        self.pool = resolve_pool(pool)
        self.max_queue_depth = max_queue_depth
        self._pool_impl = (
            ProcessJobPool() if self.pool == "process" else ThreadJobPool()
        )
        self._jobs: "dict[str, Job]" = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"partition-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def create(self, request: dict, *, digest: "str | None" = None) -> Job:
        """Register a new ``queued`` job (not yet scheduled)."""
        job = Job(id=uuid.uuid4().hex[:16], request=request, digest=digest)
        with self._lock:
            self._jobs[job.id] = job
        return job

    def submit(self, job: Job, fn, *, on_complete=None) -> Job:
        """Queue ``fn`` to run ``job`` on the worker pool (async path).

        After :meth:`close`, the job is immediately marked ``failed``
        with the stable code ``pool_closed`` (and ``on_complete`` still
        fires) — a poller always reaches a terminal state, never a job
        stranded on a queue nobody drains.
        """
        with self._lock:
            closed = self._closed
        if closed:
            job.started_at = job.finished_at = time.time()
            job.finish_failed(
                POOL_CLOSED, "the job pool is shut down; job was not queued"
            )
            if on_complete is not None:
                on_complete(job)
            return job
        self._queue.put((job, fn, on_complete))
        return job

    def try_submit(self, job: Job, fn, *, on_complete=None) -> bool:
        """Submit unless the queue is at ``max_queue_depth`` (backpressure).

        Returns ``False`` — job untouched, nothing queued — when the
        bound would be exceeded; the caller owns the 429 response.
        """
        if (
            self.max_queue_depth is not None
            and self.queue_depth() >= self.max_queue_depth
        ):
            return False
        self.submit(job, fn, on_complete=on_complete)
        return True

    def run(self, job: Job, fn, *, on_complete=None) -> Job:
        """Run ``fn`` through the pool on the calling thread (``sync=1``).

        Bypasses the queue entirely (no backpressure interaction, works
        even during shutdown): in process mode this forks a dedicated
        child and blocks the request thread on its pipe — which releases
        the GIL, so N concurrent sync requests genuinely run on N cores.
        """
        self._execute(job, fn, on_complete)
        return job

    def get(self, job_id: str) -> "Job | None":
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict:
        """``{status: n}`` over every job the service has seen."""
        with self._lock:
            out = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                out[job.status] += 1
        return out

    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a worker (approximate)."""
        return self._queue.qsize()

    def active_pid(self, job_id: str) -> "int | None":
        """The forked child pid running ``job_id``, if any (process pool)."""
        return self._pool_impl.active_pid(job_id)

    def close(self) -> None:
        """Stop the workers after the queue drains (idempotent).

        Already-queued jobs finish; *new* submissions fail fast with
        ``pool_closed``; children still running at the 30s join deadline
        are terminated so shutdown is bounded.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=30)
        self._threads = []
        self._pool_impl.close()

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, fn, on_complete = item
            self._execute(job, fn, on_complete)

    def _execute(self, job: Job, fn, on_complete=None) -> None:
        job.status = "running"
        job.started_at = time.time()
        try:
            self._pool_impl.execute(job, fn)
        except Exception as exc:  # noqa: BLE001 — never kill a worker thread
            job.finish_failed(type(exc).__name__, str(exc))
        finally:
            job.finished_at = time.time()
        if on_complete is not None:
            try:
                on_complete(job)
            except Exception:  # noqa: BLE001 — accounting must not kill jobs
                pass
