"""Route logic of the streaming partition service.

:class:`ServiceHandlers` is the service's brain, deliberately decoupled
from :mod:`http.server` so tests and benchmarks can drive it without a
socket: every handler takes parsed query parameters (and, for uploads,
an iterable of body byte blocks) and returns ``(status, body)``.  The
HTTP adapter in :mod:`repro.service.app` owns wire concerns only.

The data path is the whole point: an upload's byte blocks are fed
*directly* into the streaming text readers
(:func:`~repro.streaming.reader.stream_hmetis` /
:func:`~repro.streaming.reader.stream_matrix_market` — which accept any
iterable byte source) while a SHA-256 runs over the same blocks, so the
service never materialises the file; the parsed stream is then published
into a digest-keyed persistent chunk store
(:mod:`repro.streaming.chunkstore`) and every partition run — including
re-partitions of the same upload with different ``k``/scorer via
``store=<digest>`` — replays the memory-mapped store instead of
re-parsing text.  The ``text_ingests`` / ``store_replays`` counters in
``GET /v1/healthz`` make that observable (and testable).
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.architecture.bandwidth import archer_like_bandwidth
from repro.architecture.cost import cost_matrix_from_bandwidth
from repro.architecture.topology import archer_like_topology
from repro.hypergraph.io import HypergraphFormatError
from repro.service.admission import AdmissionControl, keys_from_env
from repro.service.errors import (
    BadRequest,
    Conflict,
    InvalidUpload,
    NotFound,
    ServiceError,
    StoreEvicted,
    TooManyRequests,
)
from repro.service.jobs import (
    JOB_POOLS,
    POOL_CLOSED,
    WORKER_CRASHED,
    Job,
    JobStore,
)
from repro.service.metrics import MetricsRegistry
from repro.service.openapi import SERVICE_VERSION, openapi_spec
from repro.service.storecache import StoreCache
from repro.streaming.chunkstore import ChunkStoreError, open_store, write_store
from repro.streaming.reader import (
    DEFAULT_BUFFER_PINS,
    DEFAULT_CHUNK_SIZE,
    stream_hmetis,
    stream_matrix_market,
)
from repro.partitioning.families import build_partitioner, family_names

__all__ = [
    "ServiceConfig",
    "ServiceHandlers",
    "PARTITIONERS",
    "UPLOAD_FORMATS",
    "json_safe",
]

#: Upload formats the service parses, mapped to their stream opener.
UPLOAD_FORMATS = {
    "hmetis": stream_hmetis,
    "mtx": stream_matrix_market,
}

#: Registered partitioners (the ``partitioner=`` request knob), taken
#: from the :data:`repro.partitioning.families.PARTITIONERS` registry —
#: registering a family there makes it servable with no service change.
PARTITIONERS = family_names()

#: Query parameters that shape an upload's ingest.
_UPLOAD_PARAMS = frozenset(
    ("format", "model", "chunk_size", "buffer_pins", "pin_budget", "name")
)

#: Query parameters ``POST /v1/partitions`` understands.
_PARTITION_PARAMS = _UPLOAD_PARAMS | frozenset(
    (
        "k",
        "partitioner",
        "scorer",
        "gamma",
        "kernel",
        "workers",
        "shard_payload",
        "shard_by",
        "buffer_fraction",
        "buffer_size",
        "max_tracked_edges",
        "max_iterations",
        "refine",
        "refine_passes",
        "seed",
        "cost",
        "sync",
        "store",
    )
)

#: Blocks per slice when streaming an assignment body.
_ASSIGNMENT_SLICE = 1 << 16


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (everything per-request rides on the query).

    Attributes
    ----------
    host / port:
        bind address; port ``0`` asks the OS for an ephemeral port
        (tests and benchmarks use this).
    cache_dir:
        root directory for digest-keyed chunk stores; ``None`` creates a
        private temporary directory that lives as long as the service.
        A persistent directory survives restarts: re-uploads of known
        bytes skip straight to the stored chunks.
    workers:
        partition workers draining the async job queue.
    pool:
        how partition jobs execute: ``"process"`` (one forked child per
        job — N concurrent jobs use N cores), ``"thread"`` (inline,
        GIL-sharing) or ``"auto"`` (process where ``fork`` exists).
    max_queue_depth:
        backpressure bound on queued-not-yet-running jobs; beyond it
        ``POST /v1/partitions`` answers ``429 queue_full`` with a
        ``Retry-After`` hint.  ``None`` disables the bound.
    api_keys:
        accepted API keys; empty falls back to the ``REPRO_API_KEYS``
        environment variable, and if that is empty too the service is
        open (no auth, no rate limiting — the PR 5 behaviour).
    rate_limit / rate_burst:
        per-key token bucket: sustained requests/second and burst cap.
        ``rate_limit=None`` keeps auth without throttling.
    store_budget_bytes:
        LRU byte budget for the digest-keyed store directory; coldest
        unpinned stores are evicted beyond it (``None``: unbounded).
    default_chunk_size / default_buffer_pins:
        ingest defaults when an upload does not pass ``chunk_size`` /
        ``buffer_pins`` — the resident-memory knobs of the out-of-core
        bound.
    max_body_bytes:
        reject uploads whose ``Content-Length`` exceeds this (``None``
        disables the cap).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    cache_dir: "str | Path | None" = None
    workers: int = 2
    pool: str = "auto"
    max_queue_depth: "int | None" = None
    api_keys: "tuple" = ()
    rate_limit: "float | None" = None
    rate_burst: float = 10.0
    store_budget_bytes: "int | None" = None
    default_chunk_size: int = DEFAULT_CHUNK_SIZE
    default_buffer_pins: int = DEFAULT_BUFFER_PINS
    max_body_bytes: "int | None" = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.pool not in JOB_POOLS:
            raise ValueError(
                f"pool must be one of {JOB_POOLS}, got {self.pool!r}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0 or None, got {self.max_queue_depth}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(
                f"rate_limit must be > 0 or None, got {self.rate_limit}"
            )
        if self.rate_burst < 1:
            raise ValueError(f"rate_burst must be >= 1, got {self.rate_burst}")
        if self.store_budget_bytes is not None and self.store_budget_bytes < 0:
            raise ValueError(
                f"store_budget_bytes must be >= 0 or None, "
                f"got {self.store_budget_bytes}"
            )
        if self.default_chunk_size < 1:
            raise ValueError(
                f"default_chunk_size must be >= 1, got {self.default_chunk_size}"
            )
        if self.default_buffer_pins < 1:
            raise ValueError(
                f"default_buffer_pins must be >= 1, got {self.default_buffer_pins}"
            )


# ----------------------------------------------------------------------
# parameter parsing
# ----------------------------------------------------------------------
def _reject_unknown(params: dict, allowed: frozenset, where: str) -> None:
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise BadRequest(
            f"unknown parameter(s) for {where}: {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(allowed))})"
        )


def _get_int(
    params: dict,
    key: str,
    default: "int | None",
    *,
    minimum: "int | None" = None,
) -> "int | None":
    raw = params.get(key)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise BadRequest(f"{key} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise BadRequest(f"{key} must be >= {minimum}, got {value}")
    return value


def _get_float(
    params: dict, key: str, default: float, *, lo: float, hi: float
) -> float:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise BadRequest(f"{key} must be a number, got {raw!r}") from None
    if not (lo < value <= hi):
        raise BadRequest(f"{key} must be in ({lo}, {hi}], got {value}")
    return value


def _get_choice(params: dict, key: str, choices: tuple, default: str) -> str:
    value = params.get(key, default)
    if value not in choices:
        raise BadRequest(
            f"{key} must be one of {', '.join(choices)}, got {value!r}"
        )
    return value


def _get_bool(params: dict, key: str) -> bool:
    raw = params.get(key, "")
    if raw in ("", "0", "false", "no"):
        return False
    if raw in ("1", "true", "yes"):
        return True
    raise BadRequest(f"{key} must be one of 1/true/yes/0/false/no, got {raw!r}")


def _normalise_digest(raw: str) -> str:
    """Canonical ``"sha256:<hex>"`` form (bare hex accepted)."""
    value = raw.lower()
    if value.startswith("sha256:"):
        value = value[len("sha256:"):]
    if len(value) != 64 or any(c not in "0123456789abcdef" for c in value):
        raise BadRequest(
            f"store must be a sha256 digest ('sha256:<64 hex>'), got {raw!r}"
        )
    return f"sha256:{value}"


def json_safe(obj):
    """Recursively coerce ``obj`` into JSON-serialisable builtins.

    NumPy scalars become Python scalars, arrays become lists, and
    anything else unserialisable falls back to ``str`` — partitioner
    metadata goes straight into job documents without per-field
    curation.
    """
    if isinstance(obj, dict):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [json_safe(v) for v in obj.tolist()]
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return str(obj)


def _cost_matrix(kind: str, k: int, seed: int) -> "np.ndarray | None":
    """The communication cost matrix a request partitions against.

    ``uniform`` (``None``) makes Eq. 1's communication term
    architecture-oblivious; ``archer`` profiles an ARCHER-like machine
    of ``ceil(k / 24)`` nodes and normalises its first ``k`` units'
    bandwidths into the paper's cost matrix — the architecture-aware
    configuration, deterministic per seed.
    """
    if kind == "uniform":
        return None
    topo = archer_like_topology(num_nodes=max(1, -(-k // 24)))
    bw, _lat = archer_like_bandwidth(topo).matrices(seed=seed)
    return cost_matrix_from_bandwidth(bw[:k, :k])


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
class ServiceHandlers:
    """Implements every documented route against a config and a job pool.

    Parameters
    ----------
    config:
        the :class:`ServiceConfig`; ``cache_dir=None`` allocates a
        private temp directory removed by :meth:`close`.

    Notes
    -----
    All handlers return ``(status, body_dict)`` except
    :meth:`get_assignment`, which returns ``(status, content_type,
    block_iterator)`` so the HTTP layer can stream the assignment
    without building one giant string.  Handlers raise
    :class:`~repro.service.errors.ServiceError` for every client-visible
    failure.
    """

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self.config = config or ServiceConfig()
        self.jobs = JobStore(
            self.config.workers,
            pool=self.config.pool,
            max_queue_depth=self.config.max_queue_depth,
        )
        self._started_at = time.time()
        self._stats_lock = threading.Lock()
        self.stats = {
            "uploads": 0,
            "text_ingests": 0,
            "store_replays": 0,
            # pass-kernel observability (docs/performance.md): seconds
            # spent inside pass_kernel across all finished runs, and how
            # many runs each kernel implementation served.
            "pass_seconds": 0.0,
            "kernel_python_runs": 0,
            "kernel_njit_runs": 0,
            # operational counters (this layer): admission rejections
            # (401/403/429), LRU store evictions, pool workers that died
            # mid-job.
            "rejected_requests": 0,
            "evictions": 0,
            "jobs_crashed": 0,
        }
        if self.config.cache_dir is None:
            self._own_cache = Path(tempfile.mkdtemp(prefix="repro-service-"))
            cache_root = self._own_cache
        else:
            self._own_cache = None
            cache_root = Path(self.config.cache_dir).expanduser().resolve()
        self.stores_dir = cache_root / "stores"
        self.stores_dir.mkdir(parents=True, exist_ok=True)
        self.store_cache = StoreCache(
            self.stores_dir, budget_bytes=self.config.store_budget_bytes
        )
        self.admission = AdmissionControl(
            tuple(self.config.api_keys) or keys_from_env(),
            rate=self.config.rate_limit,
            burst=self.config.rate_burst,
        )
        self.metrics_registry = self._build_metrics()

    def _build_metrics(self) -> MetricsRegistry:
        """Wire every observable into the ``/v1/metrics`` registry.

        Stats-dict counters are exposed through scrape-time callables so
        there is exactly one source of truth shared with ``healthz``;
        only signals with no other home (per-route latency, rejection
        reasons) are registry-owned.
        """
        reg = MetricsRegistry()
        reg.gauge(
            "repro_uptime_seconds",
            "Seconds since the service started.",
            lambda: time.time() - self._started_at,
        )
        reg.gauge(
            "repro_queue_depth",
            "Partition jobs accepted but not yet running.",
            self.jobs.queue_depth,
        )
        reg.gauge(
            "repro_store_bytes",
            "Total bytes of digest-keyed chunk stores on disk.",
            self.store_cache.total_bytes,
        )
        reg.gauge(
            "repro_stores", "Chunk stores currently on disk.",
            self.store_cache.known,
        )
        reg.gauge(
            "repro_store_evictions_total",
            "Chunk stores evicted by the byte budget.",
            lambda: self.store_cache.evictions,
            kind="counter",
        )
        for key, help_text in (
            ("uploads", "Upload bodies received."),
            ("text_ingests", "Uploads parsed by the streaming text readers."),
            ("store_replays", "Partition runs served by mmap store replay."),
            ("kernel_python_runs", "Partition runs served by the python kernel."),
            ("kernel_njit_runs", "Partition runs served by the njit kernel."),
            ("rejected_requests", "Requests refused by admission control."),
            ("jobs_crashed", "Partition jobs whose pool worker died mid-job."),
        ):
            reg.gauge(
                f"repro_{key}_total",
                help_text,
                lambda k=key: self._stat(k),
                kind="counter",
            )
        reg.gauge(
            "repro_pass_seconds_total",
            "Seconds spent inside pass_kernel across finished runs.",
            lambda: self._stat("pass_seconds"),
            kind="counter",
        )
        self.request_latency = reg.histogram(
            "repro_request_seconds",
            "Request latency by route, in seconds.",
        )
        self.rejections = reg.counter(
            "repro_rejections_total",
            "Admission refusals by reason (unauthorized/forbidden/"
            "rate_limited/queue_full).",
        )
        return reg

    def _stat(self, key: str):
        with self._stats_lock:
            return self.stats[key]

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, path: str, headers) -> None:
        """Gate one request; raises 401/403/429 and counts the refusal."""
        try:
            self.admission.admit(path, headers)
        except ServiceError as exc:
            self._bump("rejected_requests")
            self.rejections.inc(reason=exc.code)
            raise

    def observe_request(self, method: str, route: str, seconds: float) -> None:
        """Record one served request in the per-route latency histogram."""
        self.request_latency.observe(seconds, method=method, path=route)

    def close(self) -> None:
        """Stop the worker pool and drop a service-owned cache directory."""
        self.jobs.close()
        if self._own_cache is not None:
            shutil.rmtree(self._own_cache, ignore_errors=True)

    # ------------------------------------------------------------------
    # store plumbing
    # ------------------------------------------------------------------
    def store_dir(self, digest: str) -> Path:
        """The chunk-store directory for a source digest."""
        return self.store_cache.path_for(digest)

    def _bump(self, key: str) -> None:
        with self._stats_lock:
            self.stats[key] += 1

    @staticmethod
    def _store_info(stream, digest: str, **extra) -> dict:
        """The StoreInfo document (spec schema) for any chunk stream.

        The single place the shape is spelled out: upload-sourced and
        store-sourced ``source`` documents must never diverge.
        """
        info = {
            "digest": digest,
            "name": stream.name,
            "num_vertices": stream.num_vertices,
            "num_edges": stream.num_edges,
            "num_pins": stream.num_pins,
            "num_chunks": stream.num_chunks,
            "chunk_size": stream.chunk_size,
            "pin_budget": stream.pin_budget,
        }
        info.update(extra)
        return info

    def _store_summary(self, digest: str) -> dict:
        """StoreInfo fields read from an existing store's manifest.

        An evicted digest gets ``409 store_evicted`` (the bytes were
        here; re-upload restores them under the same digest) — a plain
        404 means the digest was never ingested at all.
        """
        try:
            stream = open_store(self.store_dir(digest))
        except ChunkStoreError as exc:
            if self.store_cache.was_evicted(digest):
                raise StoreEvicted(
                    f"store {digest!r} was evicted by the byte budget; "
                    "re-upload the same bytes to restore it"
                ) from exc
            raise NotFound(f"no chunk store for digest {digest!r}") from exc
        self.store_cache.touch(digest)
        with stream:
            return self._store_info(stream, digest)

    def _publish_store(self, stream, digest: str) -> bool:
        """Persist ``stream`` under its digest key; ``False`` if present.

        Written to a hidden sibling then renamed into place, so
        concurrent identical uploads race safely: one rename wins, the
        loser discards its copy, readers only ever see complete stores.
        """
        store_dir = self.store_dir(digest)
        if store_dir.exists():
            self.store_cache.touch(digest)
            return False
        tmp = self.stores_dir / f".ingest-{uuid.uuid4().hex}"
        write_store(stream, tmp, digest=digest)
        try:
            tmp.rename(store_dir)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            self.store_cache.touch(digest)
            return False
        self.store_cache.added(digest)
        return True

    def ingest_upload(self, params: dict, body) -> dict:
        """Stream ``body`` through a text reader into the chunk store.

        The blocks are hashed as they are parsed — one pass, bounded
        resident pins, no temp copy of the text — and the parsed stream
        is published under its digest.  Returns the StoreInfo dict
        (``created`` says whether a new store was written).

        Raises
        ------
        BadRequest
            missing body or ill-formed parameters.
        InvalidUpload
            the parser rejected the bytes (message passed through).
        """
        if body is None:
            raise BadRequest(
                "an upload body is required (or reference a previous "
                "upload with store=<digest>)"
            )
        fmt = _get_choice(params, "format", tuple(UPLOAD_FORMATS), "hmetis")
        kwargs = {
            "chunk_size": _get_int(
                params, "chunk_size", self.config.default_chunk_size, minimum=1
            ),
            "buffer_pins": _get_int(
                params, "buffer_pins", self.config.default_buffer_pins, minimum=1
            ),
            "pin_budget": _get_int(params, "pin_budget", None, minimum=1),
            "name": params.get("name"),
        }
        if fmt == "mtx":
            kwargs["model"] = _get_choice(
                params, "model", ("row-net", "column-net"), "row-net"
            )
        elif "model" in params:
            raise BadRequest("model only applies to format=mtx uploads")

        hasher = hashlib.sha256()
        received = 0

        def hashed_blocks():
            nonlocal received
            for block in body:
                if block:
                    hasher.update(block)
                    received += len(block)
                    yield block

        self._bump("uploads")
        try:
            stream = UPLOAD_FORMATS[fmt](hashed_blocks(), **kwargs)
        except HypergraphFormatError as exc:
            raise InvalidUpload(str(exc)) from exc
        self._bump("text_ingests")
        with stream:
            digest = f"sha256:{hasher.hexdigest()}"
            created = self._publish_store(stream, digest)
            return self._store_info(
                stream,
                digest,
                created=created,
                upload_bytes=received,
                peak_resident_pins=int(stream.peak_resident_pins),
            )

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def create_store(self, params: dict, body) -> "tuple[int, dict]":
        """``POST /v1/stores`` — upload straight into the chunk store."""
        _reject_unknown(params, _UPLOAD_PARAMS, "POST /v1/stores")
        info = self.ingest_upload(params, body)
        return (201 if info["created"] else 200), info

    def create_partition(self, params: dict, body) -> "tuple[int, dict]":
        """``POST /v1/partitions`` — upload (or store reference) to job.

        The body streams through ingest into the digest-keyed store;
        the partition itself always replays the store.  With ``sync=1``
        the job runs on the request thread and the finished record is
        returned with status 200; otherwise the job is queued and a 202
        points the client at the poll URL.
        """
        _reject_unknown(params, _PARTITION_PARAMS, "POST /v1/partitions")
        spec = self._partition_spec(params)
        if spec["store"] is not None:
            digest = spec["store"]
            source = self._store_summary(digest)  # NotFound if absent
            source["created"] = False
            source["via"] = "store"
        else:
            source = self.ingest_upload(params, body)
            source["via"] = "upload"
            digest = source["digest"]
        if spec["k"] > source["num_vertices"]:
            raise BadRequest(
                f"cannot split {source['num_vertices']} vertices into "
                f"{spec['k']} parts"
            )
        request_doc = {
            key: spec[key]
            for key in (
                "k",
                "partitioner",
                "scorer",
                "kernel",
                "workers",
                "buffer_fraction",
                "buffer_size",
                "max_tracked_edges",
                "max_iterations",
                "refine",
                "refine_passes",
                "seed",
                "cost",
            )
        }
        request_doc["source"] = source
        job = self.jobs.create(request_doc, digest=digest)
        fn = self._job_fn(digest, spec)
        # Pin the store across the job's whole life: the replay may run
        # in a forked worker, and the LRU evictor must not tear the
        # store out from under an open mmap.  The pin is released by
        # _job_complete, which the pool fires in the parent process.
        self.store_cache.pin(digest)
        self.store_cache.touch(digest)
        if spec["sync"]:
            self.jobs.run(job, fn, on_complete=self._job_complete)
            return 200, job.to_json()
        if not self.jobs.try_submit(job, fn, on_complete=self._job_complete):
            self.store_cache.unpin(digest)
            depth = self.jobs.queue_depth()
            self._bump("rejected_requests")
            self.rejections.inc(reason="queue_full")
            raise TooManyRequests(
                f"job queue is full ({depth} queued, bound "
                f"{self.jobs.max_queue_depth}); retry later or use "
                "sync=1 to run on the request thread",
                retry_after=max(1, depth // max(1, self.jobs.workers)),
                code="queue_full",
            )
        return 202, job.to_json()

    def _job_complete(self, job: Job) -> None:
        """Parent-side accounting after a job reaches a terminal state.

        With the process pool, everything the job function touches is a
        forked copy — stats mutated in the child are lost — so replay
        and kernel accounting read the job record here, in the parent.
        """
        if job.digest is not None:
            self.store_cache.unpin(job.digest)
        with self._stats_lock:
            if job.error is not None and job.error.get("code") == POOL_CLOSED:
                return
            self.stats["store_replays"] += 1
            if job.status != "done" or not isinstance(job.metrics, dict):
                if job.error is not None and (
                    job.error.get("code") == WORKER_CRASHED
                ):
                    self.stats["jobs_crashed"] += 1
                return
            mode = job.metrics.get("kernel_mode", "python")
            self.stats["pass_seconds"] += float(
                job.metrics.get("pass_seconds", 0.0)
            )
            self.stats[f"kernel_{mode}_runs"] = (
                self.stats.get(f"kernel_{mode}_runs", 0) + 1
            )

    def get_partition(self, job_id: str) -> "tuple[int, dict]":
        """``GET /v1/partitions/<id>`` — poll a job's status/metrics."""
        job = self.jobs.get(job_id)
        if job is None:
            raise NotFound(f"no partition job {job_id!r}")
        return 200, job.to_json()

    def get_assignment(self, job_id: str):
        """``GET /v1/partitions/<id>/assignment`` — the vector, streamed.

        Returns ``(200, "text/plain", block_iterator)``; line ``v``
        holds the partition id of vertex ``v``.  The iterator yields
        bounded slices so the HTTP layer never builds the full body.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise NotFound(f"no partition job {job_id!r}")
        if job.status != "done":
            raise Conflict(
                f"job {job_id} is {job.status}; the assignment exists "
                "only once status is 'done'"
            )
        assignment = job.assignment

        def blocks():
            for lo in range(0, assignment.size, _ASSIGNMENT_SLICE):
                part = assignment[lo : lo + _ASSIGNMENT_SLICE]
                yield ("\n".join(map(str, part)) + "\n").encode()

        return 200, "text/plain; charset=utf-8", blocks()

    def healthz(self) -> "tuple[int, dict]":
        """``GET /v1/healthz`` — liveness plus observable counters."""
        stores = sum(
            1 for p in self.stores_dir.glob("*.chunkstore") if p.is_dir()
        )
        with self._stats_lock:
            stats = dict(self.stats)
        stats["pass_seconds"] = round(stats["pass_seconds"], 6)
        stats["evictions"] = self.store_cache.evictions
        return 200, {
            "status": "ok",
            "version": SERVICE_VERSION,
            "uptime_s": time.time() - self._started_at,
            "workers": self.jobs.workers,
            "pool": self.jobs.pool,
            "queue_depth": self.jobs.queue_depth(),
            "auth": self.admission.enabled,
            "jobs": self.jobs.counts(),
            "stores": stores,
            "store_bytes": self.store_cache.total_bytes(),
            "stats": stats,
        }

    def metrics(self):
        """``GET /v1/metrics`` — the registry in Prometheus text format.

        Returns ``(200, content_type, block_iterator)`` like the other
        streamed route; the body is the standard text exposition every
        scraper parses.
        """
        body = self.metrics_registry.render().encode()
        return 200, "text/plain; version=0.0.4; charset=utf-8", iter((body,))

    def openapi(self) -> "tuple[int, dict]":
        """``GET /v1/openapi.json`` — the handwritten API contract."""
        return 200, openapi_spec()

    # ------------------------------------------------------------------
    # partition spec + job body
    # ------------------------------------------------------------------
    def _partition_spec(self, params: dict) -> dict:
        """Validate the partitioning knobs (400 on any bad value)."""
        # family_names() is read per request, not snapshotted at import:
        # a family registered at runtime is immediately servable.
        partitioner = _get_choice(
            params, "partitioner", family_names(), "onepass"
        )
        scorer = _get_choice(params, "scorer", ("eq1", "fennel"), "eq1")
        if scorer == "fennel" and partitioner != "onepass":
            raise BadRequest(
                "scorer=fennel is only available with partitioner=onepass "
                "(the restreamers score with Eq. 1)"
            )
        workers = _get_int(
            params,
            "workers",
            2 if partitioner == "sharded" else 1,
            minimum=1,
        )
        if partitioner == "sharded" and workers < 2:
            raise BadRequest("partitioner=sharded needs workers >= 2")
        k = _get_int(params, "k", None, minimum=1)
        if k is None:
            raise BadRequest("k (number of partitions) is required")
        spec = {
            "k": k,
            "partitioner": partitioner,
            "scorer": scorer,
            "gamma": _get_float(params, "gamma", 1.5, lo=1.0, hi=16.0),
            "kernel": _get_choice(
                params, "kernel", ("auto", "python", "njit"), "auto"
            ),
            "workers": workers,
            "shard_payload": _get_choice(
                params, "shard_payload", ("boundary", "full"), "boundary"
            ),
            "shard_by": _get_choice(
                params, "shard_by", ("pins", "chunks"), "pins"
            ),
            "buffer_fraction": _get_float(
                params, "buffer_fraction", 0.25, lo=0.0, hi=1.0
            ),
            "buffer_size": _get_int(params, "buffer_size", None, minimum=1),
            "max_tracked_edges": _get_int(
                params, "max_tracked_edges", None, minimum=1
            ),
            "max_iterations": _get_int(params, "max_iterations", 20, minimum=1),
            "refine": _get_bool(params, "refine"),
            "refine_passes": _get_int(params, "refine_passes", 4, minimum=1),
            "seed": _get_int(params, "seed", 20190805),
            "cost": _get_choice(params, "cost", ("uniform", "archer"), "uniform"),
            "sync": _get_bool(params, "sync"),
            "store": (
                _normalise_digest(params["store"]) if "store" in params else None
            ),
        }
        return spec

    def build_partitioner(self, spec: dict, num_vertices: int):
        """Instantiate the requested partitioner for an instance size.

        Delegates to the :data:`repro.partitioning.families.PARTITIONERS`
        registry (which also wraps the FM polish when ``refine`` is set),
        so the service construction path and the library's are one.
        """
        return build_partitioner(spec, num_vertices)

    def _job_fn(self, digest: str, spec: dict):
        """The deferred partition body: replay the store, run, report.

        Every run opens its own :class:`ChunkStoreStream` (mmap replay —
        the text parser never runs here), so concurrent jobs over one
        upload share pages, not Python state.  The body is
        *side-effect-free on the service*: with the process pool it runs
        in a forked child whose memory is discarded, so all stats
        accounting happens in :meth:`_job_complete` (parent side) from
        the returned metrics.
        """
        store_dir = self.store_dir(digest)

        def run():
            stream = open_store(store_dir)
            with stream:
                partitioner = self.build_partitioner(spec, stream.num_vertices)
                result = partitioner.partition_stream(
                    stream,
                    spec["k"],
                    cost_matrix=_cost_matrix(spec["cost"], spec["k"], spec["seed"]),
                    seed=spec["seed"],
                )
                metrics = json_safe(result.metadata)
                metrics["algorithm"] = result.algorithm
                metrics["num_vertices"] = stream.num_vertices
                metrics["num_edges"] = stream.num_edges
                metrics["num_pins"] = stream.num_pins
                metrics["peak_resident_pins"] = int(stream.peak_resident_pins)
            return result.assignment, spec["k"], metrics

        return run
