"""HTTP adapter: stdlib ``http.server`` in front of the route handlers.

Dependency-free by design (the repo rule: nothing beyond numpy/scipy) —
:class:`PartitionService` is a ``ThreadingHTTPServer`` whose request
handler does wire work only: route matching, query parsing, request
body framing (``Content-Length`` or ``Transfer-Encoding: chunked``,
yielded as byte blocks so uploads stream straight into the parsers),
and JSON/streamed responses.  Everything with behaviour lives in
:class:`~repro.service.handlers.ServiceHandlers`.

Run it embedded (tests, benchmarks)::

    from repro.service import PartitionService, ServiceConfig

    with PartitionService(ServiceConfig(port=0)) as svc:   # ephemeral port
        print(svc.url)                                     # http://127.0.0.1:NNNNN
        ...                                                # drive it over HTTP

or from the CLI (``hyperpraw-repro serve --port 8080 --cache-dir DIR``),
which calls :func:`serve`.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.service.errors import (
    BadRequest,
    LengthRequired,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServiceError,
    error_body,
)
from repro.service.handlers import ServiceConfig, ServiceHandlers

__all__ = ["PartitionService", "make_server", "serve"]

log = logging.getLogger("repro.service")

#: Upload read granularity (bytes per block handed to the parser).
_BODY_BLOCK = 1 << 16


class _RequestHandler(BaseHTTPRequestHandler):
    """Wire-level adapter; one instance per request.

    ``server.api`` (attached by :class:`PartitionService`) is the shared
    :class:`ServiceHandlers`.  HTTP/1.0 close-per-request semantics keep
    streamed responses simple — no chunked response framing needed.
    """

    server_version = "hyperpraw-repro"
    protocol_version = "HTTP/1.0"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 — quiet by default
        log.debug("%s %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, body: dict, headers=None) -> None:
        data = json.dumps(body, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_stream(self, status: int, content_type: str, blocks) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.end_headers()
        for block in blocks:
            self.wfile.write(block)

    def _send_error(self, exc: ServiceError) -> None:
        # 429s carry the standard back-off hint so clients (and load
        # balancers) know when a retry can succeed.
        retry_after = getattr(exc, "retry_after", None)
        headers = (
            {"Retry-After": str(retry_after)} if retry_after is not None else None
        )
        self._send_json(exc.status, error_body(exc), headers)

    def _params(self) -> "tuple[str, dict]":
        """``(path, query_params)`` with repeated keys last-wins."""
        split = urlsplit(self.path)
        return split.path.rstrip("/") or "/", dict(
            parse_qsl(split.query, keep_blank_values=True)
        )

    def _body_blocks(self):
        """The request body as an iterator of byte blocks, or ``None``.

        Supports ``Content-Length`` bodies and ``Transfer-Encoding:
        chunked`` uploads (clients that pipe a partition source of
        unknown length).  Raises :class:`LengthRequired` when a body is
        implied but unframed, :class:`PayloadTooLarge` when a declared
        length exceeds the configured cap.
        """
        te = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in te:
            return self._chunked_blocks()
        length = self.headers.get("Content-Length")
        if length is None:
            raise LengthRequired(
                "upload requires Content-Length or Transfer-Encoding: chunked"
            )
        try:
            remaining = int(length)
        except ValueError:
            raise LengthRequired(f"bad Content-Length {length!r}") from None
        if remaining == 0:
            return None
        cap = self.server.api.config.max_body_bytes
        if cap is not None and remaining > cap:
            raise PayloadTooLarge(
                f"body is {remaining} bytes; this service caps uploads "
                f"at {cap}"
            )

        def blocks():
            left = remaining
            while left > 0:
                block = self.rfile.read(min(_BODY_BLOCK, left))
                if not block:
                    # A silently-truncated body must never be stored and
                    # partitioned as if complete.
                    raise BadRequest(
                        f"body truncated: received {remaining - left} of "
                        f"the declared {remaining} bytes"
                    )
                left -= len(block)
                yield block

        return blocks()

    def _chunked_blocks(self):
        cap = self.server.api.config.max_body_bytes

        def blocks():
            received = 0
            while True:
                size_line = self.rfile.readline(1024).strip()
                try:
                    size = int(size_line.split(b";", 1)[0], 16)
                except ValueError:
                    raise LengthRequired(
                        f"bad chunked framing: {size_line!r}"
                    ) from None
                if size == 0:
                    self.rfile.readline(1024)  # trailing CRLF / trailers
                    return
                received += size
                if cap is not None and received > cap:
                    raise PayloadTooLarge(
                        f"chunked body exceeded the {cap}-byte upload cap"
                    )
                left = size
                while left > 0:
                    block = self.rfile.read(min(_BODY_BLOCK, left))
                    if not block:
                        raise BadRequest("body truncated mid-chunk")
                    left -= len(block)
                    yield block
                self.rfile.readline(1024)  # CRLF after each chunk

        return blocks()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def _route_template(path: str) -> str:
        """The spec-style route a concrete path instantiates.

        Metric labels must be low-cardinality: every job id maps onto
        one ``{job_id}`` template, unknown paths onto ``other``.
        """
        if path in (
            "/v1/healthz",
            "/v1/metrics",
            "/v1/openapi.json",
            "/v1/partitions",
            "/v1/stores",
        ):
            return path
        if path.startswith("/v1/partitions/"):
            rest = path[len("/v1/partitions/"):]
            if rest.endswith("/assignment"):
                return "/v1/partitions/{job_id}/assignment"
            if rest and "/" not in rest:
                return "/v1/partitions/{job_id}"
        return "other"

    def _dispatch(self, method: str) -> None:
        api = self.server.api
        path, params = self._params()
        started = time.monotonic()
        try:
            self._route(api, method, path, params)
        finally:
            api.observe_request(
                method, self._route_template(path), time.monotonic() - started
            )

    def _route(self, api, method: str, path: str, params: dict) -> None:
        try:
            api.admit(path, self.headers)
            if path == "/v1/healthz":
                if method != "GET":
                    raise MethodNotAllowed(f"{path} supports GET only")
                self._send_json(*api.healthz())
            elif path == "/v1/metrics":
                if method != "GET":
                    raise MethodNotAllowed(f"{path} supports GET only")
                self._send_stream(*api.metrics())
            elif path == "/v1/openapi.json":
                if method != "GET":
                    raise MethodNotAllowed(f"{path} supports GET only")
                self._send_json(*api.openapi())
            elif path == "/v1/partitions":
                if method != "POST":
                    raise MethodNotAllowed(f"{path} supports POST only")
                body = None if "store" in params else self._body_blocks()
                self._send_json(*api.create_partition(params, body))
            elif path == "/v1/stores":
                if method != "POST":
                    raise MethodNotAllowed(f"{path} supports POST only")
                self._send_json(*api.create_store(params, self._body_blocks()))
            elif path.startswith("/v1/partitions/"):
                if method != "GET":
                    raise MethodNotAllowed(
                        "/v1/partitions/<id> supports GET only"
                    )
                rest = path[len("/v1/partitions/"):]
                if rest.endswith("/assignment"):
                    job_id = rest[: -len("/assignment")]
                    self._send_stream(*api.get_assignment(job_id))
                elif "/" not in rest:
                    self._send_json(*api.get_partition(rest))
                else:
                    raise NotFound(f"no route {path!r}")
            else:
                raise NotFound(f"no route {path!r}")
        except ServiceError as exc:
            self._send_error(exc)
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to report
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            log.exception("unhandled error serving %s %s", method, path)
            self._send_error(
                ServiceError(f"internal error: {type(exc).__name__}: {exc}")
            )

    def do_GET(self):  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 — http.server API
        self._dispatch("POST")

    def do_PUT(self):  # noqa: N802 — http.server API
        self._dispatch("PUT")

    def do_DELETE(self):  # noqa: N802 — http.server API
        self._dispatch("DELETE")


class PartitionService:
    """The running service: HTTP server + handlers + job pool.

    Parameters
    ----------
    config:
        the :class:`~repro.service.handlers.ServiceConfig`; ``port=0``
        binds an ephemeral port (read it back from :attr:`port`).

    Use as a context manager (tests, benchmarks) or call
    :meth:`serve_forever` from a CLI process.  :meth:`close` shuts the
    socket, stops the worker pool and removes a service-owned cache
    directory.
    """

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self.config = config or ServiceConfig()
        self.api = ServiceHandlers(self.config)
        try:
            self._httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), _RequestHandler
            )
        except OSError:
            # e.g. EADDRINUSE: the handlers already own worker threads
            # and possibly a temp cache dir — release them, don't leak.
            self.api.close()
            raise
        self._httpd.api = self.api
        self._httpd.daemon_threads = True
        self._thread: "threading.Thread | None" = None
        self._serving = False

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the real one)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:8080``."""
        return f"http://{self.config.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI path)."""
        self._serving = True
        self._httpd.serve_forever()

    def start(self) -> "PartitionService":
        """Serve on a daemon thread (embedded/test path)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="partition-service", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release every resource (idempotent)."""
        if self._serving:
            # shutdown() handshakes with a serve loop; calling it on a
            # never-served instance would block forever.
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.api.close()

    def __enter__(self) -> "PartitionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def make_server(config: "ServiceConfig | None" = None) -> PartitionService:
    """Build (without starting) a :class:`PartitionService`.

    Parameters
    ----------
    config:
        service knobs; defaults bind ``127.0.0.1:8080`` with a private
        temporary cache directory and 2 partition workers.

    Returns
    -------
    PartitionService
        ready for :meth:`~PartitionService.start` (background thread) or
        :meth:`~PartitionService.serve_forever` (foreground).
    """
    return PartitionService(config)


def serve(config: "ServiceConfig | None" = None) -> int:
    """Foreground entry point behind ``hyperpraw-repro serve``.

    Prints the bound URL (so scripts can wait for readiness), serves
    until interrupted, and always tears down the worker pool and any
    service-owned cache directory.

    Returns
    -------
    int
        process exit code (0 on clean shutdown / Ctrl-C).
    """
    service = make_server(config)
    print(f"serving on {service.url} (Ctrl-C to stop)", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0
