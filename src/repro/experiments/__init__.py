"""Experiment drivers — one module per table/figure of the paper.

Each driver is a pure function taking an
:class:`~repro.experiments.common.ExperimentContext` and returning a
result dataclass with (a) the raw data series and (b) a ``render()``
method producing the paper-style text table / heatmap.  The CLI
(``hyperpraw-repro``) and the benchmark suite under ``benchmarks/`` are
thin wrappers over these drivers, so "regenerate Figure 5" is a single
function call with a seeded context.

==================  =====================================================
module              reproduces
==================  =====================================================
``table1``          Table 1 — dataset statistics (stand-ins vs paper)
``figure1``         Fig. 1A/1B — profiled bandwidth vs naive traffic
``figure3``         Fig. 3 — refinement-strategy partition histories
``figure4``         Fig. 4A-C — quality metrics across 10 instances
``figure5``         Fig. 5 — synthetic benchmark runtimes + speedups
``figure6``         Fig. 6A-D — bandwidth vs per-partitioner traffic
``ablations``       extra design-choice sweeps called out in DESIGN.md
==================  =====================================================
"""

from repro.experiments.common import ExperimentContext, default_partitioners
from repro.experiments import table1, figure1, figure3, figure4, figure5, figure6, ablations

__all__ = [
    "ExperimentContext",
    "default_partitioners",
    "table1",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "ablations",
]
