"""Shared experiment context and partitioner roster.

The paper's evaluation fixes one machine (ARCHER, 576 cores over 24
nodes), one tolerance, and three partitioners.  :class:`ExperimentContext`
bundles the analogous simulated choices so that every figure driver runs
against the same world; the defaults are laptop-sized (96 simulated cores
over 4 nodes, instance scale 1.0) and everything scales up or down from
the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.architecture.bandwidth import BandwidthModel, archer_like_bandwidth
from repro.architecture.topology import MachineTopology, archer_like_topology
from repro.bench.runner import ExperimentRunner, JobContext
from repro.core.base import Partitioner
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.hypergraph.model import Hypergraph
from repro.hypergraph.suite import benchmark_suite, instance_names
from repro.partitioning.multilevel import MultilevelRB

__all__ = ["ExperimentContext", "default_partitioners"]

#: Canonical algorithm names used across all figures, in plot order.
ALGORITHMS = ("multilevel-rb", "hyperpraw-basic", "hyperpraw-aware")


def default_partitioners(
    *, imbalance_tolerance: float = 1.1, max_iterations: int = 100
) -> "dict[str, Partitioner]":
    """The paper's three contenders with matched balance tolerances."""
    cfg = HyperPRAWConfig(
        imbalance_tolerance=imbalance_tolerance, max_iterations=max_iterations
    )
    return {
        "multilevel-rb": MultilevelRB(imbalance_tolerance=imbalance_tolerance),
        "hyperpraw-basic": HyperPRAW.basic(cfg),
        "hyperpraw-aware": HyperPRAW.aware(cfg),
    }


@dataclass
class ExperimentContext:
    """Simulated world shared by all experiment drivers.

    Attributes
    ----------
    num_nodes:
        ARCHER-like nodes (24 cores each).  The paper used 24 nodes (576
        cores); the default 4 (96 cores) keeps full-suite runs in minutes.
    scale:
        dataset scale multiplier passed to the suite loader.
    num_jobs / iterations:
        the paper's 3 jobs x 2 iterations protocol.
    seed:
        master seed; everything derives from it.
    instances:
        subset of instance names (default: all ten).
    message_bytes / timesteps / sim_model:
        synthetic benchmark parameters.
    """

    num_nodes: int = 4
    scale: float = 1.0
    num_jobs: int = 3
    iterations: int = 2
    seed: int = 20190805
    instances: "list[str] | None" = None
    message_bytes: int = 1024
    timesteps: int = 10
    sim_model: str = "blocking"
    imbalance_tolerance: float = 1.1
    max_iterations: int = 100

    # ------------------------------------------------------------------
    def topology(self) -> MachineTopology:
        return archer_like_topology(num_nodes=self.num_nodes)

    @property
    def num_parts(self) -> int:
        return self.topology().num_units

    def bandwidth_model(self) -> BandwidthModel:
        return archer_like_bandwidth(self.topology())

    def runner(self, **overrides) -> ExperimentRunner:
        """Experiment runner bound to this context's world."""
        kwargs = dict(
            num_jobs=self.num_jobs,
            iterations=self.iterations,
            message_bytes=self.message_bytes,
            timesteps=self.timesteps,
            sim_model=self.sim_model,
            seed=self.seed,
        )
        kwargs.update(overrides)
        return ExperimentRunner(self.bandwidth_model(), **kwargs)

    def load_suite(self) -> "dict[str, Hypergraph]":
        names = self.instances if self.instances is not None else instance_names()
        return benchmark_suite(scale=self.scale, names=names)

    def partitioners(self) -> "dict[str, Partitioner]":
        return default_partitioners(
            imbalance_tolerance=self.imbalance_tolerance,
            max_iterations=self.max_iterations,
        )

    def one_job(self) -> JobContext:
        """A single profiled job (figures that need just one machine)."""
        return self.runner(num_jobs=1).make_jobs()[0]
