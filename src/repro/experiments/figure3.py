"""Figure 3 — effect of the refinement phase.

For four hypergraphs the paper plots the partitioning-communication-cost
history of three stopping strategies:

* **no refinement** — stop at the first pass within imbalance tolerance;
* **refinement 1.0** — keep streaming with alpha frozen until PC stops
  improving;
* **refinement 0.95** — keep streaming with alpha *decayed* by 0.95 per
  pass (the winning strategy).

The expected shape (paper Section 6.1): both refinement strategies beat
no-refinement, and 0.95 reaches the lowest final cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.experiments.common import ExperimentContext
from repro.hypergraph.suite import FIGURE3_INSTANCES, load_instance
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = ["Figure3Result", "run", "STRATEGIES"]

#: strategy name -> config factory, in the paper's plot order.
STRATEGIES = {
    "no-refinement": HyperPRAWConfig.paper_no_refinement,
    "refinement-1.0": HyperPRAWConfig.paper_refinement_100,
    "refinement-0.95": HyperPRAWConfig.paper_refinement_095,
}


@dataclass
class Figure3Result:
    """Per-instance, per-strategy PC-cost histories.

    ``histories[instance][strategy]`` is a list of ``(iteration,
    pc_cost)`` pairs; ``final_costs`` collapses each to its last value.
    """

    histories: dict
    final_costs: dict

    def strategy_ordering_ok(self, instance: str) -> bool:
        """True when refinement 0.95 <= refinement 1.0 <= no refinement."""
        c = self.final_costs[instance]
        return (
            c["refinement-0.95"] <= c["refinement-1.0"] + 1e-9
            and c["refinement-1.0"] <= c["no-refinement"] + 1e-9
        )

    def render(self) -> str:
        rows = []
        for inst, costs in self.final_costs.items():
            rows.append(
                [
                    inst,
                    round(costs["no-refinement"], 0),
                    round(costs["refinement-1.0"], 0),
                    round(costs["refinement-0.95"], 0),
                    "yes" if self.strategy_ordering_ok(inst) else "NO",
                ]
            )
        table = format_table(
            ["hypergraph", "no refinement", "refinement 1.0", "refinement 0.95", "paper order?"],
            rows,
            title="Figure 3 — final partitioning communication cost by strategy",
        )
        series = ["", "histories (iteration:pc_cost, first 12 passes):"]
        for inst, by_strategy in self.histories.items():
            for strat, hist in by_strategy.items():
                pts = " ".join(f"{i}:{c:.3g}" for i, c in hist[:12])
                series.append(f"  {inst} / {strat}: {pts}")
        return table + "\n" + "\n".join(series)


def run(
    ctx: "ExperimentContext | None" = None,
    *,
    instances: "tuple | None" = None,
) -> Figure3Result:
    """Run the three stopping strategies on the Figure 3 instances."""
    ctx = ctx or ExperimentContext()
    names = instances if instances is not None else FIGURE3_INSTANCES
    job = ctx.one_job()
    histories: dict = {}
    final_costs: dict = {}
    for name in names:
        hg = load_instance(name, scale=ctx.scale)
        histories[name] = {}
        final_costs[name] = {}
        for strat, cfg_factory in STRATEGIES.items():
            cfg = cfg_factory().with_(
                imbalance_tolerance=ctx.imbalance_tolerance,
                max_iterations=ctx.max_iterations,
            )
            result = HyperPRAW.aware(cfg).partition(
                hg,
                ctx.num_parts,
                cost_matrix=job.cost_matrix,
                seed=derive_seed(ctx.seed, "fig3", name, strat),
            )
            iters, costs = result.history_series()
            histories[name][strat] = list(zip(iters, costs))
            final_costs[name][strat] = result.metadata["final_pc_cost"]
    return Figure3Result(histories=histories, final_costs=final_costs)
