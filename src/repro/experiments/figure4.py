"""Figure 4 — static quality of the partitions.

Three panels over the 10 instances and 3 partitioners:

* 4A hyperedge cut, 4B SOED, 4C partitioning communication cost.

The paper's expected shape: cut comparable (Zoltan often best), SOED
mixed, and PC cost — the architecture-weighted metric — better for both
HyperPRAW variants on *every* instance, with aware < basic.

Quality is measured on the assignment *as it runs on the machine*: blind
partitioners get the same random rank mapping the runtime experiment
uses (their own part numbering carries no placement information), while
aware's mapping is the identity by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.runner import ExperimentRunner
from repro.core.metrics import evaluate_partition
from repro.experiments.common import ExperimentContext
from repro.utils.tables import format_table

__all__ = ["Figure4Result", "run"]

_METRICS = ("hyperedge_cut", "soed", "pc_cost")


@dataclass
class Figure4Result:
    """``values[metric][(instance, algorithm)] -> float``."""

    values: dict
    instances: list
    algorithms: list

    def panel(self, metric: str) -> list:
        rows = []
        for inst in self.instances:
            rows.append(
                [inst] + [round(self.values[metric][(inst, a)], 1) for a in self.algorithms]
            )
        return rows

    def aware_wins_pc_everywhere(self) -> bool:
        """Paper claim: both variants beat the baseline on PC cost on all
        instances, and aware is at least as good as basic overall."""
        pc = self.values["pc_cost"]
        return all(
            pc[(i, "hyperpraw-aware")] <= pc[(i, "multilevel-rb")]
            for i in self.instances
        )

    def render(self) -> str:
        titles = {
            "hyperedge_cut": "Figure 4A — hyperedge cut",
            "soed": "Figure 4B — sum of external degrees (SOED)",
            "pc_cost": "Figure 4C — partitioning communication cost",
        }
        blocks = []
        for metric in _METRICS:
            blocks.append(
                format_table(
                    ["hypergraph"] + list(self.algorithms),
                    self.panel(metric),
                    title=titles[metric],
                )
            )
        return "\n\n".join(blocks)


def run(ctx: "ExperimentContext | None" = None) -> Figure4Result:
    """Partition the whole suite with all three algorithms on one job."""
    ctx = ctx or ExperimentContext()
    runner = ctx.runner(num_jobs=1)
    job = runner.make_jobs()[0]
    suite = ctx.load_suite()
    partitioners = ctx.partitioners()
    values: dict = {m: {} for m in _METRICS}
    for inst, hg in suite.items():
        for algo, partitioner in partitioners.items():
            from repro.utils.rng import derive_seed

            result = partitioner.partition(
                hg,
                ctx.num_parts,
                cost_matrix=job.cost_matrix,
                seed=derive_seed(ctx.seed, "fig4", inst, algo),
            )
            assignment = runner._map_to_ranks(result, job.job_id, inst, algo)
            q = evaluate_partition(
                hg, assignment, ctx.num_parts, job.cost_matrix, algorithm=algo
            )
            values["hyperedge_cut"][(inst, algo)] = q.hyperedge_cut
            values["soed"][(inst, algo)] = q.soed
            values["pc_cost"][(inst, algo)] = q.pc_cost
    return Figure4Result(
        values=values,
        instances=list(suite.keys()),
        algorithms=list(partitioners.keys()),
    )
