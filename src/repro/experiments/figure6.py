"""Figure 6 — traffic patterns vs the machine's bandwidth structure.

6A: the job's peer-to-peer bandwidth heatmap.
6B–D: the synthetic benchmark's traffic matrix on the sparsine hypergraph
under the multilevel baseline, HyperPRAW-basic and HyperPRAW-aware.

The paper's observation: the first two are uniformly random — they ignore
the machine — while HyperPRAW-aware's traffic visibly mirrors the
bandwidth blocks.  We report the same qualitative heatmaps plus two
quantitative summaries: traffic/bandwidth correlation and the fraction of
bytes carried by top-quartile links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.synthetic import SyntheticBenchmark
from repro.experiments.common import ExperimentContext
from repro.hypergraph.suite import load_instance
from repro.utils.heatmap import ascii_heatmap
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = ["Figure6Result", "run"]


@dataclass
class Figure6Result:
    """Bandwidth matrix plus per-partitioner traffic matrices/affinities."""

    bandwidth_mbs: np.ndarray
    traffic: dict
    affinities: dict
    fast_fractions: dict
    instance: str

    def aware_most_aligned(self) -> bool:
        """Paper claim: only the aware variant's traffic tracks bandwidth."""
        aware = self.affinities["hyperpraw-aware"]
        others = [v for k, v in self.affinities.items() if k != "hyperpraw-aware"]
        return all(aware > v for v in others)

    def render(self, *, max_size: int = 48) -> str:
        parts = [
            ascii_heatmap(
                self.bandwidth_mbs,
                title="Figure 6A — peer-to-peer bandwidth (log10 MB/s)",
                max_size=max_size,
            )
        ]
        panel = {"multilevel-rb": "6B", "hyperpraw-basic": "6C", "hyperpraw-aware": "6D"}
        for algo, matrix in self.traffic.items():
            parts.append("")
            parts.append(
                ascii_heatmap(
                    matrix,
                    title=(
                        f"Figure {panel.get(algo, '6?')} — {self.instance} traffic "
                        f"under {algo} (log10 bytes)"
                    ),
                    max_size=max_size,
                )
            )
        rows = [
            [a, round(self.affinities[a], 3), round(self.fast_fractions[a], 3)]
            for a in self.traffic
        ]
        parts.append("")
        parts.append(
            format_table(
                ["algorithm", "traffic/bandwidth corr", "bytes on top-25% links"],
                rows,
                title="alignment summary",
            )
        )
        return "\n".join(parts)


def run(ctx: "ExperimentContext | None" = None, *, instance: str = "sparsine") -> Figure6Result:
    """Run the benchmark under all three partitioners on one job."""
    ctx = ctx or ExperimentContext()
    runner = ctx.runner(num_jobs=1)
    job = runner.make_jobs()[0]
    hg = load_instance(instance, scale=ctx.scale)
    p = ctx.num_parts
    bench = SyntheticBenchmark(
        job.link_model,
        message_bytes=ctx.message_bytes,
        timesteps=ctx.timesteps,
        model=ctx.sim_model,
    )
    traffic: dict = {}
    affinities: dict = {}
    fast_fractions: dict = {}
    for algo, partitioner in ctx.partitioners().items():
        result = partitioner.partition(
            hg,
            p,
            cost_matrix=job.cost_matrix,
            seed=derive_seed(ctx.seed, "fig6", instance, algo),
        )
        assignment = runner._map_to_ranks(result, job.job_id, instance, algo)
        outcome = bench.run(hg, assignment, p)
        traffic[algo] = outcome.trace.bytes_matrix
        affinities[algo] = outcome.trace.bandwidth_affinity(
            job.link_model.bandwidth_mbs
        )
        fast_fractions[algo] = outcome.trace.fraction_on_fast_links(
            job.link_model.bandwidth_mbs
        )
    return Figure6Result(
        bandwidth_mbs=job.measured_bandwidth,
        traffic=traffic,
        affinities=affinities,
        fast_fractions=fast_fractions,
        instance=instance,
    )
