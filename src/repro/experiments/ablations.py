"""Design-choice ablations beyond the paper's figures.

The paper names several tunables without sweeping them (refinement
factor, the 1.7 tempering update, the ambiguous Eq. 3 threshold, stream
order) and relies on profiling accuracy without quantifying it.  These
drivers fill those gaps; each returns ``{parameter_value: final PC cost}``
(or runtime) on a chosen instance so benchmarks can chart sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.architecture.profiling import RingProfiler
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.experiments.common import ExperimentContext
from repro.hypergraph.suite import load_instance
from repro.utils.rng import derive_seed
from repro.utils.tables import format_kv

__all__ = [
    "AblationResult",
    "refinement_factor_sweep",
    "alpha_update_sweep",
    "presence_threshold_sweep",
    "stream_order_sweep",
    "alpha_initial_sweep",
    "profiling_noise_sweep",
    "tolerance_sweep",
]


@dataclass
class AblationResult:
    """One sweep: ``values[parameter] -> final PC cost``."""

    name: str
    instance: str
    values: dict

    def best(self):
        return min(self.values, key=self.values.get)

    def render(self) -> str:
        return format_kv(
            self.values,
            title=f"ablation: {self.name} on {self.instance} (final PC cost)",
        )


def _run_config(ctx, hg, cfg, job, tag) -> float:
    result = HyperPRAW.aware(cfg).partition(
        hg,
        ctx.num_parts,
        cost_matrix=job.cost_matrix,
        seed=derive_seed(ctx.seed, "ablation", tag),
    )
    return float(result.metadata["final_pc_cost"])


def refinement_factor_sweep(
    ctx: "ExperimentContext | None" = None,
    *,
    instance: str = "2cubes_sphere",
    factors=(0.85, 0.9, 0.95, 1.0, 1.05),
) -> AblationResult:
    """Sweep the refinement factor (the paper compares only 1.0 / 0.95)."""
    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    job = ctx.one_job()
    values = {
        f: _run_config(
            ctx, hg, HyperPRAWConfig(refinement_factor=f), job, f"rf-{f}"
        )
        for f in factors
    }
    return AblationResult("refinement_factor", instance, values)


def alpha_update_sweep(
    ctx: "ExperimentContext | None" = None,
    *,
    instance: str = "2cubes_sphere",
    updates=(1.2, 1.5, 1.7, 2.0, 3.0),
) -> AblationResult:
    """Sweep the tempering update (paper fixes 1.7)."""
    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    job = ctx.one_job()
    values = {
        u: _run_config(ctx, hg, HyperPRAWConfig(alpha_update=u), job, f"au-{u}")
        for u in updates
    }
    return AblationResult("alpha_update", instance, values)


def presence_threshold_sweep(
    ctx: "ExperimentContext | None" = None, *, instance: str = "sparsine"
) -> AblationResult:
    """Eq. 3 ambiguity: X_j >= 1 (prose) vs X_j > 1 (literal formula)."""
    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    job = ctx.one_job()
    values = {
        t: _run_config(
            ctx, hg, HyperPRAWConfig(presence_threshold=t), job, f"pt-{t}"
        )
        for t in (1, 2)
    }
    return AblationResult("presence_threshold", instance, values)


def stream_order_sweep(
    ctx: "ExperimentContext | None" = None, *, instance: str = "2cubes_sphere"
) -> AblationResult:
    """Natural vertex order vs one fixed shuffle."""
    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    job = ctx.one_job()
    values = {
        order: _run_config(
            ctx, hg, HyperPRAWConfig(stream_order=order), job, f"so-{order}"
        )
        for order in ("natural", "shuffled")
    }
    return AblationResult("stream_order", instance, values)


def alpha_initial_sweep(
    ctx: "ExperimentContext | None" = None, *, instance: str = "2cubes_sphere"
) -> AblationResult:
    """The printed initial-alpha formula vs FENNEL's (see schedule docs)."""
    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    job = ctx.one_job()
    values = {
        mode: _run_config(
            ctx, hg, HyperPRAWConfig(alpha_initial=mode), job, f"ai-{mode}"
        )
        for mode in ("paper", "fennel")
    }
    return AblationResult("alpha_initial", instance, values)


def profiling_noise_sweep(
    ctx: "ExperimentContext | None" = None,
    *,
    instance: str = "sat14_itox_vc1130_dual",
    noises=(0.0, 0.05, 0.15, 0.4),
) -> AblationResult:
    """How much measurement noise can the cost matrix absorb?

    The aware variant is re-run with increasingly noisy profiled matrices
    over the *same* ground-truth machine; the metric is the true-cost PC
    (evaluated with the noise-free matrix).
    """
    from repro.architecture.cost import cost_matrix_from_bandwidth
    from repro.core.metrics import partitioning_comm_cost
    from repro.simcomm.network import LinkModel

    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    bw, lat = ctx.bandwidth_model().matrices(seed=derive_seed(ctx.seed, "abl-noise"))
    link = LinkModel(bw, lat)
    true_cost = cost_matrix_from_bandwidth(bw)
    values = {}
    for noise in noises:
        profiler = RingProfiler(link, repeats=1, measurement_noise=noise)
        profile = profiler.profile(seed=derive_seed(ctx.seed, "abl-noise", str(noise)))
        result = HyperPRAW.aware().partition(
            hg,
            ctx.num_parts,
            cost_matrix=profile.cost_matrix(),
            seed=derive_seed(ctx.seed, "abl-noise-run", str(noise)),
        )
        values[noise] = partitioning_comm_cost(
            hg, result.assignment, ctx.num_parts, true_cost
        )
    return AblationResult("profiling_noise", instance, values)


def tolerance_sweep(
    ctx: "ExperimentContext | None" = None,
    *,
    instance: str = "2cubes_sphere",
    tolerances=(1.02, 1.05, 1.1, 1.2, 1.5),
) -> AblationResult:
    """Imbalance tolerance vs achievable PC cost (looser = cheaper comm)."""
    ctx = ctx or ExperimentContext()
    hg = load_instance(instance, scale=ctx.scale)
    job = ctx.one_job()
    values = {
        t: _run_config(
            ctx, hg, HyperPRAWConfig(imbalance_tolerance=t), job, f"tol-{t}"
        )
        for t in tolerances
    }
    return AblationResult("imbalance_tolerance", instance, values)
