"""Command-line front end: ``hyperpraw-repro``.

Regenerates any table/figure of the paper from the terminal::

    hyperpraw-repro table1
    hyperpraw-repro figure5 --nodes 4 --scale 0.5 --jobs 1 --iterations 1
    hyperpraw-repro all --scale 0.25

Every command accepts the shared world parameters (``--nodes``,
``--scale``, ``--seed``, ...) and prints the paper-style text rendering.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ExperimentContext,
    ablations,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
)

__all__ = ["main", "build_parser"]

_COMMANDS = ("table1", "figure1", "figure3", "figure4", "figure5", "figure6", "ablations", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperpraw-repro",
        description="Reproduce the tables and figures of the HyperPRAW paper (ICPP 2019).",
    )
    parser.add_argument("command", choices=_COMMANDS, help="which artefact to regenerate")
    parser.add_argument("--nodes", type=int, default=4, help="simulated ARCHER-like nodes (24 cores each)")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale multiplier")
    parser.add_argument("--jobs", type=int, default=3, help="simulated job allocations")
    parser.add_argument("--iterations", type=int, default=2, help="benchmark iterations per job")
    parser.add_argument("--seed", type=int, default=20190805, help="master seed")
    parser.add_argument("--timesteps", type=int, default=10, help="benchmark timesteps")
    parser.add_argument("--message-bytes", type=int, default=1024, help="payload per logical message")
    parser.add_argument(
        "--sim-model",
        choices=("blocking", "overlap", "endpoint"),
        default="blocking",
        help="cluster simulator timing model",
    )
    parser.add_argument(
        "--instances",
        nargs="*",
        default=None,
        help="restrict to these suite instances (default: all ten)",
    )
    parser.add_argument(
        "--max-iterations", type=int, default=100, help="HyperPRAW restreaming cap"
    )
    return parser


def context_from_args(args) -> ExperimentContext:
    return ExperimentContext(
        num_nodes=args.nodes,
        scale=args.scale,
        num_jobs=args.jobs,
        iterations=args.iterations,
        seed=args.seed,
        instances=args.instances,
        message_bytes=args.message_bytes,
        timesteps=args.timesteps,
        sim_model=args.sim_model,
        max_iterations=args.max_iterations,
    )


def _run_ablations(ctx: ExperimentContext) -> str:
    parts = [
        ablations.refinement_factor_sweep(ctx).render(),
        ablations.alpha_update_sweep(ctx).render(),
        ablations.presence_threshold_sweep(ctx).render(),
        ablations.stream_order_sweep(ctx).render(),
        ablations.alpha_initial_sweep(ctx).render(),
        ablations.profiling_noise_sweep(ctx).render(),
        ablations.tolerance_sweep(ctx).render(),
    ]
    return "\n\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    ctx = context_from_args(args)
    runners = {
        "table1": lambda: table1.run(ctx).render(),
        "figure1": lambda: figure1.run(ctx).render(),
        "figure3": lambda: figure3.run(ctx).render(),
        "figure4": lambda: figure4.run(ctx).render(),
        "figure5": lambda: figure5.run(ctx).render(),
        "figure6": lambda: figure6.run(ctx).render(),
        "ablations": lambda: _run_ablations(ctx),
    }
    if args.command == "all":
        for name in ("table1", "figure1", "figure3", "figure4", "figure5", "figure6"):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            print(runners[name]())
        return 0
    print(runners[args.command]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
