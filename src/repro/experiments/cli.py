"""Command-line front end: ``hyperpraw-repro``.

Regenerates any table/figure of the paper from the terminal::

    hyperpraw-repro table1
    hyperpraw-repro figure5 --nodes 4 --scale 0.5 --jobs 1 --iterations 1
    hyperpraw-repro all --scale 0.25

and runs the out-of-core streaming scenario::

    hyperpraw-repro stream                          # suite stress instance
    hyperpraw-repro stream --instances sparsine --scale 0.5 --chunk-size 256
    hyperpraw-repro stream --stream-input big.hgr   # partition a real file
    hyperpraw-repro stream --workers 4              # parallel sharded streaming
    hyperpraw-repro stream --pin-budget 1000000     # pin-bounded chunking
    hyperpraw-repro stream --stream-input big.hgr --cache ~/.hyperpraw-cache
                                                    # replay the binary chunk
                                                    # store on the second run

and converts a text hypergraph into a persistent binary chunk store
(ingest once, restream many — see docs/formats.md)::

    hyperpraw-repro convert --stream-input big.hgr
    hyperpraw-repro convert --stream-input big.mtx --store big.chunkstore

and boots the streaming partition service (upload hypergraphs over
HTTP, poll for assignments — see docs/service.md)::

    hyperpraw-repro serve --port 8080 --cache-dir ~/.hyperpraw-cache
    hyperpraw-repro serve --port 0 --workers 4   # ephemeral port, 4 job workers

and runs distributed partitioning across worker processes over TCP
(see docs/cluster.md)::

    hyperpraw-repro worker --port 7101 --seed 11        # on each host
    hyperpraw-repro cluster --hosts hostA:7101 hostB:7101 \
        --stream-input big.hgr                          # on the coordinator

Every command accepts the shared world parameters (``--nodes``,
``--scale``, ``--seed``, ...) and prints the paper-style text rendering.
The console script is installed by ``pip install -e .`` (see setup.py);
``python -m repro.experiments.cli`` works from a source tree.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import (
    ExperimentContext,
    ablations,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
)

__all__ = ["main", "build_parser"]

_COMMANDS = (
    "table1",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "ablations",
    "stream",
    "convert",
    "serve",
    "worker",
    "cluster",
    "all",
)


def _positive_int(value: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--workers``)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _resolved_dir(value: str) -> str:
    """argparse type for directory flags: normalise once, at parse time.

    A relative directory would otherwise resolve against the CWD at each
    *use* site (``cached_stream`` calls ``store_dir_for`` per open, the
    service resolves its cache at startup), so a ``convert`` in one
    directory and a later ``stream --cache`` from another would silently
    talk to different stores.  Pinning the absolute path here makes the
    invocation directory the one and only anchor.
    """
    return str(Path(value).expanduser().resolve())


def _resolved_path(value: str) -> str:
    """argparse type for file flags: same parse-time anchoring as
    :func:`_resolved_dir` (a worker launched with a relative
    ``--log-file`` must not scatter logs across whatever directory it
    later runs from)."""
    return str(Path(value).expanduser().resolve())


def _family_names() -> "tuple[str, ...]":
    from repro.partitioning.families import family_names

    return family_names()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperpraw-repro",
        description="Reproduce the tables and figures of the HyperPRAW paper (ICPP 2019).",
    )
    parser.add_argument("command", choices=_COMMANDS, help="which artefact to regenerate")
    parser.add_argument("--nodes", type=int, default=4, help="simulated ARCHER-like nodes (24 cores each)")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale multiplier")
    parser.add_argument("--jobs", type=int, default=3, help="simulated job allocations")
    parser.add_argument("--iterations", type=int, default=2, help="benchmark iterations per job")
    parser.add_argument("--seed", type=int, default=20190805, help="master seed")
    parser.add_argument("--timesteps", type=int, default=10, help="benchmark timesteps")
    parser.add_argument("--message-bytes", type=int, default=1024, help="payload per logical message")
    parser.add_argument(
        "--sim-model",
        choices=("blocking", "overlap", "endpoint"),
        default="blocking",
        help="cluster simulator timing model",
    )
    parser.add_argument(
        "--instances",
        nargs="*",
        default=None,
        help="restrict to these suite instances (default: all ten)",
    )
    parser.add_argument(
        "--max-iterations", type=int, default=100, help="HyperPRAW restreaming cap"
    )
    stream_group = parser.add_argument_group("stream", "out-of-core streaming scenario")
    stream_group.add_argument(
        "--chunk-size", type=int, default=512, help="vertices per streamed chunk"
    )
    stream_group.add_argument(
        "--buffer-fractions",
        type=float,
        nargs="*",
        default=(0.125, 0.5, 1.0),
        help="BufferedRestreamer window sizes as fractions of |V|",
    )
    stream_group.add_argument(
        "--max-tracked-edges",
        type=int,
        default=None,
        help="cap on the streaming presence table (default: unbounded)",
    )
    stream_group.add_argument(
        "--stream-input",
        default=None,
        metavar="PATH",
        help="partition this hMetis (.hgr/.hmetis) or MatrixMarket (.mtx) "
        "file out-of-core instead of running the suite comparison",
    )
    stream_group.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="stream/convert: parallel sharded streaming workers (>1 also "
        "prints the worker-scaling report for suite instances; default 1). "
        "serve: size of the async partition job pool (default 2)",
    )
    stream_group.add_argument(
        "--shard-payload",
        choices=("boundary", "full"),
        default="boundary",
        help="what sharded workers ship at the merge: only their locally "
        "detected boundary presence-table rows (default) or whole tables "
        "(same assignments, more bytes — for measurement)",
    )
    stream_group.add_argument(
        "--shard-by",
        choices=("pins", "chunks"),
        default="pins",
        help="'pins' (default) rebalances sharded worker ranges by "
        "cumulative pin count when the uniform split would straggle; "
        "'chunks' always splits by chunk count",
    )
    stream_group.add_argument(
        "--kernel",
        choices=("auto", "python", "njit"),
        default="auto",
        help="pass-kernel implementation: 'auto' (default) compiles the "
        "dense vertex-exact inner loop with numba when installed "
        "(pip install hyperpraw-repro[fast]), 'python' forces the "
        "bit-for-bit reference loop, 'njit' requires the compiled "
        "kernel and warns on fallback",
    )
    stream_group.add_argument(
        "--partitioner",
        choices=_family_names(),
        default=None,
        help="stream: run only this registered partitioner family on the "
        "suite --instances or on --stream-input (default: the streaming "
        "comparison ladder); the choices are the "
        "repro.partitioning.families registry",
    )
    stream_group.add_argument(
        "--refine",
        action="store_true",
        help="stream: polish each result with FM-style boundary "
        "refinement (PolishedStreamer; works with any family)",
    )
    stream_group.add_argument(
        "--refine-passes",
        type=_positive_int,
        default=4,
        metavar="N",
        help="maximum refinement propose/apply rounds (--refine)",
    )
    stream_group.add_argument(
        "--pin-budget",
        type=int,
        default=None,
        metavar="PINS",
        help="cut streamed chunk boundaries by resident pins instead of "
        "a fixed vertex count (hub-dominated graphs)",
    )
    stream_group.add_argument(
        "--cache",
        default=None,
        type=_resolved_dir,
        metavar="DIR",
        help="chunk-store cache directory for --stream-input: the first "
        "run converts the file into a persistent binary store, later "
        "runs replay it and skip the text parser entirely (resolved "
        "against the invocation directory once, at parse time)",
    )
    stream_group.add_argument(
        "--store",
        default=None,
        type=_resolved_dir,
        metavar="DIR",
        help="convert: output chunk-store directory "
        "(default: <input>.chunkstore next to the input)",
    )
    serve_group = parser.add_argument_group(
        "serve", "streaming partition service (docs/service.md)"
    )
    serve_group.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve/worker: bind address (default 127.0.0.1)",
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=8080,
        help="serve/worker: TCP port; 0 binds an ephemeral port "
        "(serve prints it; worker logs it in the 'listening' event)",
    )
    serve_group.add_argument(
        "--cache-dir",
        default=None,
        type=_resolved_dir,
        metavar="DIR",
        help="serve: persistent directory for digest-keyed chunk stores "
        "(default: a private temp directory dropped on exit); --workers "
        "sets the partition worker pool",
    )
    serve_group.add_argument(
        "--pool",
        choices=("auto", "process", "thread"),
        default="auto",
        help="serve: partition job execution — one forked child per job "
        "('process': N concurrent jobs use N cores), inline on worker "
        "threads ('thread'), or 'auto' (default: process where fork "
        "exists)",
    )
    serve_group.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="serve: refuse async partition jobs beyond N queued "
        "(429 queue_full + Retry-After); default: unbounded",
    )
    serve_group.add_argument(
        "--api-key-file",
        default=None,
        metavar="FILE",
        help="serve: require API keys, one per line ('#' comments); "
        "merged with the REPRO_API_KEYS environment variable "
        "(comma-separated). Without either, the service is open",
    )
    serve_group.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="serve: per-key token-bucket rate limit in requests/second "
        "(429 rate_limited beyond it; needs API keys); default: off",
    )
    serve_group.add_argument(
        "--rate-burst",
        type=float,
        default=10.0,
        metavar="N",
        help="serve: token-bucket burst capacity per key (default 10)",
    )
    serve_group.add_argument(
        "--store-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="serve: byte budget for the chunk-store directory; coldest "
        "unpinned stores are LRU-evicted beyond it (evicted digests "
        "answer 409 store_evicted until re-uploaded); default: unbounded",
    )
    cluster_group = parser.add_argument_group(
        "cluster", "multi-node distributed partitioning (docs/cluster.md)"
    )
    cluster_group.add_argument(
        "--hosts",
        nargs="+",
        default=None,
        metavar="HOST:PORT",
        help="cluster: worker endpoints; each drives one shard "
        "(the worker count is the endpoint count)",
    )
    cluster_group.add_argument(
        "--ship",
        choices=("chunks", "text"),
        default="chunks",
        help="cluster: ship decoded chunk frames per shard (default) or "
        "broadcast the raw text for workers to ingest off the socket",
    )
    cluster_group.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="cluster: per-socket-operation straggler timeout in seconds",
    )
    cluster_group.add_argument(
        "--on-loss",
        choices=("degrade", "fail"),
        default="degrade",
        help="cluster: on worker loss, reconnect-or-run-the-shard-locally "
        "(default) or fail loudly",
    )
    cluster_group.add_argument(
        "--cluster-base",
        choices=("onepass", "buffered"),
        default="onepass",
        help="cluster: base streaming partitioner run on each worker",
    )
    cluster_group.add_argument(
        "--log-file",
        default=None,
        type=_resolved_path,
        metavar="PATH",
        help="worker: append JSONL events here as well as stdout "
        "(resolved against the invocation directory at parse time)",
    )
    cluster_group.add_argument(
        "--psk-file",
        default=None,
        type=_resolved_path,
        metavar="PATH",
        help="worker/cluster: pre-shared key file enabling the mutual "
        "HMAC handshake; both ends must point at the same key "
        "(docs/cluster.md, 'running on untrusted networks')",
    )
    cluster_group.add_argument(
        "--no-compress",
        action="store_true",
        help="cluster: disable zlib frame compression (v2 sessions "
        "compress by default; v1 peers never compress)",
    )
    cluster_group.add_argument(
        "--no-tailored",
        action="store_true",
        help="cluster: broadcast full boundary snapshots instead of "
        "shipping each worker only the rows its shard touches "
        "(the pre-v2 wire behaviour; results are bit-identical)",
    )
    return parser


def context_from_args(args) -> ExperimentContext:
    return ExperimentContext(
        num_nodes=args.nodes,
        scale=args.scale,
        num_jobs=args.jobs,
        iterations=args.iterations,
        seed=args.seed,
        instances=args.instances,
        message_bytes=args.message_bytes,
        timesteps=args.timesteps,
        sim_model=args.sim_model,
        max_iterations=args.max_iterations,
    )


def _run_stream(ctx: ExperimentContext, args) -> str:
    """The ``stream`` command: streamed-vs-in-memory comparison or a real
    out-of-core partition of a user-supplied file."""
    from repro.bench.streaming import compare_sharded, compare_streaming
    from repro.hypergraph.suite import STREAMING_INSTANCE, load_instance

    if args.stream_input:
        return _stream_file(ctx, args)
    names = ctx.instances if ctx.instances else [STREAMING_INSTANCE]
    job = ctx.one_job()
    if args.partitioner:
        return _stream_family(ctx, args, names, job)
    reports = []
    for name in names:
        hg = load_instance(name, scale=ctx.scale)
        report = compare_streaming(
            hg,
            ctx.num_parts,
            cost_matrix=job.cost_matrix,
            chunk_size=args.chunk_size,
            buffer_fractions=tuple(args.buffer_fractions),
            pin_budget=args.pin_budget,
            max_tracked_edges=args.max_tracked_edges,
            max_iterations=ctx.max_iterations,
            kernel=args.kernel,
            seed=ctx.seed,
        )
        reports.append(report.render())
        if args.workers > 1:
            ladder = tuple(sorted({1, args.workers}))
            sharded = compare_sharded(
                hg,
                ctx.num_parts,
                workers=ladder,
                cost_matrix=job.cost_matrix,
                chunk_size=args.chunk_size,
                pin_budget=args.pin_budget,
                max_tracked_edges=args.max_tracked_edges,
                max_iterations=ctx.max_iterations,
                payload=args.shard_payload,
                shard_by=args.shard_by,
                kernel=args.kernel,
                seed=ctx.seed,
            )
            reports.append(sharded.render())
    return "\n\n".join(reports)


def _stream_family(ctx: ExperimentContext, args, names, job) -> str:
    """Run one registered family (``--partitioner``) on suite instances.

    The default-configuration factory from the registry is used, so the
    printout matches what the invariant matrix and BENCH_FAMILIES pin;
    ``--refine`` attaches the FM polish exactly as the service's
    ``refine=1`` knob does.
    """
    from repro.core.metrics import evaluate_partition
    from repro.hypergraph.suite import load_instance
    from repro.partitioning.families import (
        PolishedStreamer,
        RefineConfig,
        get_family,
    )
    from repro.utils.tables import format_kv

    spec = get_family(args.partitioner)
    label = spec.name + ("+fm" if args.refine else "")
    sections = []
    for name in names:
        hg = load_instance(name, scale=ctx.scale)
        partitioner = spec.make(hg, args.workers)
        if args.refine:
            partitioner = PolishedStreamer(
                partitioner,
                refine=RefineConfig(
                    passes=args.refine_passes, workers=args.workers
                ),
            )
        result = partitioner.partition(
            hg, ctx.num_parts, cost_matrix=job.cost_matrix, seed=ctx.seed
        )
        quality = evaluate_partition(
            hg, result.assignment, ctx.num_parts, job.cost_matrix
        )
        md = result.metadata
        sections.append(
            format_kv(
                {
                    "vertices": hg.num_vertices,
                    "hyperedges": hg.num_edges,
                    "pins": hg.num_pins,
                    "hyperedge cut": quality.hyperedge_cut,
                    "pc cost": quality.pc_cost,
                    "imbalance": round(quality.imbalance, 4),
                    "wall time [s]": md.get("wall_time_s"),
                    **(
                        {
                            "refined cut": "%s -> %s"
                            % (
                                md.get("refine_cut_before"),
                                md.get("refine_cut_after"),
                            ),
                            "refine moves": md.get("refine_moves"),
                        }
                        if md.get("refined")
                        else {}
                    ),
                },
                title=f"{label} — {name} -> {ctx.num_parts} parts",
            )
        )
    return "\n\n".join(sections)


def _opener_for(path: Path):
    """The text-ingest constructor matching ``path``'s format."""
    from repro.streaming import stream_hmetis, stream_matrix_market

    return stream_matrix_market if path.suffix.lower() == ".mtx" else stream_hmetis


def _open_input(path: Path, args):
    """Open ``path`` as a chunk stream, through the store cache when asked.

    Returns ``(stream, via)``; ``via`` says whether the text parser ran
    (``"text ingest"``), the file was converted into the cache
    (``"chunk store (converted)"``) or a cached store was replayed with
    the parser skipped entirely (``"chunk store (replayed)"``).
    """
    opener = _opener_for(path)
    kwargs = dict(chunk_size=args.chunk_size, pin_budget=args.pin_budget)
    if args.cache:
        from repro.streaming.chunkstore import cached_stream

        stream, hit = cached_stream(path, args.cache, opener=opener, **kwargs)
        via = "chunk store (replayed)" if hit else "chunk store (converted)"
        return stream, via
    return opener(path, **kwargs), "text ingest"


def _stream_file(ctx: ExperimentContext, args) -> str:
    """Partition a file out-of-core and summarise the bounded-state run."""
    from repro.streaming import BufferedRestreamer, OnePassStreamer
    from repro.core.config import HyperPRAWConfig
    from repro.utils.tables import format_kv

    path = Path(args.stream_input)
    job = ctx.one_job()
    sections = []

    def buffered(stream):
        # Keep the demo honestly out-of-core: window the first listed
        # buffer fraction of the vertex set rather than everything.
        fractions = tuple(args.buffer_fractions) or (0.125,)
        buffer = max(1, int(round(fractions[0] * stream.num_vertices)))
        return BufferedRestreamer(
            HyperPRAWConfig(
                max_iterations=ctx.max_iterations,
                record_history=False,
                shard_payload=args.shard_payload,
                shard_by=args.shard_by,
                kernel=args.kernel,
            ),
            buffer_size=buffer,
            max_tracked_edges=args.max_tracked_edges,
            workers=args.workers,
        )

    if args.partitioner:
        from repro.partitioning.families import build_partitioner

        fractions = tuple(args.buffer_fractions) or (0.125,)
        spec = {
            "partitioner": args.partitioner,
            "scorer": "eq1",
            "gamma": 1.5,
            "kernel": args.kernel,
            "workers": args.workers,
            "shard_payload": args.shard_payload,
            "shard_by": args.shard_by,
            "buffer_fraction": fractions[0],
            "buffer_size": None,
            "max_tracked_edges": args.max_tracked_edges,
            "max_iterations": ctx.max_iterations,
            "refine": args.refine,
            "refine_passes": args.refine_passes,
        }
        contenders = [
            (
                args.partitioner + ("+fm" if args.refine else ""),
                lambda stream: build_partitioner(spec, stream.num_vertices),
            )
        ]
    else:
        contenders = [
            (
                "stream-onepass",
                lambda stream: OnePassStreamer(
                    max_tracked_edges=args.max_tracked_edges,
                    workers=args.workers,
                    shard_payload=args.shard_payload,
                    shard_by=args.shard_by,
                    kernel=args.kernel,
                ),
            ),
            ("stream-buffered", buffered),
        ]
        if args.refine:
            from repro.partitioning.families import (
                PolishedStreamer,
                RefineConfig,
            )

            contenders = [
                (
                    label + "+fm",
                    lambda stream, make=make: PolishedStreamer(
                        make(stream),
                        refine=RefineConfig(
                            passes=args.refine_passes, workers=args.workers
                        ),
                    ),
                )
                for label, make in contenders
            ]

    # One open serves every contender: streams are re-iterable, and a
    # cached run then hashes/validates the source exactly once.
    stream, via = _open_input(path, args)
    with stream:
        for label, make_partitioner in contenders:
            result = make_partitioner(stream).partition_stream(
                stream, ctx.num_parts, cost_matrix=job.cost_matrix, seed=ctx.seed
            )
            md = result.metadata
            sections.append(
                format_kv(
                    {
                        "input": via,
                        "vertices": stream.num_vertices,
                        "hyperedges": stream.num_edges,
                        "pins": stream.num_pins,
                        "peak resident pins": stream.peak_resident_pins,
                        "peak tracked edges": md.get("peak_tracked_edges"),
                        "evictions": md.get("evictions"),
                        "monitored pc cost": md.get(
                            "monitored_pc_cost", md.get("final_pc_cost")
                        ),
                        "kernel mode": md.get("kernel_mode"),
                        "kernel seconds": md.get("pass_seconds"),
                        "wall time [s]": md.get("wall_time_s"),
                        **(
                            {
                                "refined cut": "%s -> %s"
                                % (
                                    md.get("refine_cut_before"),
                                    md.get("refine_cut_after"),
                                ),
                                "refine moves": md.get("refine_moves"),
                            }
                            if md.get("refined")
                            else {}
                        ),
                    },
                    title=f"{label} — {stream.name} -> {ctx.num_parts} parts",
                )
            )
    return "\n\n".join(sections)


def _run_convert(ctx: ExperimentContext, args) -> str:
    """The ``convert`` command: text file -> persistent binary chunk store.

    Ingests once through the matching text parser, saves the store, then
    times one memory-mapped replay pass so the printout shows what later
    restreams will cost (see docs/formats.md for the on-disk layout).
    """
    import time

    from repro.streaming.chunkstore import open_store
    from repro.utils.tables import format_kv

    del ctx  # convert is purely an I/O transform; world params are moot
    if not args.stream_input:
        raise SystemExit("convert requires --stream-input PATH")
    path = Path(args.stream_input)
    store_dir = (
        Path(args.store)
        if args.store
        else path.with_name(path.name + ".chunkstore")
    )
    opener = _opener_for(path)
    t0 = time.perf_counter()
    with opener(
        path, chunk_size=args.chunk_size, pin_budget=args.pin_budget
    ) as stream:
        t_ingest = time.perf_counter() - t0
        t1 = time.perf_counter()
        stream.save(store_dir)
        t_save = time.perf_counter() - t1
    store = open_store(store_dir)
    t2 = time.perf_counter()
    for chunk in store:
        chunk.vertex_edges.sum()  # fault the mapped pages: a real pass
    t_replay = time.perf_counter() - t2
    data_bytes = int(store.manifest["data_bytes"])
    return format_kv(
        {
            "store": str(store_dir),
            "vertices": store.num_vertices,
            "hyperedges": store.num_edges,
            "pins": store.num_pins,
            "chunks": store.num_chunks,
            "data bytes": data_bytes,
            "source digest": store.source_digest,
            "text ingest [s]": t_ingest,
            "store write [s]": t_save,
            "store replay pass [s]": t_replay,
        },
        title=f"convert — {path.name} -> chunk store v{store.manifest['version']}",
    )


def _run_serve(args) -> int:
    """The ``serve`` command: boot the streaming partition service.

    Blocks until interrupted.  ``--workers`` (the shared flag) sizes the
    async partition worker pool, defaulting to the service's own default
    (2) when not passed; per-request sharded streaming still rides on
    the ``workers=`` query parameter (docs/service.md).
    """
    from repro.service import ServiceConfig, serve
    from repro.service.admission import keys_from_env, load_key_file

    kwargs = dict(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        pool=args.pool,
        max_queue_depth=args.max_queue_depth,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        store_budget_bytes=args.store_budget,
    )
    keys = keys_from_env()
    if args.api_key_file is not None:
        keys = tuple(dict.fromkeys(load_key_file(args.api_key_file) + keys))
    kwargs["api_keys"] = keys
    if args.workers is not None:
        kwargs["workers"] = args.workers
    return serve(ServiceConfig(**kwargs))


def _run_worker(args) -> int:
    """The ``worker`` command: a long-lived cluster shard server.

    Blocks until a coordinator sends a ``shutdown`` frame or the process
    is interrupted.  Shares ``--host``/``--port`` with ``serve`` (port 0
    binds an ephemeral port; the bound port is in the ``listening`` JSONL
    event on stdout) and ``--seed`` with everything else — the handshake
    cross-checks it against the coordinator's seed (docs/cluster.md).
    """
    from repro.cluster import ClusterWorker
    from repro.cluster.protocol import load_psk

    worker = ClusterWorker(
        args.host,
        args.port,
        seed=args.seed,
        log_path=args.log_file,
        psk=load_psk(args.psk_file) if args.psk_file else None,
    )
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def _run_cluster(ctx: ExperimentContext, args) -> str:
    """The ``cluster`` command: distributed partitioning over ``--hosts``.

    Each endpoint drives one shard; loopback runs are bit-identical to
    ``stream --workers N`` on the same inputs (docs/cluster.md).  With
    ``--stream-input`` the file is partitioned out-of-core; otherwise the
    suite streaming instance (or ``--instances``) is used.
    """
    import time

    from repro.cluster import DistributedStreamer
    from repro.core.config import HyperPRAWConfig
    from repro.hypergraph.suite import STREAMING_INSTANCE, load_instance
    from repro.streaming import (
        BufferedRestreamer,
        HypergraphChunkStream,
        OnePassStreamer,
    )
    from repro.utils.tables import format_kv

    if not args.hosts:
        raise SystemExit("cluster requires --hosts HOST:PORT [HOST:PORT ...]")
    job = ctx.one_job()

    def open_streams():
        if args.stream_input:
            stream, via = _open_input(Path(args.stream_input), args)
            yield stream, via
            return
        names = ctx.instances if ctx.instances else [STREAMING_INSTANCE]
        for name in names:
            hg = load_instance(name, scale=ctx.scale)
            yield HypergraphChunkStream(
                hg, args.chunk_size, pin_budget=args.pin_budget
            ), "suite instance"

    if args.cluster_base == "buffered":
        base = BufferedRestreamer(
            HyperPRAWConfig(
                max_iterations=ctx.max_iterations,
                record_history=False,
                kernel=args.kernel,
            ),
            max_tracked_edges=args.max_tracked_edges,
            workers=1,
        )
    else:
        base = OnePassStreamer(
            max_tracked_edges=args.max_tracked_edges,
            workers=1,
            kernel=args.kernel,
        )
    from repro.cluster.protocol import load_psk

    streamer = DistributedStreamer(
        base,
        hosts=args.hosts,
        ship=args.ship,
        timeout=args.timeout,
        on_loss=args.on_loss,
        chunk_size=args.chunk_size,
        payload=args.shard_payload,
        shard_by=args.shard_by,
        compress=not args.no_compress,
        tailored=not args.no_tailored,
        psk=load_psk(args.psk_file) if args.psk_file else None,
    )
    sections = []
    for stream, via in open_streams():
        with stream:
            t0 = time.perf_counter()
            result = streamer.partition_stream(
                stream, ctx.num_parts, cost_matrix=job.cost_matrix,
                seed=ctx.seed,
            )
            wall = time.perf_counter() - t0
            md = result.metadata
            sections.append(
                format_kv(
                    {
                        "input": via,
                        "hosts": " ".join(args.hosts),
                        "ship": args.ship,
                        "vertices": stream.num_vertices,
                        "hyperedges": stream.num_edges,
                        "pins": stream.num_pins,
                        "parallel mode": md.get("parallel_mode"),
                        "cluster wire bytes": md.get("cluster_wire_bytes"),
                        "wire versions": md.get("cluster_wire_versions"),
                        "compressed links": md.get("cluster_compress"),
                        "tailored rows": md.get("tailored_rows"),
                        "degraded shards": md.get("degraded_shards"),
                        "reconnected shards": md.get("reconnected_shards"),
                        "monitored pc cost": md.get(
                            "monitored_pc_cost", md.get("final_pc_cost")
                        ),
                        "wall time [s]": wall,
                    },
                    title=(
                        f"cluster/{args.cluster_base} — {stream.name} -> "
                        f"{ctx.num_parts} parts"
                    ),
                )
            )
    return "\n\n".join(sections)


def _run_ablations(ctx: ExperimentContext) -> str:
    parts = [
        ablations.refinement_factor_sweep(ctx).render(),
        ablations.alpha_update_sweep(ctx).render(),
        ablations.presence_threshold_sweep(ctx).render(),
        ablations.stream_order_sweep(ctx).render(),
        ablations.alpha_initial_sweep(ctx).render(),
        ablations.profiling_noise_sweep(ctx).render(),
        ablations.tolerance_sweep(ctx).render(),
    ]
    return "\n\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.workers is None:
        args.workers = 1  # sequential-streaming default for stream/convert
    ctx = context_from_args(args)
    runners = {
        "table1": lambda: table1.run(ctx).render(),
        "figure1": lambda: figure1.run(ctx).render(),
        "figure3": lambda: figure3.run(ctx).render(),
        "figure4": lambda: figure4.run(ctx).render(),
        "figure5": lambda: figure5.run(ctx).render(),
        "figure6": lambda: figure6.run(ctx).render(),
        "ablations": lambda: _run_ablations(ctx),
        "stream": lambda: _run_stream(ctx, args),
        "convert": lambda: _run_convert(ctx, args),
        "cluster": lambda: _run_cluster(ctx, args),
    }
    if args.command == "all":
        for name in ("table1", "figure1", "figure3", "figure4", "figure5", "figure6"):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            print(runners[name]())
        return 0
    print(runners[args.command]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
