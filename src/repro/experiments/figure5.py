"""Figure 5 — runtime of the synthetic benchmark.

The headline experiment: simulated benchmark runtime of the 10 instances
under the three partitioners, following the paper's 3-jobs x 2-iterations
protocol, with the speedup of HyperPRAW-aware over the multilevel
baseline annotated per instance (the paper reports 1.3x–14x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.runner import ExperimentRunner, RunRecord
from repro.experiments.common import ExperimentContext
from repro.utils.tables import format_table

__all__ = ["Figure5Result", "run"]


@dataclass
class Figure5Result:
    """Aggregated runtimes and speedups.

    ``runtimes[(instance, algorithm)] = (mean_s, std_s)``;
    ``speedups[(instance, algorithm)]`` is relative to the baseline.
    """

    records: "list[RunRecord]"
    runtimes: dict
    speedups: dict
    baseline: str
    instances: list
    algorithms: list

    def aware_speedup_range(self) -> tuple:
        """(min, max) speedup of hyperpraw-aware over the baseline."""
        vals = [
            self.speedups[(i, "hyperpraw-aware")]
            for i in self.instances
            if (i, "hyperpraw-aware") in self.speedups
        ]
        return (min(vals), max(vals)) if vals else (float("nan"), float("nan"))

    def render(self) -> str:
        rows = []
        for inst in self.instances:
            row = [inst]
            for algo in self.algorithms:
                mean, std = self.runtimes[(inst, algo)]
                row.append(round(mean * 1e3, 2))
            row.append(round(self.speedups[(inst, "hyperpraw-aware")], 2))
            rows.append(row)
        lo, hi = self.aware_speedup_range()
        table = format_table(
            ["hypergraph"]
            + [f"{a} (ms)" for a in self.algorithms]
            + ["aware speedup"],
            rows,
            title="Figure 5 — synthetic benchmark runtime (simulated ms, mean of jobs x iterations)",
        )
        return (
            table
            + f"\n\nhyperpraw-aware speedup over {self.baseline}: "
            + f"{lo:.2f}x .. {hi:.2f}x (paper reports 1.3x .. 14x on 576 real cores)"
        )


def run(ctx: "ExperimentContext | None" = None) -> Figure5Result:
    """Run the full paper protocol on the whole suite."""
    ctx = ctx or ExperimentContext()
    runner = ctx.runner()
    suite = ctx.load_suite()
    partitioners = ctx.partitioners()
    records = runner.run(suite, partitioners)
    baseline = "multilevel-rb"
    return Figure5Result(
        records=records,
        runtimes=ExperimentRunner.aggregate_runtimes(records),
        speedups=ExperimentRunner.speedups(records, baseline=baseline),
        baseline=baseline,
        instances=list(suite.keys()),
        algorithms=list(partitioners.keys()),
    )
