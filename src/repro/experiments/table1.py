"""Table 1 — statistics of the benchmark hypergraphs.

Renders the stand-in suite's statistics next to the paper's reported
numbers so the calibration (average cardinality, hyperedge/vertex ratio)
is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.hypergraph.stats import HypergraphStats, compute_stats
from repro.hypergraph.suite import PAPER_TABLE1
from repro.utils.tables import format_table

__all__ = ["Table1Result", "run"]


@dataclass
class Table1Result:
    """Stand-in statistics plus the paper's originals."""

    stats: "list[HypergraphStats]"
    scale: float

    def rows(self) -> list:
        out = []
        for s in self.stats:
            paper = PAPER_TABLE1.get(s.name)
            out.append(
                [
                    s.name,
                    s.num_vertices,
                    s.num_edges,
                    s.num_pins,
                    round(s.avg_cardinality, 2),
                    paper[3] if paper else float("nan"),
                    round(s.edge_vertex_ratio, 2),
                    paper[4] if paper else float("nan"),
                ]
            )
        return out

    def render(self) -> str:
        return format_table(
            [
                "hypergraph",
                "vertices",
                "hyperedges",
                "pins",
                "avg card",
                "paper card",
                "he/v",
                "paper he/v",
            ],
            self.rows(),
            title=f"Table 1 — benchmark suite (scale={self.scale})",
        )


def run(ctx: "ExperimentContext | None" = None) -> Table1Result:
    """Build the suite and compute every instance's statistics."""
    ctx = ctx or ExperimentContext()
    stats = [compute_stats(hg) for hg in ctx.load_suite().values()]
    return Table1Result(stats=stats, scale=ctx.scale)
