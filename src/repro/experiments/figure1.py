"""Figure 1 — the motivating mismatch.

1A: peer-to-peer bandwidth heatmap of a profiled job (ring-protocol
measurement on the simulated ARCHER-like machine).
1B: peer-to-peer traffic pattern of a "typical distributed application" —
the synthetic benchmark on the sparsine hypergraph under a naive
(architecture-blind, randomly rank-mapped) partition.

The point of the figure is the *discrepancy*: the bandwidth matrix has
strong nested-block structure, the naive traffic has none.  We quantify
that with the traffic/bandwidth correlation, which the Figure 6 driver
reuses for the after picture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.synthetic import SyntheticBenchmark
from repro.experiments.common import ExperimentContext
from repro.hypergraph.suite import load_instance
from repro.partitioning.multilevel import MultilevelRB
from repro.utils.heatmap import ascii_heatmap
from repro.utils.rng import derive_seed

__all__ = ["Figure1Result", "run"]


@dataclass
class Figure1Result:
    """Bandwidth matrix (A) and naive traffic matrix (B)."""

    bandwidth_mbs: np.ndarray
    traffic_bytes: np.ndarray
    affinity: float
    instance: str

    def render(self, *, max_size: int = 48) -> str:
        parts = [
            ascii_heatmap(
                self.bandwidth_mbs,
                title="Figure 1A — profiled peer-to-peer bandwidth (log10 MB/s)",
                max_size=max_size,
            ),
            "",
            ascii_heatmap(
                self.traffic_bytes,
                title=(
                    f"Figure 1B — naive traffic pattern ({self.instance}, "
                    "log10 bytes)"
                ),
                max_size=max_size,
            ),
            "",
            f"traffic/bandwidth correlation: {self.affinity:+.3f} "
            "(no alignment between where the machine is fast and where "
            "the application talks)",
        ]
        return "\n".join(parts)


def run(ctx: "ExperimentContext | None" = None, *, instance: str = "sparsine") -> Figure1Result:
    """Profile one job and run the naive benchmark on ``instance``."""
    ctx = ctx or ExperimentContext()
    job = ctx.one_job()
    hg = load_instance(instance, scale=ctx.scale)
    p = ctx.num_parts
    result = MultilevelRB(imbalance_tolerance=ctx.imbalance_tolerance).partition(
        hg, p, seed=derive_seed(ctx.seed, "fig1-partition")
    )
    # Naive = architecture-blind: partition numbering carries no placement
    # information, so rank-map it randomly (see ExperimentRunner).
    rng = np.random.default_rng(derive_seed(ctx.seed, "fig1-rankmap"))
    assignment = rng.permutation(p)[result.assignment]
    bench = SyntheticBenchmark(
        job.link_model,
        message_bytes=ctx.message_bytes,
        timesteps=ctx.timesteps,
        model=ctx.sim_model,
    )
    outcome = bench.run(hg, assignment, p)
    return Figure1Result(
        bandwidth_mbs=job.measured_bandwidth,
        traffic_bytes=outcome.trace.bytes_matrix,
        affinity=outcome.trace.bandwidth_affinity(job.link_model.bandwidth_mbs),
        instance=instance,
    )
