"""HyperPRAW configuration.

All Algorithm 1 parameters in one frozen dataclass, with the paper's
defaults.  The experiment drivers construct three canonical variants:

* ``aware``  — profiled cost matrix, refinement 0.95 (the headline
  configuration);
* ``basic``  — uniform cost matrix, otherwise identical;
* ``no-refinement`` / ``refinement 1.0`` — the Figure 3 ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HyperPRAWConfig"]


@dataclass(frozen=True)
class HyperPRAWConfig:
    """Parameters of the HyperPRAW restreaming algorithm (Algorithm 1).

    Attributes
    ----------
    imbalance_tolerance:
        maximum accepted max/mean load ratio (Algorithm 1's
        ``imbalance_tolerance``).  The paper does not print its value; 1.1
        (10% slack) is the conventional hypergraph-partitioning default
        and Zoltan's too, keeping the comparison fair.
    max_iterations:
        hard cap ``N`` on restreaming passes.
    alpha_initial:
        ``"paper"``, ``"fennel"`` or an explicit float — see
        :func:`repro.core.schedule.initial_alpha`.  The default is the
        paper's printed formula: it keeps the stream balanced from the
        first pass, giving the monotone PC-cost descent of Figure 3
        (the literal FENNEL form starts so low that early passes collapse
        into a degenerate, maximally imbalanced partition).
    alpha_update:
        tempering multiplier while over tolerance (paper: 1.7).
    refinement_factor:
        alpha multiplier during refinement (paper compares 1.0 and 0.95;
        0.95 wins and is the default).
    refinement:
        ``False`` reproduces the "no refinement" baseline: stop at the
        first pass within tolerance.
    presence_threshold:
        Eq. 3 threshold on ``X_j(v)`` — 1 for the prose reading (default),
        2 for the literal formula.
    stream_order:
        ``"natural"`` (vertex id order, the streaming convention) or
        ``"shuffled"`` (one fixed random order drawn from ``seed``).
    use_edge_weights:
        honour hyperedge weights in the monitored PC-cost metric.
    record_history:
        keep per-pass :class:`~repro.core.result.IterationRecord` entries
        (Figure 3 needs them; disable for large sweeps).
    chunk_size:
        ``None`` (default) streams one vertex at a time, exactly as
        published.  A positive value switches each pass to the vectorised
        chunk-scoring hot path of :func:`repro.core.value.block_value_terms`:
        vertices are processed in blocks scored against the block-start
        state (the whole block lifted out, communication terms from one
        matmul, load penalties updated per placement).  Faster, at the
        price of intra-block staleness: each vertex scores without the
        not-yet-replaced block members' old counts and loads — an opt-in
        speed/fidelity trade, benchmarked in ``bench/streaming``.
    workers:
        parallel sharded streaming worker count, consumed by the
        streaming partitioners (:class:`~repro.streaming.restream.
        BufferedRestreamer` and friends): the stream is split into
        ``workers`` contiguous chunk-range shards processed by forked
        worker processes against snapshot presence tables, merged with
        boundary-only payloads, and the boundary vertices restreamed
        across the same worker pool (barrier rounds).  ``1`` (default)
        is plain sequential streaming.  Results are reproducible for a
        fixed seed at a fixed ``workers``; they differ *across* worker
        counts (the shard structure changes).
    shard_payload:
        what sharded workers ship back at the merge: ``"boundary"``
        (default) sends only locally detected boundary presence-table
        rows, ``"full"`` whole tables (same assignments, more bytes —
        kept for measurement).
    shard_by:
        sharded streaming boundary placement: ``"pins"`` (default)
        rebalances shards by cumulative pin count when the uniform
        chunk-count split would straggle (per-shard pin skew over
        ``ShardedStreamer.PIN_SKEW_THRESHOLD``), ``"chunks"`` always
        splits by chunk count.
    kernel:
        inner-loop implementation: ``"auto"`` (default — the compiled
        numba kernel when installed and the state/scorer/mode
        combination supports it, otherwise silently python),
        ``"python"`` (the bit-for-bit reference loop) or ``"njit"``
        (request the compiled kernel; falls back to python with a
        :class:`RuntimeWarning` when it cannot be honoured).  The mode
        a run actually used is reported as ``kernel_mode`` metadata.
    """

    imbalance_tolerance: float = 1.1
    max_iterations: int = 100
    alpha_initial: "str | float" = "paper"
    alpha_update: float = 1.7
    refinement_factor: float = 0.95
    refinement: bool = True
    presence_threshold: int = 1
    stream_order: str = "natural"
    use_edge_weights: bool = True
    record_history: bool = True
    chunk_size: "int | None" = None
    workers: int = 1
    shard_payload: str = "boundary"
    shard_by: str = "pins"
    kernel: str = "auto"

    def __post_init__(self):
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_payload not in ("boundary", "full"):
            raise ValueError(
                "shard_payload must be 'boundary' or 'full', "
                f"got {self.shard_payload!r}"
            )
        if self.shard_by not in ("pins", "chunks"):
            raise ValueError(
                f"shard_by must be 'pins' or 'chunks', got {self.shard_by!r}"
            )
        if self.kernel not in ("auto", "python", "njit"):
            raise ValueError(
                f"kernel must be 'auto', 'python' or 'njit', got {self.kernel!r}"
            )
        if self.imbalance_tolerance < 1.0:
            raise ValueError(
                f"imbalance_tolerance must be >= 1.0, got {self.imbalance_tolerance}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.alpha_update <= 0:
            raise ValueError(f"alpha_update must be > 0, got {self.alpha_update}")
        if self.refinement_factor <= 0:
            raise ValueError(
                f"refinement_factor must be > 0, got {self.refinement_factor}"
            )
        if self.presence_threshold < 1:
            raise ValueError(
                f"presence_threshold must be >= 1, got {self.presence_threshold}"
            )
        if self.stream_order not in ("natural", "shuffled"):
            raise ValueError(
                f"stream_order must be 'natural' or 'shuffled', got {self.stream_order!r}"
            )

    # ------------------------------------------------------------------
    def with_(self, **changes) -> "HyperPRAWConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)

    @classmethod
    def paper_refinement_095(cls) -> "HyperPRAWConfig":
        """The paper's winning configuration (refinement 0.95)."""
        return cls(refinement=True, refinement_factor=0.95)

    @classmethod
    def paper_refinement_100(cls) -> "HyperPRAWConfig":
        """Figure 3's 'refinement 1.0' variant (alpha frozen in refinement)."""
        return cls(refinement=True, refinement_factor=1.0)

    @classmethod
    def paper_no_refinement(cls) -> "HyperPRAWConfig":
        """Figure 3's 'no refinement' variant: stop at tolerance."""
        return cls(refinement=False)
