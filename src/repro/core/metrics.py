"""Partition quality metrics (paper Section 5.2).

The paper reports three quality metrics plus balance:

* **hyperedge cut** — number (or weight) of hyperedges spanning more than
  one partition (Figure 4A);
* **SOED** (sum of external degrees) — for each cut hyperedge, the number
  of partitions it touches, summed (Figure 4B);
* **partitioning communication cost** ``PC(P)`` (Eq. 5) — the cut
  structure weighted by the machine's pairwise communication costs
  (Figure 4C); this is also the refinement phase's monitored metric;
* **imbalance** — max partition load over mean partition load.

Everything is computed from one intermediate, the ``(E x p)`` hyperedge-
partition pin-count matrix of :func:`edge_partition_counts`, so a single
O(pins) pass feeds all metrics.  The connectivity-1 metric
(:func:`connectivity_minus_one`) is included for completeness — it is the
objective Zoltan/PaToH actually minimise — though the paper does not plot
it.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import numpy as np
import scipy.sparse as sp

from repro.hypergraph.model import Hypergraph
from repro.utils.validation import check_square_matrix

__all__ = [
    "edge_partition_counts",
    "partition_loads",
    "imbalance",
    "hyperedge_cut",
    "soed",
    "connectivity_minus_one",
    "vertex_neighbour_counts",
    "partitioning_comm_cost",
    "PartitionQuality",
    "evaluate_partition",
]


def _check_assignment(hg: Hypergraph, assignment: np.ndarray, num_parts: int) -> np.ndarray:
    assignment = np.asarray(assignment)
    if assignment.shape != (hg.num_vertices,):
        raise ValueError(
            f"assignment must have shape ({hg.num_vertices},), got {assignment.shape}"
        )
    if assignment.size and (assignment.min() < 0 or assignment.max() >= num_parts):
        raise ValueError(
            f"assignment values outside [0, {num_parts})"
        )
    return assignment.astype(np.int64, copy=False)


def edge_partition_counts(
    hg: Hypergraph, assignment: np.ndarray, num_parts: int
) -> np.ndarray:
    """``counts[e, k]`` = number of pins of hyperedge ``e`` in partition ``k``.

    One vectorised bincount over all pins; this matrix is the shared
    intermediate for every other metric and for the stream state.
    """
    assignment = _check_assignment(hg, assignment, num_parts)
    edge_ids = np.repeat(
        np.arange(hg.num_edges, dtype=np.int64), np.diff(hg.edge_ptr)
    )
    keys = edge_ids * num_parts + assignment[hg.edge_pins]
    flat = np.bincount(keys, minlength=hg.num_edges * num_parts)
    return flat.reshape(hg.num_edges, num_parts).astype(np.int32)


def partition_loads(
    hg: Hypergraph, assignment: np.ndarray, num_parts: int
) -> np.ndarray:
    """Total vertex weight per partition, ``L(p)`` in the paper."""
    assignment = _check_assignment(hg, assignment, num_parts)
    return np.bincount(
        assignment, weights=hg.vertex_weights, minlength=num_parts
    )


def imbalance(hg: Hypergraph, assignment: np.ndarray, num_parts: int) -> float:
    """Total imbalance: max partition load over mean partition load.

    The paper's Section 4 definition — 1.0 is perfect balance; the
    algorithm accepts partitions with imbalance <= tolerance.
    """
    loads = partition_loads(hg, assignment, num_parts)
    mean = loads.sum() / num_parts
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def _lambdas(counts: np.ndarray) -> np.ndarray:
    """Connectivity of each hyperedge: number of partitions it touches."""
    return (counts > 0).sum(axis=1)


def hyperedge_cut(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    *,
    use_edge_weights: bool = True,
    counts: "np.ndarray | None" = None,
) -> float:
    """Weight of hyperedges spanning more than one partition (Fig. 4A)."""
    if counts is None:
        counts = edge_partition_counts(hg, assignment, num_parts)
    cut_mask = _lambdas(counts) > 1
    if use_edge_weights:
        return float(hg.edge_weights[cut_mask].sum())
    return float(cut_mask.sum())


def soed(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    *,
    use_edge_weights: bool = True,
    counts: "np.ndarray | None" = None,
) -> float:
    """Sum of external degrees (Fig. 4B).

    For every hyperedge touching ``lambda > 1`` partitions, it is incident-
    but-not-contained in each of them, contributing ``lambda`` (times its
    weight).  Uncut hyperedges contribute nothing.
    """
    if counts is None:
        counts = edge_partition_counts(hg, assignment, num_parts)
    lam = _lambdas(counts)
    contrib = np.where(lam > 1, lam, 0).astype(np.float64)
    if use_edge_weights:
        contrib *= hg.edge_weights
    return float(contrib.sum())


def connectivity_minus_one(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    *,
    use_edge_weights: bool = True,
    counts: "np.ndarray | None" = None,
) -> float:
    """The classic ``lambda - 1`` connectivity metric (Zoltan's objective)."""
    if counts is None:
        counts = edge_partition_counts(hg, assignment, num_parts)
    lam = _lambdas(counts).astype(np.float64) - 1.0
    if use_edge_weights:
        lam *= hg.edge_weights
    return float(lam.sum())


def vertex_neighbour_counts(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    *,
    counts: "np.ndarray | None" = None,
    exclude_self: bool = True,
    use_edge_weights: bool = False,
) -> np.ndarray:
    """``X[v, j]`` = neighbours of ``v`` in partition ``j`` (Eq. 2/4's X).

    Neighbours are counted with multiplicity over shared hyperedges, which
    is exactly what the streaming value function sees.  ``exclude_self``
    removes ``v``'s own pin from each incident hyperedge's count.
    ``use_edge_weights`` scales each hyperedge's contribution by its
    weight (the paper's proposed extension for asymmetric traffic).
    """
    assignment = _check_assignment(hg, assignment, num_parts)
    if counts is None:
        counts = edge_partition_counts(hg, assignment, num_parts)
    # Vertex->edge incidence as a CSR matrix (V x E) directly from the
    # stored incidence arrays; data weights each incident edge.
    data = (
        hg.edge_weights[hg.vertex_edges]
        if use_edge_weights
        else np.ones(hg.vertex_edges.size, dtype=np.float64)
    )
    inc = sp.csr_array(
        (data, hg.vertex_edges.astype(np.int32), hg.vertex_ptr),
        shape=(hg.num_vertices, hg.num_edges),
    )
    X = inc @ counts.astype(np.float64)
    if exclude_self:
        # (Weighted) degree of each vertex: scatter-add the per-incidence
        # data onto vertices.  reduceat would mis-handle trailing isolated
        # vertices (segment start == array end), so accumulate explicitly.
        degrees = np.zeros(hg.num_vertices)
        if hg.vertex_edges.size:
            owner = np.repeat(
                np.arange(hg.num_vertices, dtype=np.int64), np.diff(hg.vertex_ptr)
            )
            np.add.at(degrees, owner, data)
        X[np.arange(hg.num_vertices), assignment] -= degrees
    return X


def partitioning_comm_cost(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    cost_matrix: np.ndarray,
    *,
    counts: "np.ndarray | None" = None,
    use_edge_weights: bool = True,
) -> float:
    """Partitioning communication cost ``PC(P)`` (Eq. 5, Fig. 4C).

    ``PC(P) = sum_i sum_{v in P_i} T_i(v)`` with
    ``T_i(v) = sum_j X_j(v) * C(i, j)``.  Since ``C(i, i) = 0``, a vertex's
    neighbours in its own partition contribute nothing, so the metric
    aggregates the *costed* volume of cross-partition communication.
    """
    assignment = _check_assignment(hg, assignment, num_parts)
    cost_matrix = check_square_matrix("cost_matrix", cost_matrix, num_parts)
    X = vertex_neighbour_counts(
        hg,
        assignment,
        num_parts,
        counts=counts,
        exclude_self=False,  # the zero cost diagonal already removes self terms
        use_edge_weights=use_edge_weights,
    )
    return float(np.einsum("vp,vp->", X, cost_matrix[assignment]))


@dataclass(frozen=True)
class PartitionQuality:
    """Bundle of all quality metrics for one partition."""

    algorithm: str
    num_parts: int
    hyperedge_cut: float
    soed: float
    connectivity_minus_one: float
    pc_cost: float
    imbalance: float

    def as_dict(self) -> dict:
        return asdict(self)


def evaluate_partition(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    cost_matrix: np.ndarray,
    *,
    algorithm: str = "unknown",
    use_edge_weights: bool = True,
) -> PartitionQuality:
    """Compute every Section 5.2 metric in one pass."""
    counts = edge_partition_counts(hg, assignment, num_parts)
    return PartitionQuality(
        algorithm=algorithm,
        num_parts=num_parts,
        hyperedge_cut=hyperedge_cut(
            hg, assignment, num_parts, counts=counts, use_edge_weights=use_edge_weights
        ),
        soed=soed(
            hg, assignment, num_parts, counts=counts, use_edge_weights=use_edge_weights
        ),
        connectivity_minus_one=connectivity_minus_one(
            hg, assignment, num_parts, counts=counts, use_edge_weights=use_edge_weights
        ),
        pc_cost=partitioning_comm_cost(
            hg,
            assignment,
            num_parts,
            cost_matrix,
            counts=counts,
            use_edge_weights=use_edge_weights,
        ),
        imbalance=imbalance(hg, assignment, num_parts),
    )
