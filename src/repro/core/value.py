"""The vertex assignment value function (paper Eqs. 1–4).

For a vertex ``v`` being (re)placed, the value of each candidate partition
``i`` is

.. math::

    V_i(v) = -N_i(v) \\cdot T_i(v) - \\alpha \\frac{W(i)}{E(i)}

where

* ``T_i(v) = sum_j X_j(v) * C(i, j)`` (Eq. 4) — cost of the communication
  ``v`` would generate from partition ``i``, given its neighbour counts
  ``X_j(v)`` and the machine cost matrix ``C``;
* ``N_i(v) = sum_j A_j(v) / p`` (Eq. 2) — the fraction of partitions
  holding neighbours of ``v``.  As printed in the paper this sum does not
  depend on ``i``; it acts as a per-vertex scale that amplifies the
  communication term for widely-spread vertices;
* ``alpha * W(i)/E(i)`` — the tempered load-balance penalty.

Eq. 3 prints ``A_j(v) = 1 if X_j(v) > 1``, while the prose defines
``A_j`` as "whether v has neighbours in partition j" (i.e. ``X_j >= 1``).
We default to the prose reading; ``presence_threshold`` switches to the
literal formula (threshold 2) — both are exercised by tests and an
ablation benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assignment_values", "best_partition", "block_value_terms"]


def assignment_values(
    X: np.ndarray,
    cost_matrix: np.ndarray,
    loads: np.ndarray,
    expected_loads: np.ndarray,
    alpha: float,
    *,
    presence_threshold: int = 1,
    out: "np.ndarray | None" = None,
) -> np.ndarray:
    """Vector of ``V_i(v)`` over all candidate partitions ``i``.

    Parameters
    ----------
    X:
        length-``p`` neighbour counts of the vertex (Eq. 4's ``X_j(v)``),
        computed with the vertex itself removed.
    cost_matrix:
        ``p x p`` communication-cost matrix ``C`` with zero diagonal.
    loads / expected_loads:
        current and target partition loads (``W`` and ``E`` in Eq. 1).
    alpha:
        workload-imbalance weight.
    presence_threshold:
        minimum ``X_j`` for partition ``j`` to count as a neighbouring
        partition in Eq. 2 (1 = prose reading, 2 = literal Eq. 3).
    out:
        optional pre-allocated output buffer (hot-loop optimisation).
    """
    p = loads.shape[0]
    # T_i = sum_j X_j C(i, j) for all i at once: one mat-vec.
    T = cost_matrix @ X
    n_neigh = int(np.count_nonzero(X >= presence_threshold))
    N_v = n_neigh / p
    if out is None:
        out = np.empty(p, dtype=np.float64)
    # V_i = -N_v * T_i - alpha * W_i / E_i
    np.multiply(T, -N_v, out=out)
    out -= alpha * (loads / expected_loads)
    return out


def block_value_terms(
    X: np.ndarray,
    cost_matrix: np.ndarray,
    *,
    presence_threshold: int = 1,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised communication terms for a whole *chunk* of vertices.

    Given the stacked neighbour counts ``X`` (``m x p``, one row per
    vertex), one matmul replaces ``m`` per-vertex mat-vecs:

    ``T[v, i] = sum_j X[v, j] * C(i, j)`` and ``n_neigh[v]`` is the number
    of partitions holding at least ``presence_threshold`` neighbours of
    ``v`` (Eq. 2's numerator).  The caller finishes Eq. 1 per vertex as
    ``V_i = -(n_neigh/p) * T_i - alpha * W_i / E_i`` — the load term must
    stay per-vertex because placements within the chunk change the loads.

    The communication term is evaluated against the chunk-*start* state:
    intra-chunk placements are not reflected (bounded staleness of at most
    ``m`` moves), which is the price of the single matmul.  This is the
    hot path behind ``HyperPRAWConfig.chunk_size`` and the streaming
    partitioners' ``score_mode="chunk"``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D (m x p), got shape {X.shape}")
    T = X @ cost_matrix.T
    n_neigh = (X >= presence_threshold).sum(axis=1).astype(np.float64)
    return T, n_neigh


def best_partition(
    X: np.ndarray,
    cost_matrix: np.ndarray,
    loads: np.ndarray,
    expected_loads: np.ndarray,
    alpha: float,
    *,
    presence_threshold: int = 1,
    out: "np.ndarray | None" = None,
) -> int:
    """Argmax of :func:`assignment_values` (ties break to the lowest id,
    which keeps the algorithm deterministic)."""
    values = assignment_values(
        X,
        cost_matrix,
        loads,
        expected_loads,
        alpha,
        presence_threshold=presence_threshold,
        out=out,
    )
    return int(np.argmax(values))
