"""Partitioner interface.

Every algorithm in the library — HyperPRAW, the multilevel baseline, the
streaming and trivial baselines — implements one method::

    partition(hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult

``cost_matrix`` is the machine's communication-cost matrix; architecture-
blind algorithms ignore it (they are free to — the paper's Zoltan and
HyperPRAW-basic runs use uniform costs *during* partitioning, and the cost
matrix only enters their evaluation afterwards).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.result import PartitionResult
from repro.hypergraph.model import Hypergraph

__all__ = ["Partitioner"]


class Partitioner(abc.ABC):
    """Abstract base class for all partitioners.

    Subclasses set :attr:`name` (used in reports and figures) and
    implement :meth:`partition`.
    """

    #: short identifier used in experiment tables
    name: str = "abstract"

    @abc.abstractmethod
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Partition ``hg`` into ``num_parts`` parts.

        Parameters
        ----------
        hg:
            the hypergraph to partition.
        num_parts:
            number of partitions (compute units).
        cost_matrix:
            optional ``num_parts x num_parts`` communication-cost matrix;
            architecture-aware algorithms fold it into their objective.
        seed:
            RNG seed for algorithms with stochastic components.
        """

    # ------------------------------------------------------------------
    @staticmethod
    def _check_args(hg: Hypergraph, num_parts: int) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > hg.num_vertices:
            raise ValueError(
                f"cannot split {hg.num_vertices} vertices into {num_parts} parts"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
