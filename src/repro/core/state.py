"""Incremental stream state.

The restreaming inner loop moves one vertex at a time, thousands of times
per pass; recomputing any global structure per move would be quadratic.
:class:`StreamState` maintains exactly the two pieces of state the value
function needs, updated incrementally:

* ``edge_counts`` — the ``(E x p)`` hyperedge-partition pin-count matrix;
  moving vertex ``v`` touches only the ``deg(v)`` rows of its incident
  hyperedges;
* ``loads`` — per-partition vertex-weight totals, ``W(k)`` in the paper.

With those, a vertex's neighbour vector ``X_j(v)`` (Eq. 4) is the column
sum of its incident hyperedges' rows — O(deg(v) * p) — and is exact
because the vertex is *removed* from the state before being evaluated
(restreaming re-places an already-placed vertex; leaving it in place would
bias the value function toward its current partition).
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import edge_partition_counts, partition_loads
from repro.hypergraph.model import Hypergraph

__all__ = ["StreamState"]


class StreamState:
    """Mutable assignment state during (re)streaming.

    Parameters
    ----------
    hg:
        the hypergraph being partitioned.
    num_parts:
        partition count ``p``.
    assignment:
        initial assignment (e.g. round-robin); copied.
    expected_loads:
        target load per partition, ``E(k)`` in Eq. 1; defaults to uniform
        ``total_weight / p``.  Heterogeneous capacities (the paper's
        Section 4.1 note) are supported by passing a custom vector.
    """

    def __init__(
        self,
        hg: Hypergraph,
        num_parts: int,
        assignment: np.ndarray,
        *,
        expected_loads: "np.ndarray | None" = None,
    ) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        self.hg = hg
        self.num_parts = int(num_parts)
        self.assignment = np.asarray(assignment, dtype=np.int64).copy()
        if self.assignment.shape != (hg.num_vertices,):
            raise ValueError(
                f"assignment must have shape ({hg.num_vertices},), "
                f"got {self.assignment.shape}"
            )
        self.edge_counts = edge_partition_counts(hg, self.assignment, num_parts)
        self.loads = partition_loads(hg, self.assignment, num_parts)
        if expected_loads is None:
            expected_loads = np.full(
                num_parts, hg.total_vertex_weight() / num_parts
            )
        self.expected_loads = np.asarray(expected_loads, dtype=np.float64)
        if self.expected_loads.shape != (num_parts,):
            raise ValueError(
                f"expected_loads must have shape ({num_parts},), "
                f"got {self.expected_loads.shape}"
            )
        if (self.expected_loads <= 0).any():
            raise ValueError("expected_loads must be strictly positive")
        # Cached views to keep the hot loop free of attribute lookups.
        self._vptr = hg.vertex_ptr
        self._vedges = hg.vertex_edges
        self._weights = hg.vertex_weights
        self._removed = -1  # vertex currently lifted out of the state

    # ------------------------------------------------------------------
    # hot-path operations
    # ------------------------------------------------------------------
    def remove(self, v: int) -> int:
        """Lift vertex ``v`` out of the state; returns its old partition."""
        if self._removed >= 0:
            raise RuntimeError(
                f"vertex {self._removed} is already removed; place it first"
            )
        old = int(self.assignment[v])
        rows = self._vedges[self._vptr[v] : self._vptr[v + 1]]
        self.edge_counts[rows, old] -= 1
        self.loads[old] -= self._weights[v]
        self._removed = v
        return old

    def place(self, v: int, part: int) -> None:
        """Assign the removed vertex ``v`` to ``part``."""
        if self._removed != v:
            raise RuntimeError(f"vertex {v} is not the removed vertex ({self._removed})")
        rows = self._vedges[self._vptr[v] : self._vptr[v + 1]]
        self.edge_counts[rows, part] += 1
        self.loads[part] += self._weights[v]
        self.assignment[v] = part
        self._removed = -1

    def neighbour_counts(self, v: int) -> np.ndarray:
        """``X_j(v)``: neighbours of ``v`` per partition (Eq. 4's X).

        Only exact while ``v`` is removed (otherwise ``v`` counts itself).
        Neighbours sharing several hyperedges with ``v`` count once per
        shared hyperedge — communication volume is per hyperedge, so the
        multiplicity is intentional.
        """
        rows = self._vedges[self._vptr[v] : self._vptr[v + 1]]
        if rows.size == 0:
            return np.zeros(self.num_parts, dtype=np.int64)
        return self.edge_counts[rows].sum(axis=0, dtype=np.int64)

    # ------------------------------------------------------------------
    # pass-level queries
    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        """max-load / mean-load (valid when no vertex is removed)."""
        mean = self.loads.sum() / self.num_parts
        if mean == 0:
            return 1.0
        return float(self.loads.max() / mean)

    def snapshot(self) -> np.ndarray:
        """Copy of the current assignment."""
        return self.assignment.copy()

    def consistency_check(self) -> None:
        """Recompute the counters from scratch and compare (tests only)."""
        assert self._removed == -1, "check with a vertex removed"
        counts = edge_partition_counts(self.hg, self.assignment, self.num_parts)
        assert np.array_equal(counts, self.edge_counts), "edge counts drifted"
        loads = partition_loads(self.hg, self.assignment, self.num_parts)
        assert np.allclose(loads, self.loads), "loads drifted"
