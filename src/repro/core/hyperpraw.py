"""HyperPRAW: architecture-aware hypergraph restreaming (Algorithm 1).

The algorithm, as published:

1. Initialise with a round-robin assignment (``v -> v mod p``).
2. Repeat up to ``N`` streaming passes.  Each pass visits every vertex,
   lifts it out of the running state, scores every partition with the
   value function ``V_i(v) = -N_i(v) T_i(v) - alpha W(i)/E(i)`` (Eq. 1)
   and re-places the vertex at the argmax.
3. After each pass, while the load imbalance exceeds the tolerance,
   multiply ``alpha`` by the tempering update (1.7) and stream again.
4. Once within tolerance, the **refinement phase** begins: keep streaming
   (updating ``alpha`` by the refinement factor — 0.95 relaxes balance
   pressure) while the partitioning communication cost (Eq. 5) improves;
   when a pass makes it worse, roll back to the previous pass's partition
   and stop.  With ``refinement`` disabled the algorithm instead stops at
   the first pass within tolerance (Figure 3's "no refinement" baseline).

Architecture awareness enters *only* through the cost matrix ``C``:
**HyperPRAW-aware** receives the profiled matrix of Section 4.2;
**HyperPRAW-basic** receives the uniform matrix (every distinct pair costs
1), making it a pure communication-volume restreamer.

Complexity per pass: ``O(sum_v deg(v) * p)`` — each vertex move touches
its incident hyperedges' partition counters, and scoring is one ``p x p``
mat-vec.
"""

from __future__ import annotations

import time

import numpy as np

from repro.architecture.cost import (
    is_uniform_cost,
    uniform_cost_matrix,
    validate_cost_matrix,
)
from repro.core.base import Partitioner
from repro.core.config import HyperPRAWConfig
from repro.core.metrics import partitioning_comm_cost
from repro.core.result import IterationRecord, PartitionResult
from repro.core.schedule import TemperingSchedule, initial_alpha
from repro.core.state import StreamState
from repro.core.value import block_value_terms
from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator

__all__ = ["HyperPRAW"]


class HyperPRAW(Partitioner):
    """The paper's restreaming partitioner.

    Parameters
    ----------
    config:
        algorithm parameters; defaults to the paper's winning
        configuration (refinement factor 0.95).
    variant:
        optional label override; otherwise the name reflects whether a
        non-uniform cost matrix was supplied at :meth:`partition` time.

    Examples
    --------
    >>> from repro.hypergraph import load_instance
    >>> from repro.core import HyperPRAW
    >>> hg = load_instance("sparsine", scale=0.1)
    >>> result = HyperPRAW().partition(hg, 8)
    >>> result.assignment.shape == (hg.num_vertices,)
    True
    """

    def __init__(self, config: "HyperPRAWConfig | None" = None, *, variant: str | None = None):
        self.config = config or HyperPRAWConfig()
        self._variant = variant
        self.name = variant or "hyperpraw"

    # ------------------------------------------------------------------
    @classmethod
    def basic(cls, config: "HyperPRAWConfig | None" = None) -> "HyperPRAW":
        """HyperPRAW-basic: ignores any supplied cost matrix (uniform costs)."""
        obj = cls(config, variant="hyperpraw-basic")
        obj._force_uniform = True
        return obj

    @classmethod
    def aware(cls, config: "HyperPRAWConfig | None" = None) -> "HyperPRAW":
        """HyperPRAW-aware: requires a cost matrix at partition time."""
        return cls(config, variant="hyperpraw-aware")

    _force_uniform = False

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Run Algorithm 1 on ``hg``.

        ``cost_matrix`` selects the variant: ``None`` (or a
        :meth:`basic`-constructed instance) uses uniform costs.
        """
        self._check_args(hg, num_parts)
        cfg = self.config
        if self._force_uniform or cost_matrix is None:
            C = uniform_cost_matrix(num_parts)
            aware = False
        else:
            C = validate_cost_matrix(cost_matrix, num_units=num_parts)
            aware = not is_uniform_cost(C)
        if self._variant is None:
            # A literally uniform matrix fed to an `aware()`-constructed
            # instance is legal (flat machines exist): the explicit variant
            # label is kept while behaviour coincides with basic, which
            # tests assert explicitly.  Only unlabelled instances get their
            # name derived from the matrix actually supplied.
            self.name = "hyperpraw-aware" if aware else "hyperpraw-basic"

        t_start = time.perf_counter()
        # Algorithm 1 line 1: round-robin initialisation.
        init = np.arange(hg.num_vertices, dtype=np.int64) % num_parts
        state = StreamState(hg, num_parts, init)
        schedule = TemperingSchedule(
            alpha=initial_alpha(hg, num_parts, cfg.alpha_initial),
            tempering_update=cfg.alpha_update,
            refinement_factor=cfg.refinement_factor,
        )
        order = np.arange(hg.num_vertices, dtype=np.int64)
        if cfg.stream_order == "shuffled":
            as_generator(seed).shuffle(order)

        history: list[IterationRecord] = []
        best_assignment: "np.ndarray | None" = None
        best_cost = np.inf
        converged = False
        rolled_back = False
        iterations_run = 0

        for it in range(1, cfg.max_iterations + 1):
            alpha = schedule.alpha
            if cfg.chunk_size is not None:
                self._stream_pass_chunked(
                    state, C, alpha, order, cfg.presence_threshold, cfg.chunk_size
                )
            else:
                self._stream_pass(state, C, alpha, order, cfg.presence_threshold)
            iterations_run = it
            imb = state.imbalance()
            cost = partitioning_comm_cost(
                hg,
                state.assignment,
                num_parts,
                C,
                counts=state.edge_counts,
                use_edge_weights=cfg.use_edge_weights,
            )
            within = imb <= cfg.imbalance_tolerance
            if cfg.record_history:
                history.append(
                    IterationRecord(
                        iteration=it,
                        alpha=alpha,
                        imbalance=imb,
                        pc_cost=cost,
                        phase="refinement" if within else "tempering",
                    )
                )
            if not within:
                schedule.after_pass(within_tolerance=False)
                continue
            # --- within tolerance ---------------------------------------
            if not cfg.refinement:
                best_assignment, best_cost = state.snapshot(), cost
                converged = True
                break
            if cost < best_cost:
                best_assignment, best_cost = state.snapshot(), cost
                schedule.after_pass(within_tolerance=True)
                continue
            # Refinement stopped improving: roll back to the best pass.
            converged = True
            rolled_back = True
            break

        if best_assignment is None:
            # Never reached tolerance within the iteration budget; return
            # the final state (the paper's Algorithm 1 returns P^N too).
            best_assignment = state.snapshot()
            best_cost = partitioning_comm_cost(
                hg,
                best_assignment,
                num_parts,
                C,
                counts=state.edge_counts,
                use_edge_weights=cfg.use_edge_weights,
            )

        return PartitionResult(
            assignment=best_assignment,
            num_parts=num_parts,
            algorithm=self.name,
            iterations=history,
            metadata={
                "converged": converged,
                "rolled_back": rolled_back,
                "iterations_run": iterations_run,
                "final_alpha": schedule.alpha,
                "final_pc_cost": float(best_cost),
                "architecture_aware": aware,
                "imbalance_tolerance": cfg.imbalance_tolerance,
                "chunk_size": cfg.chunk_size,
                "wall_time_s": time.perf_counter() - t_start,
            },
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _stream_pass(
        state: StreamState,
        cost_matrix: np.ndarray,
        alpha: float,
        order: np.ndarray,
        presence_threshold: int,
    ) -> None:
        """One greedy pass over all vertices (the body of Algorithm 1).

        Inlined version of remove -> score (Eq. 1) -> place, operating
        directly on the state's arrays; this loop dominates total runtime,
        so attribute lookups and temporaries are hoisted out.
        """
        p = state.num_parts
        counts = state.edge_counts
        loads = state.loads
        assignment = state.assignment
        vptr = state.hg.vertex_ptr
        vedges = state.hg.vertex_edges
        weights = state.hg.vertex_weights
        inv_expected = 1.0 / state.expected_loads
        values = np.empty(p, dtype=np.float64)
        load_pen = np.empty(p, dtype=np.float64)

        for v in order:
            lo, hi = vptr[v], vptr[v + 1]
            rows = vedges[lo:hi]
            old = assignment[v]
            w_v = weights[v]
            # remove v
            counts[rows, old] -= 1
            loads[old] -= w_v
            # neighbour counts X_j(v) over incident hyperedges
            if rows.size:
                X = counts[rows].sum(axis=0, dtype=np.float64)
                n_neigh = int(np.count_nonzero(X >= presence_threshold))
                # V_i = -(n/p) * (C @ X)_i - alpha * W_i / E_i
                np.matmul(cost_matrix, X, out=values)
                values *= -(n_neigh / p)
            else:
                values[:] = 0.0
            np.multiply(loads, inv_expected, out=load_pen)
            load_pen *= alpha
            values -= load_pen
            j = int(np.argmax(values))
            # place v
            counts[rows, j] += 1
            loads[j] += w_v
            assignment[v] = j

    # ------------------------------------------------------------------
    @staticmethod
    def _stream_pass_chunked(
        state: StreamState,
        cost_matrix: np.ndarray,
        alpha: float,
        order: np.ndarray,
        presence_threshold: int,
        chunk_size: int,
    ) -> None:
        """Chunked variant of :meth:`_stream_pass` (``config.chunk_size``).

        Per block of ``chunk_size`` vertices: lift the whole block out of
        the state with one sorted scatter-subtract, build the stacked
        neighbour matrix ``X`` with one segmented gather, and get every
        vertex's communication term from a single matmul
        (:func:`~repro.core.value.block_value_terms`).  Placement stays
        sequential and the load penalty tracks every placement made so
        far within the block — but both terms see the whole block as
        lifted out: a vertex scores against a state missing the old
        positions (counts *and* loads) of block members not yet
        re-placed, which is the block-staleness this variant trades for
        speed.  Since ``X`` is frozen for the block anyway, a placement
        changes future scores in exactly one column (its load penalty),
        so the inner loop is a single ``p``-length subtract + argmax;
        all pin-count updates are applied in one batch at block end.
        This removes the ``O(p^2)`` per-vertex mat-vec and nearly all
        per-vertex NumPy call overhead.
        """
        p = state.num_parts
        counts = state.edge_counts
        loads = state.loads
        assignment = state.assignment
        vptr = state.hg.vertex_ptr
        vedges = state.hg.vertex_edges
        weights = state.hg.vertex_weights
        alpha_inv_expected = alpha / state.expected_loads
        values = np.empty(p, dtype=np.float64)
        flat = counts.reshape(-1)
        cdtype = counts.dtype

        for start in range(0, order.size, chunk_size):
            block = order[start : start + chunk_size]
            degs = vptr[block + 1] - vptr[block]
            total = int(degs.sum())
            m = block.size
            # Gather the concatenated incident-edge lists of the block.
            offsets = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(degs, out=offsets[1:])
            owner = np.repeat(np.arange(m, dtype=np.int64), degs)
            idx = (
                np.arange(total, dtype=np.int64)
                - np.repeat(offsets[:-1], degs)
                + np.repeat(vptr[block], degs)
            )
            rows_all = vedges[idx]
            # Lift the whole block out of the running state.  unique()
            # merges duplicate (edge, part) keys so one fancy-indexed
            # subtract replaces a slow unbuffered ufunc.at scatter.
            old = assignment[block]
            keys = rows_all * p + old[owner]
            uniq, cnt = np.unique(keys, return_counts=True)
            flat[uniq] -= cnt.astype(cdtype)
            loads -= np.bincount(old, weights=weights[block], minlength=p)
            # Stacked neighbour counts + one matmul for all comm terms.
            X = np.zeros((m, p), dtype=cdtype)
            if total:
                # reduceat mis-handles empty segments, so sum only the
                # rows of non-isolated vertices (isolated rows stay 0).
                nonzero = degs > 0
                X[nonzero] = np.add.reduceat(
                    counts[rows_all], offsets[:-1][nonzero], axis=0
                )
            T, n_neigh = block_value_terms(
                X, cost_matrix, presence_threshold=presence_threshold
            )
            M = T * (-(n_neigh / p))[:, None]
            # Sequential placement: only the load penalty evolves inside
            # the block, and placing one vertex moves one column of it.
            penalty = alpha_inv_expected * loads
            w_block = weights[block]
            new = np.empty(m, dtype=np.int64)
            for i in range(m):
                np.subtract(M[i], penalty, out=values)
                j = int(np.argmax(values))
                new[i] = j
                penalty[j] += alpha_inv_expected[j] * w_block[i]
            # Re-insert the whole block at its new positions.
            keys = rows_all * p + new[owner]
            uniq, cnt = np.unique(keys, return_counts=True)
            flat[uniq] += cnt.astype(cdtype)
            loads += np.bincount(new, weights=w_block, minlength=p)
            assignment[block] = new
