"""HyperPRAW: architecture-aware hypergraph restreaming (Algorithm 1).

The algorithm, as published:

1. Initialise with a round-robin assignment (``v -> v mod p``).
2. Repeat up to ``N`` streaming passes.  Each pass visits every vertex,
   lifts it out of the running state, scores every partition with the
   value function ``V_i(v) = -N_i(v) T_i(v) - alpha W(i)/E(i)`` (Eq. 1)
   and re-places the vertex at the argmax.
3. After each pass, while the load imbalance exceeds the tolerance,
   multiply ``alpha`` by the tempering update (1.7) and stream again.
4. Once within tolerance, the **refinement phase** begins: keep streaming
   (updating ``alpha`` by the refinement factor — 0.95 relaxes balance
   pressure) while the partitioning communication cost (Eq. 5) improves;
   when a pass makes it worse, roll back to the previous pass's partition
   and stop.  With ``refinement`` disabled the algorithm instead stops at
   the first pass within tolerance (Figure 3's "no refinement" baseline).

Architecture awareness enters *only* through the cost matrix ``C``:
**HyperPRAW-aware** receives the profiled matrix of Section 4.2;
**HyperPRAW-basic** receives the uniform matrix (every distinct pair costs
1), making it a pure communication-volume restreamer.

Complexity per pass: ``O(sum_v deg(v) * p)`` — each vertex move touches
its incident hyperedges' partition counters, and scoring is one ``p x p``
mat-vec.

The pass body itself lives in :func:`repro.engine.kernel.pass_kernel`
(shared with every other streaming partitioner); this class owns only
Algorithm 1's outer loop — the tempering schedule, the refinement
rollback and the bookkeeping.
"""

from __future__ import annotations

import time

import numpy as np

from repro.architecture.cost import (
    is_uniform_cost,
    uniform_cost_matrix,
    validate_cost_matrix,
)
from repro.core.base import Partitioner
from repro.core.config import HyperPRAWConfig
from repro.core.metrics import partitioning_comm_cost
from repro.core.result import IterationRecord, PartitionResult
from repro.core.schedule import TemperingSchedule, initial_alpha
from repro.core.state import StreamState
from repro.engine import (
    DenseKernelState,
    HyperPRAWScorer,
    InMemorySource,
    pass_kernel,
    resolve_kernel,
)
from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator

__all__ = ["HyperPRAW"]


class HyperPRAW(Partitioner):
    """The paper's restreaming partitioner.

    Parameters
    ----------
    config:
        algorithm parameters; defaults to the paper's winning
        configuration (refinement factor 0.95).
    variant:
        optional label override; otherwise the name reflects whether a
        non-uniform cost matrix was supplied at :meth:`partition` time.

    Examples
    --------
    >>> from repro.hypergraph import load_instance
    >>> from repro.core import HyperPRAW
    >>> hg = load_instance("sparsine", scale=0.1)
    >>> result = HyperPRAW().partition(hg, 8)
    >>> result.assignment.shape == (hg.num_vertices,)
    True
    """

    def __init__(self, config: "HyperPRAWConfig | None" = None, *, variant: str | None = None):
        self.config = config or HyperPRAWConfig()
        self._variant = variant
        self.name = variant or "hyperpraw"

    # ------------------------------------------------------------------
    @classmethod
    def basic(cls, config: "HyperPRAWConfig | None" = None) -> "HyperPRAW":
        """HyperPRAW-basic: ignores any supplied cost matrix (uniform costs)."""
        obj = cls(config, variant="hyperpraw-basic")
        obj._force_uniform = True
        return obj

    @classmethod
    def aware(cls, config: "HyperPRAWConfig | None" = None) -> "HyperPRAW":
        """HyperPRAW-aware: requires a cost matrix at partition time."""
        return cls(config, variant="hyperpraw-aware")

    _force_uniform = False

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Run Algorithm 1 on ``hg``.

        ``cost_matrix`` selects the variant: ``None`` (or a
        :meth:`basic`-constructed instance) uses uniform costs.
        """
        self._check_args(hg, num_parts)
        cfg = self.config
        if self._force_uniform or cost_matrix is None:
            C = uniform_cost_matrix(num_parts)
            aware = False
        else:
            C = validate_cost_matrix(cost_matrix, num_units=num_parts)
            aware = not is_uniform_cost(C)
        if self._variant is None:
            # A literally uniform matrix fed to an `aware()`-constructed
            # instance is legal (flat machines exist): the explicit variant
            # label is kept while behaviour coincides with basic, which
            # tests assert explicitly.  Only unlabelled instances get their
            # name derived from the matrix actually supplied.
            self.name = "hyperpraw-aware" if aware else "hyperpraw-basic"

        t_start = time.perf_counter()
        # Algorithm 1 line 1: round-robin initialisation.
        init = np.arange(hg.num_vertices, dtype=np.int64) % num_parts
        state = StreamState(hg, num_parts, init)
        schedule = TemperingSchedule(
            alpha=initial_alpha(hg, num_parts, cfg.alpha_initial),
            tempering_update=cfg.alpha_update,
            refinement_factor=cfg.refinement_factor,
        )
        order = np.arange(hg.num_vertices, dtype=np.int64)
        if cfg.stream_order == "shuffled":
            as_generator(seed).shuffle(order)
        source = InMemorySource(hg, order=order, block_size=cfg.chunk_size)
        kernel_state = DenseKernelState.from_stream_state(state)
        score_mode = "chunk" if cfg.chunk_size is not None else "vertex"
        # Resolve the kernel once up front (one fallback warning at most);
        # scorer construction is per pass but its type never changes.
        kernel_mode = resolve_kernel(
            cfg.kernel,
            kernel_state,
            HyperPRAWScorer(
                C, schedule.alpha, state.expected_loads, cfg.presence_threshold
            ),
            score_mode,
        )
        pass_seconds = 0.0

        history: list[IterationRecord] = []
        best_assignment: "np.ndarray | None" = None
        best_cost = np.inf
        converged = False
        rolled_back = False
        iterations_run = 0

        for it in range(1, cfg.max_iterations + 1):
            alpha = schedule.alpha
            scorer = HyperPRAWScorer(
                C, alpha, state.expected_loads, cfg.presence_threshold
            )
            t_pass = time.perf_counter()
            pass_kernel(
                source.blocks(),
                kernel_state,
                scorer,
                state.assignment,
                restream=True,
                score_mode=score_mode,
                kernel=kernel_mode,
            )
            pass_seconds += time.perf_counter() - t_pass
            iterations_run = it
            imb = state.imbalance()
            cost = partitioning_comm_cost(
                hg,
                state.assignment,
                num_parts,
                C,
                counts=state.edge_counts,
                use_edge_weights=cfg.use_edge_weights,
            )
            within = imb <= cfg.imbalance_tolerance
            if cfg.record_history:
                history.append(
                    IterationRecord(
                        iteration=it,
                        alpha=alpha,
                        imbalance=imb,
                        pc_cost=cost,
                        phase="refinement" if within else "tempering",
                    )
                )
            if not within:
                schedule.after_pass(within_tolerance=False)
                continue
            # --- within tolerance ---------------------------------------
            if not cfg.refinement:
                best_assignment, best_cost = state.snapshot(), cost
                converged = True
                break
            if cost < best_cost:
                best_assignment, best_cost = state.snapshot(), cost
                schedule.after_pass(within_tolerance=True)
                continue
            # Refinement stopped improving: roll back to the best pass.
            converged = True
            rolled_back = True
            break

        if best_assignment is None:
            # Never reached tolerance within the iteration budget; return
            # the final state (the paper's Algorithm 1 returns P^N too).
            best_assignment = state.snapshot()
            best_cost = partitioning_comm_cost(
                hg,
                best_assignment,
                num_parts,
                C,
                counts=state.edge_counts,
                use_edge_weights=cfg.use_edge_weights,
            )

        return PartitionResult(
            assignment=best_assignment,
            num_parts=num_parts,
            algorithm=self.name,
            iterations=history,
            metadata={
                "converged": converged,
                "rolled_back": rolled_back,
                "iterations_run": iterations_run,
                "final_alpha": schedule.alpha,
                "final_pc_cost": float(best_cost),
                "architecture_aware": aware,
                "imbalance_tolerance": cfg.imbalance_tolerance,
                "chunk_size": cfg.chunk_size,
                "kernel_mode": kernel_mode,
                "pass_seconds": pass_seconds,
                "wall_time_s": time.perf_counter() - t_start,
            },
        )
