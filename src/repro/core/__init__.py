"""Core contribution: the HyperPRAW restreaming partitioner.

This package implements the paper's Section 4 in full:

* :class:`~repro.core.hyperpraw.HyperPRAW` — Algorithm 1: round-robin
  initialisation, repeated greedy streams driven by the value function of
  Eq. 1, FENNEL-style alpha tempering while over the imbalance tolerance,
  and the refinement phase (Section 4.3 / 6.1) that keeps restreaming
  while the partitioning-communication-cost metric improves, rolling back
  one pass when it degrades.
* :mod:`~repro.core.value` — the vertex assignment value function
  (Eqs. 1–4).
* :mod:`~repro.core.state` — the incremental stream state: per-hyperedge
  partition pin counts, partition loads, O(deg(v) + p) vertex moves.
* :mod:`~repro.core.schedule` — initial alpha choices and the tempering /
  refinement update rules.
* :mod:`~repro.core.metrics` — partition quality metrics: hyperedge cut,
  SOED, connectivity-1, imbalance, and the paper's partitioning
  communication cost (Eq. 5).
* :mod:`~repro.core.result` / :mod:`~repro.core.base` — result containers
  and the partitioner interface shared with the baselines in
  :mod:`repro.partitioning`.
"""

from repro.core.base import Partitioner
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.core.metrics import (
    PartitionQuality,
    edge_partition_counts,
    partition_loads,
    imbalance,
    hyperedge_cut,
    soed,
    connectivity_minus_one,
    partitioning_comm_cost,
    evaluate_partition,
)
from repro.core.result import PartitionResult, IterationRecord

__all__ = [
    "Partitioner",
    "HyperPRAWConfig",
    "HyperPRAW",
    "PartitionQuality",
    "edge_partition_counts",
    "partition_loads",
    "imbalance",
    "hyperedge_cut",
    "soed",
    "connectivity_minus_one",
    "partitioning_comm_cost",
    "evaluate_partition",
    "PartitionResult",
    "IterationRecord",
]
