"""Result containers shared by every partitioner.

:class:`PartitionResult` is the single return type of the partitioner API:
an assignment vector plus provenance (algorithm, parameters) and — for the
restreaming algorithms — the per-iteration history that Figure 3 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "PartitionResult"]


@dataclass(frozen=True)
class IterationRecord:
    """One restreaming pass, as plotted in Figure 3.

    Attributes
    ----------
    iteration:
        1-based pass number.
    alpha:
        workload-imbalance weight used *during* the pass.
    imbalance:
        max-load / mean-load after the pass.
    pc_cost:
        partitioning communication cost (Eq. 5) after the pass.
    phase:
        ``"tempering"`` while over the imbalance tolerance,
        ``"refinement"`` once within it.
    """

    iteration: int
    alpha: float
    imbalance: float
    pc_cost: float
    phase: str


@dataclass
class PartitionResult:
    """A partition assignment with provenance.

    Attributes
    ----------
    assignment:
        int array of length ``num_vertices``; ``assignment[v]`` is the
        partition of vertex ``v``, in ``0..num_parts-1``.
    num_parts:
        number of partitions requested (every value in ``assignment`` is
        below this; a partition may legitimately end up empty).
    algorithm:
        short identifier, e.g. ``"hyperpraw-aware"`` or ``"multilevel-rb"``.
    iterations:
        restreaming history (empty for single-shot partitioners).
    metadata:
        free-form run details (seeds, config echoes, timing).
    """

    assignment: np.ndarray
    num_parts: int
    algorithm: str
    iterations: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.assignment = np.asarray(self.assignment, dtype=np.int32)
        if self.assignment.ndim != 1:
            raise ValueError(
                f"assignment must be 1-D, got shape {self.assignment.shape}"
            )
        if self.num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {self.num_parts}")
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_parts
        ):
            raise ValueError(
                f"assignment values must lie in [0, {self.num_parts}), got "
                f"[{self.assignment.min()}, {self.assignment.max()}]"
            )

    @property
    def num_vertices(self) -> int:
        return int(self.assignment.size)

    def part_sizes(self) -> np.ndarray:
        """Vertices per partition (length ``num_parts``)."""
        return np.bincount(self.assignment, minlength=self.num_parts)

    def final_pc_cost(self) -> float:
        """PC cost of the last recorded iteration (NaN when no history)."""
        if not self.iterations:
            return float("nan")
        return self.iterations[-1].pc_cost

    def history_series(self) -> tuple[list, list]:
        """``(iteration_numbers, pc_costs)`` for Figure 3 plotting."""
        return (
            [r.iteration for r in self.iterations],
            [r.pc_cost for r in self.iterations],
        )
