"""Alpha initialisation and tempering schedule (Sections 4 and 6.1).

The workload-imbalance weight ``alpha`` starts low — early streams
partition almost purely on communication cost — and is multiplied by the
update parameter (paper value 1.7) after every pass while the partition is
still over the imbalance tolerance.  Once within tolerance the *refinement
phase* takes over and alpha is instead multiplied by the refinement factor
each pass: 1.0 freezes it, the paper's best value 0.95 *relaxes* balance
pressure, searching for an acceptable solution that is maximally
imbalanced (paper Section 7's intuition).

Initial value
-------------
The paper cites FENNEL's suggestion but prints
``alpha = sqrt(p) * |E| / sqrt(|V|)``, which differs from FENNEL's
``sqrt(k) * m / n^{3/2}`` by a factor of ``|V|``.  Empirically the printed
form reproduces the paper's Figure 3 exactly: the load term dominates from
the first pass, the stream stays within tolerance, and the monitored PC
cost *descends monotonically* across refinement passes.  The literal
FENNEL value starts so low that early passes collapse into a near-one-
partition assignment (imbalance ~p) and PC *rises* during tempering —
nothing like the published histories.  ``"paper"`` is therefore the
default; ``"fennel"`` remains available and an ablation benchmark compares
the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hypergraph.model import Hypergraph

__all__ = ["initial_alpha", "initial_alpha_from_counts", "TemperingSchedule"]


def initial_alpha_from_counts(
    num_vertices: int, num_edges: int, num_parts: int, mode="fennel"
) -> float:
    """Starting value for the imbalance weight, from bare counts.

    The streaming partitioners know ``|V|`` and ``|E|`` from the file
    header long before any hypergraph object exists, so the formula is
    exposed on counts; :func:`initial_alpha` is the in-memory wrapper.

    Parameters
    ----------
    mode:
        ``"fennel"`` — ``sqrt(p) * |E| / |V|^{3/2}`` (default);
        ``"paper"`` — ``sqrt(p) * |E| / sqrt(|V|)`` as literally printed;
        any positive float — used verbatim.
    """
    if isinstance(mode, (int, float)) and not isinstance(mode, bool):
        if mode <= 0:
            raise ValueError(f"explicit alpha must be > 0, got {mode}")
        return float(mode)
    v, e, p = num_vertices, num_edges, num_parts
    if mode == "fennel":
        return math.sqrt(p) * e / v**1.5
    if mode == "paper":
        return math.sqrt(p) * e / math.sqrt(v)
    raise ValueError(f"mode must be 'fennel', 'paper' or a float, got {mode!r}")


def initial_alpha(hg: Hypergraph, num_parts: int, mode="fennel") -> float:
    """Starting value for the imbalance weight (see
    :func:`initial_alpha_from_counts` for the formulas)."""
    return initial_alpha_from_counts(hg.num_vertices, hg.num_edges, num_parts, mode)


@dataclass
class TemperingSchedule:
    """Stateful alpha schedule.

    Attributes
    ----------
    alpha:
        current weight (applied to the *next* pass).
    tempering_update:
        multiplier while over the imbalance tolerance (paper: 1.7).
    refinement_factor:
        multiplier once within tolerance (paper: 1.0 or 0.95).
    """

    alpha: float
    tempering_update: float = 1.7
    refinement_factor: float = 0.95

    def __post_init__(self):
        if self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")
        if self.tempering_update <= 0:
            raise ValueError(
                f"tempering_update must be > 0, got {self.tempering_update}"
            )
        if self.refinement_factor <= 0:
            raise ValueError(
                f"refinement_factor must be > 0, got {self.refinement_factor}"
            )

    def after_pass(self, *, within_tolerance: bool) -> float:
        """Advance the schedule after a completed pass; returns new alpha.

        Over tolerance the update pushes balance harder (x1.7); within
        tolerance the refinement factor applies.
        """
        if within_tolerance:
            self.alpha *= self.refinement_factor
        else:
            self.alpha *= self.tempering_update
        return self.alpha
