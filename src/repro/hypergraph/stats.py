"""Per-instance statistics — the columns of the paper's Table 1.

Table 1 reports, per hypergraph: vertices, hyperedges, total NNZ (pins),
average cardinality and the hyperedge/vertex ratio.  We add a few extra
shape descriptors (cardinality quantiles, degree statistics) that the
generator calibration and the test suite use to verify the stand-ins match
their targets.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import numpy as np

from repro.hypergraph.model import Hypergraph

__all__ = ["HypergraphStats", "compute_stats"]


@dataclass(frozen=True)
class HypergraphStats:
    """Summary statistics of a hypergraph instance.

    The first five fields replicate Table 1; the rest are auxiliary shape
    descriptors.
    """

    name: str
    num_vertices: int
    num_edges: int
    num_pins: int
    avg_cardinality: float
    edge_vertex_ratio: float
    max_cardinality: int
    median_cardinality: float
    avg_degree: float
    max_degree: int
    isolated_vertices: int

    def table1_row(self) -> list:
        """Row in the paper's Table 1 column order."""
        return [
            self.name,
            self.num_vertices,
            self.num_edges,
            self.num_pins,
            round(self.avg_cardinality, 2),
            round(self.edge_vertex_ratio, 2),
        ]

    def as_dict(self) -> dict:
        return asdict(self)


def compute_stats(hg: Hypergraph) -> HypergraphStats:
    """Compute :class:`HypergraphStats` for ``hg`` in O(pins)."""
    cards = hg.cardinalities()
    degrees = hg.degrees()
    return HypergraphStats(
        name=hg.name,
        num_vertices=hg.num_vertices,
        num_edges=hg.num_edges,
        num_pins=hg.num_pins,
        avg_cardinality=float(cards.mean()) if cards.size else 0.0,
        edge_vertex_ratio=hg.num_edges / hg.num_vertices,
        max_cardinality=int(cards.max()) if cards.size else 0,
        median_cardinality=float(np.median(cards)) if cards.size else 0.0,
        avg_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        isolated_vertices=int((degrees == 0).sum()),
    )
