"""Hypergraph substrate.

A hypergraph ``H = (V, E)`` generalises a graph: each hyperedge is an
arbitrary subset of the vertex set.  The paper models a parallel application
as a hypergraph in which each hyperedge is a group of compute elements that
communicate every timestep; partitioning the hypergraph over ``p`` compute
units then controls how much of that communication crosses unit boundaries.

This package provides:

* :class:`~repro.hypergraph.model.Hypergraph` — an immutable CSR-backed
  hypergraph with vertex/hyperedge weights and O(1) access to both
  incidence directions (hyperedge -> pins, vertex -> incident hyperedges).
* :mod:`~repro.hypergraph.io` — readers/writers for the hMetis and PaToH
  text formats plus MatrixMarket sparse matrices interpreted under the
  row-net / column-net models of Catalyurek & Aykanat (the convention the
  paper's dataset uses).
* :mod:`~repro.hypergraph.generators` — synthetic hypergraph families
  (uniform random, power-law, SAT primal/dual, FEM-mesh row-net, protein
  contact) used to stand in for the paper's Zenodo dataset.
* :mod:`~repro.hypergraph.stats` — per-instance statistics reproducing the
  columns of the paper's Table 1.
* :mod:`~repro.hypergraph.suite` — the registry of 10 named stand-in
  instances matching the paper's Table 1 rows.
"""

from repro.hypergraph.model import Hypergraph
from repro.hypergraph.stats import HypergraphStats, compute_stats
from repro.hypergraph.generators import (
    random_uniform_hypergraph,
    powerlaw_hypergraph,
    sat_primal_hypergraph,
    sat_dual_hypergraph,
    mesh_matrix_hypergraph,
    contact_hypergraph,
)
from repro.hypergraph.suite import (
    BenchmarkInstance,
    benchmark_suite,
    load_instance,
    instance_names,
)
from repro.hypergraph import io

__all__ = [
    "Hypergraph",
    "HypergraphStats",
    "compute_stats",
    "random_uniform_hypergraph",
    "powerlaw_hypergraph",
    "sat_primal_hypergraph",
    "sat_dual_hypergraph",
    "mesh_matrix_hypergraph",
    "contact_hypergraph",
    "BenchmarkInstance",
    "benchmark_suite",
    "load_instance",
    "instance_names",
    "io",
]
