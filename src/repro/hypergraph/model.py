"""CSR-backed hypergraph model.

Design notes
------------
The streaming partitioner visits every vertex once per pass and needs, per
vertex, the pin lists of all incident hyperedges.  The multilevel baseline
needs the same plus fast hyperedge iteration.  Both directions are therefore
stored in compressed-sparse-row form:

* ``edge_ptr``/``edge_pins``  — hyperedge ``e`` pins are
  ``edge_pins[edge_ptr[e]:edge_ptr[e+1]]`` (sorted, duplicate-free);
* ``vertex_ptr``/``vertex_edges`` — hyperedges incident to vertex ``v`` are
  ``vertex_edges[vertex_ptr[v]:vertex_ptr[v+1]]`` (sorted).

The structure is immutable after construction: the partitioners never mutate
the hypergraph, only their own assignment state, which keeps hypergraphs
shareable across experiments without defensive copying.  Weights default to
one (the paper assumes unit vertex work and unit hyperedge traffic; its
"further work" section discusses weighted hyperedges, which we support).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_positive

__all__ = ["Hypergraph"]


class Hypergraph:
    """Immutable hypergraph ``H = (V, E)`` with CSR incidence in both
    directions.

    Parameters
    ----------
    num_vertices:
        size of the vertex set ``V``; vertices are ``0 .. num_vertices-1``.
        Isolated vertices (in no hyperedge) are allowed — the paper's
        datasets contain them and the streaming partitioner must still place
        them.
    edges:
        iterable of pin lists.  Pins are de-duplicated and sorted; empty
        hyperedges are rejected (they model no communication and break the
        cut metrics' invariants).
    vertex_weights / edge_weights:
        optional positive weights (computation load per vertex, traffic per
        hyperedge).  Default is 1 for both, matching the paper's setup.
    name:
        optional label used in reports.

    Notes
    -----
    Construction is O(total pins) using NumPy bulk operations; no Python
    per-pin loops.
    """

    __slots__ = (
        "name",
        "num_vertices",
        "num_edges",
        "edge_ptr",
        "edge_pins",
        "vertex_ptr",
        "vertex_edges",
        "vertex_weights",
        "edge_weights",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Sequence[int]],
        *,
        vertex_weights: Sequence[float] | None = None,
        edge_weights: Sequence[float] | None = None,
        name: str = "hypergraph",
    ) -> None:
        check_positive("num_vertices", num_vertices)
        self.name = str(name)
        self.num_vertices = int(num_vertices)

        ptr = [0]
        flat: list[np.ndarray] = []
        for i, pins in enumerate(edges):
            arr = np.unique(np.asarray(pins, dtype=np.int64))
            if arr.size == 0:
                raise ValueError(f"hyperedge {i} is empty")
            if arr[0] < 0 or arr[-1] >= num_vertices:
                raise ValueError(
                    f"hyperedge {i} has pins outside [0, {num_vertices}): "
                    f"min={arr[0]}, max={arr[-1]}"
                )
            flat.append(arr)
            ptr.append(ptr[-1] + arr.size)
        self.num_edges = len(flat)
        self.edge_ptr = np.asarray(ptr, dtype=np.int64)
        self.edge_pins = (
            np.concatenate(flat) if flat else np.empty(0, dtype=np.int64)
        )

        self.vertex_ptr, self.vertex_edges = self._build_vertex_incidence()
        self.vertex_weights = self._check_weights(
            vertex_weights, self.num_vertices, "vertex_weights"
        )
        self.edge_weights = self._check_weights(
            edge_weights, self.num_edges, "edge_weights"
        )
        # Freeze the arrays: the partitioners rely on hypergraph immutability.
        for arr in (
            self.edge_ptr,
            self.edge_pins,
            self.vertex_ptr,
            self.vertex_edges,
            self.vertex_weights,
            self.edge_weights,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_vertex_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Invert edge->pins into vertex->edges with a counting sort."""
        nnz = self.edge_pins.size
        counts = np.bincount(self.edge_pins, minlength=self.num_vertices)
        vptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=vptr[1:])
        vedges = np.empty(nnz, dtype=np.int64)
        if nnz:
            edge_ids = np.repeat(
                np.arange(self.num_edges, dtype=np.int64),
                np.diff(self.edge_ptr),
            )
            # Stable sort by pin vertex keeps per-vertex edge lists sorted
            # by edge id, which tests and the coarsener rely on.
            order = np.argsort(self.edge_pins, kind="stable")
            vedges[:] = edge_ids[order]
        return vptr, vedges

    @staticmethod
    def _check_weights(weights, n: int, label: str) -> np.ndarray:
        if weights is None:
            return np.ones(n, dtype=np.float64)
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != (n,):
            raise ValueError(f"{label} must have shape ({n},), got {arr.shape}")
        if (arr <= 0).any():
            raise ValueError(f"{label} must be strictly positive")
        return arr.copy()

    # ------------------------------------------------------------------
    # alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_csr_arrays(
        cls,
        num_vertices: int,
        edge_ptr: np.ndarray,
        edge_pins: np.ndarray,
        *,
        vertex_weights=None,
        edge_weights=None,
        name: str = "hypergraph",
    ) -> "Hypergraph":
        """Build from raw CSR arrays (pins may be unsorted / duplicated).

        This is the fast path used by the generators: it avoids a Python
        loop over hyperedges by de-duplicating all pins in one vectorised
        pass.
        """
        edge_ptr = np.asarray(edge_ptr, dtype=np.int64)
        edge_pins = np.asarray(edge_pins, dtype=np.int64)
        if edge_ptr.ndim != 1 or edge_ptr.size < 1 or edge_ptr[0] != 0:
            raise ValueError("edge_ptr must be 1-D, start at 0")
        if (np.diff(edge_ptr) < 0).any():
            raise ValueError("edge_ptr must be non-decreasing")
        if edge_ptr[-1] != edge_pins.size:
            raise ValueError(
                f"edge_ptr[-1]={edge_ptr[-1]} must equal len(edge_pins)={edge_pins.size}"
            )
        num_edges = edge_ptr.size - 1
        if edge_pins.size and (
            edge_pins.min() < 0 or edge_pins.max() >= num_vertices
        ):
            raise ValueError("edge_pins contain out-of-range vertices")

        # Vectorised per-edge dedup: sort (edge_id, pin) pairs, drop repeats.
        edge_ids = np.repeat(np.arange(num_edges, dtype=np.int64), np.diff(edge_ptr))
        order = np.lexsort((edge_pins, edge_ids))
        e_sorted = edge_ids[order]
        p_sorted = edge_pins[order]
        if e_sorted.size:
            keep = np.empty(e_sorted.size, dtype=bool)
            keep[0] = True
            keep[1:] = (e_sorted[1:] != e_sorted[:-1]) | (
                p_sorted[1:] != p_sorted[:-1]
            )
            e_sorted = e_sorted[keep]
            p_sorted = p_sorted[keep]
        new_counts = np.bincount(e_sorted, minlength=num_edges)
        if (new_counts == 0).any():
            empty = int(np.flatnonzero(new_counts == 0)[0])
            raise ValueError(f"hyperedge {empty} is empty")
        new_ptr = np.zeros(num_edges + 1, dtype=np.int64)
        np.cumsum(new_counts, out=new_ptr[1:])

        obj = cls.__new__(cls)
        obj.name = str(name)
        obj.num_vertices = int(num_vertices)
        obj.num_edges = int(num_edges)
        obj.edge_ptr = new_ptr
        obj.edge_pins = p_sorted
        obj.vertex_ptr, obj.vertex_edges = Hypergraph._build_vertex_incidence(obj)
        obj.vertex_weights = cls._check_weights(
            vertex_weights, obj.num_vertices, "vertex_weights"
        )
        obj.edge_weights = cls._check_weights(
            edge_weights, obj.num_edges, "edge_weights"
        )
        for arr in (
            obj.edge_ptr,
            obj.edge_pins,
            obj.vertex_ptr,
            obj.vertex_edges,
            obj.vertex_weights,
            obj.edge_weights,
        ):
            arr.setflags(write=False)
        return obj

    @classmethod
    def from_sparse(
        cls,
        matrix,
        *,
        model: str = "row-net",
        name: str | None = None,
        drop_empty: bool = True,
    ) -> "Hypergraph":
        """Interpret a sparse matrix as a hypergraph.

        Under the **row-net** model (Catalyurek & Aykanat 1999) each matrix
        *column* is a vertex and each *row* a hyperedge containing the
        columns with a non-zero in that row; **column-net** is the
        transpose.  This is how the paper's dataset derives hypergraphs from
        sparse-matrix collections.

        Parameters
        ----------
        matrix:
            any scipy sparse matrix or dense 2-D array.
        model:
            ``"row-net"`` or ``"column-net"``.
        drop_empty:
            silently drop all-zero rows (nets with no pins).  When False,
            an all-zero row raises.
        """
        if model not in ("row-net", "column-net"):
            raise ValueError(f"model must be 'row-net' or 'column-net', got {model!r}")
        csr = sp.csr_array(matrix)
        if model == "column-net":
            csr = sp.csr_array(csr.T)
        num_rows, num_cols = csr.shape
        indptr = csr.indptr.astype(np.int64)
        indices = csr.indices.astype(np.int64)
        if drop_empty:
            lengths = np.diff(indptr)
            keep = lengths > 0
            if not keep.all():
                new_ptr = np.zeros(int(keep.sum()) + 1, dtype=np.int64)
                np.cumsum(lengths[keep], out=new_ptr[1:])
                indptr = new_ptr
        return cls.from_csr_arrays(
            num_cols,
            indptr,
            indices,
            name=name or f"sparse-{model}",
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_pins(self) -> int:
        """Total number of (hyperedge, vertex) incidences — the dataset
        tables call this NNZ."""
        return int(self.edge_pins.size)

    def edge(self, e: int) -> np.ndarray:
        """Read-only view of the sorted pin list of hyperedge ``e``."""
        return self.edge_pins[self.edge_ptr[e] : self.edge_ptr[e + 1]]

    def edges_of(self, v: int) -> np.ndarray:
        """Read-only view of the sorted incident-hyperedge list of ``v``."""
        return self.vertex_edges[self.vertex_ptr[v] : self.vertex_ptr[v + 1]]

    def cardinalities(self) -> np.ndarray:
        """Hyperedge sizes |e| as an int64 array of length ``num_edges``."""
        return np.diff(self.edge_ptr)

    def degrees(self) -> np.ndarray:
        """Vertex degrees (number of incident hyperedges)."""
        return np.diff(self.vertex_ptr)

    def iter_edges(self) -> Iterator[np.ndarray]:
        """Iterate over pin-list views, hyperedge by hyperedge."""
        for e in range(self.num_edges):
            yield self.edge(e)

    def to_edge_list(self) -> list[list[int]]:
        """Materialise pin lists as Python lists (for I/O and tests)."""
        return [self.edge(e).tolist() for e in range(self.num_edges)]

    def incidence_matrix(self) -> sp.csr_array:
        """Sparse ``num_edges x num_vertices`` 0/1 incidence matrix."""
        data = np.ones(self.num_pins, dtype=np.float64)
        return sp.csr_array(
            (data, self.edge_pins.astype(np.int32), self.edge_ptr),
            shape=(self.num_edges, self.num_vertices),
        )

    def total_vertex_weight(self) -> float:
        return float(self.vertex_weights.sum())

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def with_weights(
        self,
        *,
        vertex_weights=None,
        edge_weights=None,
        name: str | None = None,
    ) -> "Hypergraph":
        """Return a copy sharing structure but with new weights."""
        obj = Hypergraph.__new__(Hypergraph)
        obj.name = name or self.name
        obj.num_vertices = self.num_vertices
        obj.num_edges = self.num_edges
        obj.edge_ptr = self.edge_ptr
        obj.edge_pins = self.edge_pins
        obj.vertex_ptr = self.vertex_ptr
        obj.vertex_edges = self.vertex_edges
        obj.vertex_weights = self._check_weights(
            vertex_weights if vertex_weights is not None else self.vertex_weights,
            self.num_vertices,
            "vertex_weights",
        )
        obj.edge_weights = self._check_weights(
            edge_weights if edge_weights is not None else self.edge_weights,
            self.num_edges,
            "edge_weights",
        )
        obj.vertex_weights.setflags(write=False)
        obj.edge_weights.setflags(write=False)
        return obj

    def without_singleton_edges(self) -> "Hypergraph":
        """Drop hyperedges of cardinality 1.

        Singletons cannot be cut, so they contribute nothing to any metric;
        the multilevel baseline removes them before coarsening (as Zoltan
        and PaToH do).
        """
        keep = self.cardinalities() > 1
        if keep.all():
            return self
        kept_ids = np.flatnonzero(keep)
        lengths = np.diff(self.edge_ptr)[kept_ids]
        new_ptr = np.zeros(kept_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_ptr[1:])
        pins = np.concatenate(
            [self.edge(e) for e in kept_ids]
        ) if kept_ids.size else np.empty(0, dtype=np.int64)
        return Hypergraph.from_csr_arrays(
            self.num_vertices,
            new_ptr,
            pins,
            vertex_weights=self.vertex_weights,
            edge_weights=self.edge_weights[kept_ids],
            name=f"{self.name}-nosingletons",
        )

    # ------------------------------------------------------------------
    # dunder / diagnostics
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.num_edges == other.num_edges
            and np.array_equal(self.edge_ptr, other.edge_ptr)
            and np.array_equal(self.edge_pins, other.edge_pins)
            and np.array_equal(self.vertex_weights, other.vertex_weights)
            and np.array_equal(self.edge_weights, other.edge_weights)
        )

    def __hash__(self):  # structures are compared by value, not identity
        return hash(
            (self.num_vertices, self.num_edges, self.num_pins, self.edge_pins.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"Hypergraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, pins={self.num_pins})"
        )

    def validate(self) -> None:
        """Re-check all structural invariants; raises AssertionError on
        corruption.  Used by tests and after deserialisation."""
        assert self.edge_ptr[0] == 0 and self.edge_ptr[-1] == self.edge_pins.size
        assert (np.diff(self.edge_ptr) >= 1).all(), "empty hyperedge"
        assert self.vertex_ptr[-1] == self.edge_pins.size
        for e in range(self.num_edges):
            pins = self.edge(e)
            assert (np.diff(pins) > 0).all(), f"edge {e} pins not strictly sorted"
        # both directions describe the same incidence set
        inc_a = set(zip(self.edge_pins.tolist(), np.repeat(
            np.arange(self.num_edges), np.diff(self.edge_ptr)).tolist()))
        pairs_b = []
        for v in range(self.num_vertices):
            for e in self.edges_of(v):
                pairs_b.append((v, int(e)))
        assert inc_a == set(pairs_b), "incidence directions disagree"
