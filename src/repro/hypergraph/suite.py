"""The 10-instance benchmark suite standing in for the paper's Table 1.

The paper selects 10 hypergraphs from the Schlag benchmark collection
"ranging in size, average cardinality and hyperedge/vertex ratio".  The
collection is not available offline, so each row of Table 1 is replaced by a
synthetic instance from the generator family matching its provenance, scaled
down to laptop size while preserving the two shape parameters the paper
emphasises: **average cardinality** and **hyperedge/vertex ratio**.

==============================  ==========================  =================
paper instance                  provenance                  stand-in family
==============================  ==========================  =================
sat14_itox_vc1130_dual          SAT 2014, dual model        sat_dual
2cubes_sphere                   FEM matrix (row-net)        mesh_matrix
ABACUS_shell_hd                 FEM shell matrix            mesh_matrix
sparsine                        random sparse matrix        random_uniform
pdb1HYS                         protein contact matrix      contact
sat14_10pipe_q0_k_primal        SAT 2014, primal model      sat_primal
sat14_E02F22                    SAT 2014, primal model      sat_primal
webbase-1M                      web crawl matrix            powerlaw
ship_001                        FEM ship structure          mesh_matrix
sat14_atco_enc1_opt1_05_21_dual SAT 2014, dual model        sat_dual
==============================  ==========================  =================

``scale`` rescales vertex/hyperedge counts (default sizes keep each
instance's pin count in the tens of thousands so the full 10-instance
evaluation runs in minutes on one core).  Paper-reported statistics are kept
in :data:`PAPER_TABLE1` for side-by-side reporting.

Beyond the ten Table 1 rows the registry carries
:data:`STREAMING_INSTANCE` (``stream_powerlaw_xl``) — a deliberately
oversized power-law instance for exercising the out-of-core
:mod:`repro.streaming` subsystem.  It is *not* part of
:func:`instance_names` (the Table 1 protocol stays ten instances) but
loads through :func:`load_instance` like any other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.hypergraph.model import Hypergraph
from repro.hypergraph import generators as gen
from repro.hypergraph.stats import compute_stats, HypergraphStats
from repro.utils.rng import derive_seed

__all__ = [
    "BenchmarkInstance",
    "PAPER_TABLE1",
    "benchmark_suite",
    "load_instance",
    "instance_names",
    "FIGURE3_INSTANCES",
    "STREAMING_INSTANCE",
]

#: Registry-only large instance for the out-of-core streaming scenario.
STREAMING_INSTANCE = "stream_powerlaw_xl"

#: Paper Table 1, verbatim: (vertices, hyperedges, NNZ, avg cardinality,
#: hyperedge/vertex ratio).
PAPER_TABLE1: dict[str, tuple[int, int, int, float, float]] = {
    "sat14_itox_vc1130_dual": (441729, 152256, 1143974, 7.51, 0.34),
    "2cubes_sphere": (101492, 101492, 1647264, 16.23, 1.00),
    "ABACUS_shell_hd": (23412, 23412, 218484, 9.33, 1.00),
    "sparsine": (50000, 50000, 1548988, 30.98, 1.00),
    "pdb1HYS": (36417, 36417, 4344765, 119.31, 1.00),
    "sat14_10pipe_q0_k_primal": (77639, 2082017, 6164595, 2.96, 26.82),
    "sat14_E02F22": (27148, 1301188, 11462079, 8.81, 47.93),
    "webbase-1M": (1000005, 1000005, 3105536, 3.11, 1.00),
    "ship_001": (34920, 34920, 4644230, 133.00, 1.00),
    "sat14_atco_enc1_opt1_05_21_dual": (561784, 59517, 2167217, 36.41, 0.11),
}

#: The four instances whose refinement history the paper plots in Figure 3.
FIGURE3_INSTANCES = (
    "2cubes_sphere",
    "sat14_itox_vc1130_dual",
    "sparsine",
    "ABACUS_shell_hd",
)


@dataclass(frozen=True)
class BenchmarkInstance:
    """Registry entry for one stand-in instance.

    ``builder(scale, seed)`` constructs the hypergraph; ``base_*`` are the
    default (scale=1.0) stand-in dimensions.
    """

    name: str
    family: str
    base_vertices: int
    base_edges: int
    target_cardinality: float
    builder: Callable[[float, int], Hypergraph] = field(repr=False)

    def build(self, *, scale: float = 1.0, seed: int | None = None) -> Hypergraph:
        """Build the instance at ``scale`` (default stand-in size)."""
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        actual_seed = seed if seed is not None else derive_seed(20190805, self.name)
        return self.builder(scale, actual_seed)

    def paper_stats(self) -> tuple[int, int, int, float, float] | None:
        return PAPER_TABLE1.get(self.name)


def _scaled(n: int, scale: float, minimum: int = 32) -> int:
    return max(minimum, int(round(n * scale)))


def _make_registry() -> dict[str, BenchmarkInstance]:
    reg: dict[str, BenchmarkInstance] = {}

    def add(name, family, bv, be, card, builder):
        reg[name] = BenchmarkInstance(
            name=name,
            family=family,
            base_vertices=bv,
            base_edges=be,
            target_cardinality=card,
            builder=builder,
        )

    # --- SAT dual: few large hyperedges over many clause-vertices --------
    add(
        "sat14_itox_vc1130_dual",
        "sat_dual",
        4417,
        1523,
        7.51,
        lambda s, seed: gen.sat_dual_hypergraph(
            num_variables=_scaled(1523, s),
            num_clauses=_scaled(4417, s),
            mean_clause_size=2.59,
            locality_window=0.04,
            seed=seed,
            name="sat14_itox_vc1130_dual",
        ),
    )
    add(
        "sat14_atco_enc1_opt1_05_21_dual",
        "sat_dual",
        5618,
        595,
        36.41,
        lambda s, seed: gen.sat_dual_hypergraph(
            num_variables=_scaled(595, s),
            num_clauses=_scaled(5618, s),
            mean_clause_size=3.86,
            locality_window=0.03,
            seed=seed,
            name="sat14_atco_enc1_opt1_05_21_dual",
        ),
    )

    # --- FEM / mesh matrices (V == E, banded) -----------------------------
    add(
        "2cubes_sphere",
        "mesh_matrix",
        2030,
        2030,
        16.23,
        lambda s, seed: gen.mesh_matrix_hypergraph(
            _scaled(2030, s),
            16.23,
            dims=3,
            long_range_fraction=0.02,
            seed=seed,
            name="2cubes_sphere",
        ),
    )
    add(
        "ABACUS_shell_hd",
        "mesh_matrix",
        2341,
        2341,
        9.33,
        lambda s, seed: gen.mesh_matrix_hypergraph(
            _scaled(2341, s),
            9.33,
            dims=2,
            long_range_fraction=0.01,
            seed=seed,
            name="ABACUS_shell_hd",
        ),
    )
    add(
        "ship_001",
        "mesh_matrix",
        500,
        500,
        133.0,
        lambda s, seed: gen.mesh_matrix_hypergraph(
            _scaled(500, s),
            133.0,
            dims=3,
            spread=1.45,
            long_range_fraction=0.01,
            seed=seed,
            name="ship_001",
        ),
    )

    # --- unstructured random (sparsine) -----------------------------------
    add(
        "sparsine",
        "random_uniform",
        1667,
        1667,
        30.98,
        lambda s, seed: gen.random_uniform_hypergraph(
            _scaled(1667, s),
            _scaled(1667, s),
            30.98,
            seed=seed,
            name="sparsine",
        ),
    )

    # --- protein contact map (pdb1HYS) ------------------------------------
    add(
        "pdb1HYS",
        "contact",
        600,
        600,
        119.31,
        lambda s, seed: gen.contact_hypergraph(
            _scaled(600, s),
            119.31,
            intra_cluster_prob=0.92,
            seed=seed,
            name="pdb1HYS",
        ),
    )

    # --- SAT primal: many tiny hyperedges over few variable-vertices -----
    add(
        "sat14_10pipe_q0_k_primal",
        "sat_primal",
        776,
        20820,
        2.96,
        lambda s, seed: gen.sat_primal_hypergraph(
            num_variables=_scaled(776, s),
            num_clauses=_scaled(20820, s),
            mean_clause_size=2.96,
            locality_window=0.05,
            seed=seed,
            name="sat14_10pipe_q0_k_primal",
        ),
    )
    add(
        "sat14_E02F22",
        "sat_primal",
        271,
        13012,
        8.81,
        lambda s, seed: gen.sat_primal_hypergraph(
            num_variables=_scaled(271, s),
            num_clauses=_scaled(13012, s),
            mean_clause_size=8.81,
            locality_window=0.08,
            seed=seed,
            name="sat14_E02F22",
        ),
    )

    # --- web crawl (webbase-1M) -------------------------------------------
    add(
        "webbase-1M",
        "powerlaw",
        10000,
        10000,
        3.11,
        # Exponent/offset flattened relative to a raw crawl power law:
        # at 10k stand-in vertices a partition spans the top ~1% of pages,
        # so an un-flattened Zipf law would put >20% of all pins inside a
        # single partition's hubs — a hotspot the real 1M-page instance
        # (where a partition holds only the top ~0.17%) never exhibits.
        lambda s, seed: gen.powerlaw_hypergraph(
            _scaled(10000, s),
            _scaled(10000, s),
            3.11,
            exponent=1.1,
            hub_offset=500.0,
            seed=seed,
            name="webbase-1M",
        ),
    )

    # --- streaming stress instance (registry-only, not in Table 1) --------
    # An order of magnitude more pins than any Table 1 stand-in: big
    # enough that holding the full pin structure is noticeably more
    # memory than a chunk, cheap enough to generate in seconds.  The
    # out-of-core readers and streamers are benchmarked against it.
    add(
        STREAMING_INSTANCE,
        "powerlaw",
        60000,
        60000,
        8.0,
        lambda s, seed: gen.powerlaw_hypergraph(
            _scaled(60000, s),
            _scaled(60000, s),
            8.0,
            exponent=1.1,
            hub_offset=500.0,
            seed=seed,
            name=STREAMING_INSTANCE,
        ),
    )
    return reg


_REGISTRY = _make_registry()


def instance_names() -> list[str]:
    """Suite instance names in the paper's Table 1 order."""
    return [n for n in PAPER_TABLE1 if n in _REGISTRY]


def load_instance(name: str, *, scale: float = 1.0, seed: int | None = None) -> Hypergraph:
    """Build the stand-in for paper instance ``name``.

    Parameters
    ----------
    name:
        one of :func:`instance_names`.
    scale:
        size multiplier; 1.0 is the default laptop-sized stand-in, smaller
        values shrink instances for fast tests.
    seed:
        optional seed override (default: stable per-instance seed).
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown instance {name!r}; available: {', '.join(instance_names())}"
        ) from None
    return entry.build(scale=scale, seed=seed)


def benchmark_suite(
    *, scale: float = 1.0, seed: int | None = None, names: "list[str] | None" = None
) -> dict[str, Hypergraph]:
    """Build the whole suite (or the ``names`` subset) as an ordered dict."""
    selected = names if names is not None else instance_names()
    return {n: load_instance(n, scale=scale, seed=seed) for n in selected}


def suite_stats(*, scale: float = 1.0) -> list[HypergraphStats]:
    """Statistics of every suite instance (used by the Table 1 driver)."""
    return [compute_stats(hg) for hg in benchmark_suite(scale=scale).values()]
