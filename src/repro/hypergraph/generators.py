"""Synthetic hypergraph families.

The paper evaluates on 10 instances drawn from the Schlag multilevel-
partitioning benchmark set (Zenodo record 291466): SAT-competition formulas
under the primal/dual models, sparse matrices from FEM meshes and protein
contact maps under the row-net model, and a web crawl.  That dataset is not
available offline, so :mod:`repro.hypergraph.suite` builds stand-ins from
the generator families below.  Each family reproduces the *structural
signature* that drives partitioning behaviour:

========================  =====================================================
family                    signature
========================  =====================================================
:func:`random_uniform_hypergraph`
                          no locality at all; every hyperedge is a uniform
                          sample (``sparsine``-like).  Worst case for any
                          partitioner; cuts are unavoidable.
:func:`powerlaw_hypergraph`
                          hub vertices appearing in many small hyperedges
                          (``webbase``-like crawls).
:func:`mesh_matrix_hypergraph`
                          banded row-nets from a stencil on a 1-D ordering of
                          a physical mesh (``2cubes_sphere``/``ABACUS``/
                          ``ship_001``-like); strong locality, partitioners
                          find low cuts.
:func:`contact_hypergraph`
                          dense clustered row-nets (``pdb1HYS``-like protein
                          contact maps); very high cardinality, block
                          community structure.
:func:`sat_primal_hypergraph` / :func:`sat_dual_hypergraph`
                          random SAT formulas with windowed variable
                          locality; the primal model has many tiny
                          hyperedges over few vertices (hyperedge/vertex
                          ratio >> 1), the dual model the reverse.
========================  =====================================================

All generators are fully vectorised (one RNG draw for all pins) and seed-
deterministic.  Cardinalities may shrink slightly after in-edge pin
de-duplication; the suite's tolerance checks account for that.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "random_uniform_hypergraph",
    "powerlaw_hypergraph",
    "mesh_matrix_hypergraph",
    "contact_hypergraph",
    "sat_instance",
    "sat_primal_hypergraph",
    "sat_dual_hypergraph",
    "dual_hypergraph",
]


def _draw_cardinalities(
    rng: np.random.Generator, num_edges: int, mean: float, minimum: int
) -> np.ndarray:
    """Poisson cardinalities with mean ``mean`` clipped below at ``minimum``.

    The clip biases the mean upward slightly for small means; we compensate
    by solving for the Poisson rate only approximately — dataset tolerances
    absorb the difference.
    """
    check_positive("mean cardinality", mean)
    lam = max(mean - minimum, 0.05)
    cards = rng.poisson(lam=lam, size=num_edges) + minimum
    return cards.astype(np.int64)


def _oversample_for_window(target_distinct: float, window: float) -> float:
    """Number of with-replacement draws needed from a ``window``-sized pool
    so that the *expected* number of distinct samples is ``target_distinct``.

    Inverts ``E[distinct] = W * (1 - (1 - 1/W)^k)``, i.e.
    ``k = -W * ln(1 - d/W)``.  Dense generators use this so that in-edge pin
    de-duplication does not shrink cardinalities below their Table 1 target.
    """
    if window <= 1:
        return target_distinct
    frac = min(target_distinct / window, 0.97)
    return float(-window * np.log1p(-frac))


def _assemble(num_vertices: int, row_ids: np.ndarray, pins: np.ndarray, name: str,
              cards: np.ndarray) -> Hypergraph:
    """Build a hypergraph from flat (edge id, pin) draws via CSR arrays."""
    ptr = np.zeros(cards.size + 1, dtype=np.int64)
    np.cumsum(cards, out=ptr[1:])
    assert ptr[-1] == pins.size
    return Hypergraph.from_csr_arrays(num_vertices, ptr, pins, name=name)


# ----------------------------------------------------------------------
# unstructured families
# ----------------------------------------------------------------------
def random_uniform_hypergraph(
    num_vertices: int,
    num_edges: int,
    mean_cardinality: float,
    *,
    seed=None,
    name: str = "random-uniform",
) -> Hypergraph:
    """Uniformly random hypergraph: every pin i.i.d. uniform over vertices.

    Models the ``sparsine`` instance: a random sparse matrix with ~31
    non-zeros per row and no usable locality.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("num_edges", num_edges)
    rng = as_generator(seed)
    cards = _draw_cardinalities(rng, num_edges, mean_cardinality, minimum=2)
    pins = rng.integers(0, num_vertices, size=int(cards.sum()), dtype=np.int64)
    return _assemble(num_vertices, None, pins, name, cards)


def powerlaw_hypergraph(
    num_vertices: int,
    num_edges: int,
    mean_cardinality: float,
    *,
    exponent: float = 1.6,
    hub_offset: float = 100.0,
    seed=None,
    name: str = "powerlaw",
) -> Hypergraph:
    """Hypergraph with power-law vertex popularity (webbase-like).

    Vertex ``v`` is drawn with probability proportional to
    ``(v + hub_offset)^-exponent``; low-index vertices act as hubs,
    mimicking the in-link skew of web crawls.  Hyperedges are small (the
    paper's webbase-1M has average cardinality 3.11).

    ``hub_offset`` caps the heaviest hub's pin share.  At reduced stand-in
    scale a pure Zipf law concentrates far more of the total traffic in
    one vertex than the real 1M-page crawl does (the top page holds ~0.1%
    of webbase-1M's non-zeros); the default keeps the top vertex near
    that share instead of the ~5% a small offset would give.
    """
    check_positive("exponent", exponent)
    check_positive("hub_offset", hub_offset)
    rng = as_generator(seed)
    cards = _draw_cardinalities(rng, num_edges, mean_cardinality, minimum=2)
    weights = (np.arange(num_vertices, dtype=np.float64) + hub_offset) ** (-exponent)
    weights /= weights.sum()
    # Inverse-CDF sampling is much faster than rng.choice(p=...) for large
    # draws: one searchsorted over the cumulative weights.
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0
    u = rng.random(int(cards.sum()))
    pins = np.searchsorted(cdf, u, side="right").astype(np.int64)
    np.clip(pins, 0, num_vertices - 1, out=pins)
    return _assemble(num_vertices, None, pins, name, cards)


# ----------------------------------------------------------------------
# matrix-derived families (row-net model, V == E)
# ----------------------------------------------------------------------
def mesh_matrix_hypergraph(
    num_vertices: int,
    mean_cardinality: float,
    *,
    dims: int = 3,
    spread: float = 1.0,
    long_range_fraction: float = 0.02,
    seed=None,
    name: str = "mesh-matrix",
) -> Hypergraph:
    """Row-net hypergraph of a FEM-style sparse matrix on a ``dims``-D mesh.

    Vertices are laid out on a ``dims``-dimensional grid in row-major
    order (the natural ordering FEM assembly produces).  Row ``i``
    contains the diagonal pin ``i`` plus pins sampled from a discrete
    Gaussian stencil *ball* around ``i``'s grid point (sigma scales with
    ``spread`` and the target cardinality), plus a small
    ``long_range_fraction`` of uniform pins (fill-in / multi-physics
    coupling).

    The multi-dimensional structure matters: a 1-D band would make every
    partition talk only to its two id-neighbours, gifting architecture-
    blind recursive bisection a near-optimal rank placement by pure
    numbering luck.  On a real 3-D FEM matrix (``2cubes_sphere``,
    ``ship_001``) or a 2-D shell (``ABACUS_shell_hd``) each sub-domain has
    many neighbours, so *which* partition lands on *which* physical core
    is a genuine optimisation problem — the one HyperPRAW-aware solves.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("dims", dims)
    check_probability("long_range_fraction", long_range_fraction)
    rng = as_generator(seed)
    num_edges = num_vertices
    side = int(np.ceil(num_vertices ** (1.0 / dims)))
    shape = np.full(dims, side, dtype=np.int64)

    # Stencil sigma per axis: a Gaussian ball holding ~mean_cardinality
    # points has radius ~ (card)^(1/dims); sigma of half that radius keeps
    # most mass inside.
    sigma = max(0.6, spread * (mean_cardinality ** (1.0 / dims)) / 2.0)
    # Effective window for the de-dup oversampling correction: the ball's
    # per-axis extent (~4 sigma) capped by the grid side.
    extent = min(float(side), 4.0 * sigma + 1.0)
    window = extent**dims
    drawn_mean = _oversample_for_window(mean_cardinality - 1, window)
    cards = _draw_cardinalities(rng, num_edges, drawn_mean, minimum=1)
    total = int(cards.sum())

    centers = np.repeat(np.arange(num_edges, dtype=np.int64), cards)
    # Decompose flat centre ids into grid coordinates, jitter per axis,
    # reflect at the grid boundary, and re-flatten.
    flat = np.zeros(total, dtype=np.int64)
    stride = 1
    for d in range(dims):
        coord = (centers // stride) % side
        offs = np.rint(rng.normal(0.0, sigma, size=total)).astype(np.int64)
        c = coord + offs
        c = np.abs(c)
        over = c > side - 1
        c[over] = 2 * (side - 1) - c[over]
        np.clip(c, 0, side - 1, out=c)
        flat += c * stride
        stride *= side
    pins = flat
    # The grid may be slightly larger than V; fold overflow back in.
    pins = np.mod(pins, num_vertices)
    far = rng.random(total) < long_range_fraction
    pins[far] = rng.integers(0, num_vertices, size=int(far.sum()), dtype=np.int64)

    # Prepend the diagonal entry of every row.
    diag = np.arange(num_edges, dtype=np.int64)
    all_cards = cards + 1
    ptr = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(all_cards, out=ptr[1:])
    merged = np.empty(int(all_cards.sum()), dtype=np.int64)
    merged[ptr[:-1]] = diag
    body_mask = np.ones(merged.size, dtype=bool)
    body_mask[ptr[:-1]] = False
    merged[body_mask] = pins
    return Hypergraph.from_csr_arrays(num_vertices, ptr, merged, name=name)


def contact_hypergraph(
    num_vertices: int,
    mean_cardinality: float,
    *,
    cluster_size: int | None = None,
    intra_cluster_prob: float = 0.9,
    seed=None,
    name: str = "contact",
) -> Hypergraph:
    """Row-net hypergraph of a clustered, very dense contact map.

    Vertices are grouped into contiguous clusters (protein domains); row
    ``i`` draws most pins from its own cluster and a few from anywhere.
    Reproduces ``pdb1HYS``: enormous average cardinality (119 pins/row)
    with block community structure.
    """
    check_positive("num_vertices", num_vertices)
    check_probability("intra_cluster_prob", intra_cluster_prob)
    rng = as_generator(seed)
    if cluster_size is None:
        cluster_size = max(4, int(mean_cardinality * 1.5))
    cluster_size = min(cluster_size, num_vertices)
    num_edges = num_vertices
    # Correct for in-cluster pin collisions so the realised mean
    # cardinality matches the target (see _oversample_for_window).
    intra_target = intra_cluster_prob * mean_cardinality
    factor = (
        _oversample_for_window(intra_target, cluster_size) / intra_target
        if intra_target > 0
        else 1.0
    )
    cards = _draw_cardinalities(rng, num_edges, mean_cardinality * factor, minimum=2)
    total = int(cards.sum())
    rows = np.repeat(np.arange(num_edges, dtype=np.int64), cards)
    cluster_of = rows // cluster_size
    cluster_start = cluster_of * cluster_size
    cluster_end = np.minimum(cluster_start + cluster_size, num_vertices)
    local = rng.random(total) < intra_cluster_prob
    span = cluster_end - cluster_start
    pins = np.where(
        local,
        cluster_start + (rng.random(total) * span).astype(np.int64),
        rng.integers(0, num_vertices, size=total, dtype=np.int64),
    )
    np.clip(pins, 0, num_vertices - 1, out=pins)
    return _assemble(num_vertices, None, pins, name, cards)


# ----------------------------------------------------------------------
# SAT families
# ----------------------------------------------------------------------
def sat_instance(
    num_variables: int,
    num_clauses: int,
    mean_clause_size: float,
    *,
    locality_window: float = 0.05,
    cross_community_prob: float = 0.25,
    community_degree: int = 4,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a random SAT formula with *community* variable locality.

    Returns CSR arrays ``(clause_ptr, clause_vars)``.  Variables are
    grouped into contiguous communities of ``locality_window *
    num_variables`` variables (circuit modules).  Each clause belongs to a
    random community and draws each literal from its own community with
    probability ``1 - cross_community_prob``, otherwise from one of the
    community's ``community_degree`` *partner* communities, chosen
    uniformly at random per instance.

    The partner graph is a random graph, **not** a chain: real SAT
    competition formulas couple modules through shared signals that have
    no linear layout.  (A sliding-window generator would arrange
    communities on a line — a structure so easy to embed that any
    recursive-bisection partitioner's sequential part numbering would
    accidentally yield a near-optimal physical placement, hiding exactly
    the effect the paper measures.)
    """
    check_positive("num_variables", num_variables)
    check_positive("num_clauses", num_clauses)
    check_probability("locality_window", locality_window)
    check_probability("cross_community_prob", cross_community_prob)
    check_positive("community_degree", community_degree)
    rng = as_generator(seed)
    sizes = _draw_cardinalities(rng, num_clauses, mean_clause_size, minimum=2)
    total = int(sizes.sum())

    comm_size = max(2, int(locality_window * num_variables))
    n_comm = max(1, -(-num_variables // comm_size))
    # Random partner graph over communities (fixed per instance).
    partners = rng.integers(0, n_comm, size=(n_comm, community_degree))

    clause_comm = rng.integers(0, n_comm, size=num_clauses, dtype=np.int64)
    comm_rep = np.repeat(clause_comm, sizes)
    # Per literal: stay in the clause's community, or hop to a partner.
    hop = rng.random(total) < cross_community_prob
    partner_pick = rng.integers(0, community_degree, size=total)
    lit_comm = np.where(hop, partners[comm_rep, partner_pick], comm_rep)
    # Uniform variable within the chosen community (clipped at the tail).
    start = lit_comm * comm_size
    span = np.minimum(start + comm_size, num_variables) - start
    vars_ = start + (rng.random(total) * span).astype(np.int64)
    np.clip(vars_, 0, num_variables - 1, out=vars_)
    ptr = np.zeros(num_clauses + 1, dtype=np.int64)
    np.cumsum(sizes, out=ptr[1:])
    return ptr, vars_


def sat_primal_hypergraph(
    num_variables: int,
    num_clauses: int,
    mean_clause_size: float,
    *,
    locality_window: float = 0.05,
    cross_community_prob: float = 0.25,
    community_degree: int = 4,
    seed=None,
    name: str = "sat-primal",
) -> Hypergraph:
    """Primal SAT hypergraph: vertices are variables, hyperedges are clauses.

    SAT-competition primal instances have hyperedge/vertex ratios far above
    one (e.g. the paper's ``sat14_10pipe_q0_k primal``: 26.8 hyperedges per
    vertex) with tiny cardinalities.
    """
    ptr, vars_ = sat_instance(
        num_variables,
        num_clauses,
        mean_clause_size,
        locality_window=locality_window,
        cross_community_prob=cross_community_prob,
        community_degree=community_degree,
        seed=seed,
    )
    return Hypergraph.from_csr_arrays(num_variables, ptr, vars_, name=name)


def sat_dual_hypergraph(
    num_variables: int,
    num_clauses: int,
    mean_clause_size: float,
    *,
    locality_window: float = 0.05,
    cross_community_prob: float = 0.25,
    community_degree: int = 4,
    seed=None,
    name: str = "sat-dual",
) -> Hypergraph:
    """Dual SAT hypergraph: vertices are clauses, hyperedges are variables.

    A variable's hyperedge pins every clause it occurs in.  Dual instances
    have hyperedge/vertex ratios below one (paper: 0.34 and 0.11) with
    moderate-to-large cardinalities.
    """
    primal = sat_primal_hypergraph(
        num_variables,
        num_clauses,
        mean_clause_size,
        locality_window=locality_window,
        cross_community_prob=cross_community_prob,
        community_degree=community_degree,
        seed=seed,
        name="tmp-primal",
    )
    return dual_hypergraph(primal, name=name)


def dual_hypergraph(hg: Hypergraph, *, name: str | None = None) -> Hypergraph:
    """Swap the roles of vertices and hyperedges.

    The dual's hyperedge for vertex ``v`` pins all hyperedges of ``hg``
    incident to ``v``.  Vertices of ``hg`` that occur in no hyperedge would
    produce empty dual hyperedges and are dropped.
    """
    degrees = np.diff(hg.vertex_ptr)
    keep = degrees > 0
    if keep.all():
        ptr, pins = hg.vertex_ptr, hg.vertex_edges
    else:
        lengths = degrees[keep]
        ptr = np.zeros(int(keep.sum()) + 1, dtype=np.int64)
        np.cumsum(lengths, out=ptr[1:])
        starts = hg.vertex_ptr[:-1][keep]
        idx = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths)]
        ) if lengths.size else np.empty(0, dtype=np.int64)
        pins = hg.vertex_edges[idx]
    return Hypergraph.from_csr_arrays(
        hg.num_edges, ptr, pins, name=name or f"{hg.name}-dual"
    )
