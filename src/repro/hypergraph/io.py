"""Hypergraph file formats.

The paper's dataset (Schlag 2017, Zenodo record 291466) ships hypergraphs in
the **hMetis** text format and sparse matrices in **MatrixMarket** form that
are converted with the row-net model.  We implement:

* :func:`read_hmetis` / :func:`write_hmetis` — the hMetis format, including
  the ``fmt`` flag combinations for hyperedge and/or vertex weights;
* :func:`read_patoh` / :func:`write_patoh` — the PaToH format (used by the
  PaToH baseline family the paper cites);
* :func:`read_matrix_market` — MatrixMarket ``.mtx`` to hypergraph via the
  row-net or column-net model;
* :func:`save_json` / :func:`load_json` — a lossless round-trip format for
  caching generated instances.

All readers are strict: malformed headers or out-of-range pins raise
``HypergraphFormatError`` with line information rather than silently
producing a broken structure.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.io
import scipy.sparse as sp

from repro.hypergraph.model import Hypergraph

__all__ = [
    "HypergraphFormatError",
    "HmetisHeader",
    "parse_hmetis_header",
    "parse_hmetis_edge_line",
    "parse_hmetis_vertex_weight",
    "read_hmetis",
    "write_hmetis",
    "read_patoh",
    "write_patoh",
    "read_matrix_market",
    "save_json",
    "load_json",
]


class HypergraphFormatError(ValueError):
    """Raised when a hypergraph file violates its format specification."""


def _data_lines(text):
    """Yield (lineno, tokens) for non-comment, non-blank lines.

    hMetis and PaToH both use ``%`` comment lines.  ``text`` may be a
    whole-file string or any iterable of lines (e.g. an open file object) —
    the latter is what :mod:`repro.streaming.reader` passes so that large
    files are never held in memory at once.
    """
    lines = text.splitlines() if isinstance(text, str) else text
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        yield lineno, line.split()


# ----------------------------------------------------------------------
# hMetis
# ----------------------------------------------------------------------
class HmetisHeader:
    """Parsed hMetis header: counts plus the ``fmt`` weight flags.

    Shared by :func:`read_hmetis` and the chunked one-pass reader in
    :mod:`repro.streaming.reader`, so both enforce identical validation.
    """

    __slots__ = ("num_edges", "num_vertices", "fmt", "has_edge_weights", "has_vertex_weights")

    def __init__(self, num_edges, num_vertices, fmt):
        self.num_edges = num_edges
        self.num_vertices = num_vertices
        self.fmt = fmt
        self.has_edge_weights = fmt in (1, 11)
        self.has_vertex_weights = fmt in (10, 11)


def parse_hmetis_header(path, lineno: int, header: "list[str]") -> HmetisHeader:
    """Validate and parse the ``|E| |V| [fmt]`` header line."""
    if len(header) not in (2, 3):
        raise HypergraphFormatError(
            f"{path}:{lineno}: header must be '|E| |V| [fmt]', got {' '.join(header)!r}"
        )
    try:
        num_edges, num_vertices = int(header[0]), int(header[1])
        fmt = int(header[2]) if len(header) == 3 else 0
    except ValueError as exc:
        raise HypergraphFormatError(f"{path}:{lineno}: non-integer header") from exc
    if fmt not in (0, 1, 10, 11):
        raise HypergraphFormatError(f"{path}:{lineno}: unknown fmt {fmt}")
    return HmetisHeader(num_edges, num_vertices, fmt)


def parse_hmetis_edge_line(
    path, lineno: int, tokens: "list[str]", header: HmetisHeader
) -> "tuple[float, list[int]]":
    """Validate one hyperedge line; returns ``(weight, zero_based_pins)``.

    Pins are integers; the leading weight (fmt 1/11) may be fractional —
    :func:`write_hmetis` emits non-integral weights as floats, so the
    library's own files must round-trip.
    """
    weight = 1.0
    pin_tokens = tokens
    if header.has_edge_weights:
        if len(tokens) < 2:
            raise HypergraphFormatError(
                f"{path}:{lineno}: weighted hyperedge needs weight + >=1 pin"
            )
        try:
            weight = float(tokens[0])
        except ValueError as exc:
            raise HypergraphFormatError(
                f"{path}:{lineno}: bad hyperedge weight {tokens[0]!r}"
            ) from exc
        pin_tokens = tokens[1:]
    try:
        values = [int(t) for t in pin_tokens]
    except ValueError as exc:
        raise HypergraphFormatError(
            f"{path}:{lineno}: non-integer token in hyperedge line"
        ) from exc
    if not values:
        raise HypergraphFormatError(f"{path}:{lineno}: empty hyperedge")
    if min(values) < 1 or max(values) > header.num_vertices:
        raise HypergraphFormatError(
            f"{path}:{lineno}: pin outside 1..{header.num_vertices}"
        )
    return weight, [v - 1 for v in values]


def parse_hmetis_vertex_weight(path, lineno: int, tokens: "list[str]") -> float:
    """Validate one vertex-weight line."""
    try:
        return float(tokens[0])
    except (ValueError, IndexError) as exc:
        raise HypergraphFormatError(f"{path}:{lineno}: bad vertex weight") from exc


def read_hmetis(path: "str | Path", *, name: str | None = None) -> Hypergraph:
    """Read an hMetis hypergraph file.

    Format: header ``|E| |V| [fmt]`` where ``fmt`` is ``1`` (hyperedge
    weights), ``10`` (vertex weights) or ``11`` (both); then one line per
    hyperedge (``[weight] pin...`` with 1-based pins); then, if vertex
    weights are present, one weight per line.
    """
    path = Path(path)
    lines = list(_data_lines(path.read_text()))
    if not lines:
        raise HypergraphFormatError(f"{path}: empty file")
    lineno, header_tokens = lines[0]
    header = parse_hmetis_header(path, lineno, header_tokens)
    num_edges, num_vertices = header.num_edges, header.num_vertices
    has_edge_w, has_vertex_w = header.has_edge_weights, header.has_vertex_weights

    body = lines[1:]
    if len(body) < num_edges:
        raise HypergraphFormatError(
            f"{path}: expected {num_edges} hyperedge lines, found {len(body)}"
        )
    edge_weights = np.ones(num_edges, dtype=np.float64)
    edges: list[list[int]] = []
    for e in range(num_edges):
        lineno, tokens = body[e]
        edge_weights[e], pins = parse_hmetis_edge_line(path, lineno, tokens, header)
        edges.append(pins)

    vertex_weights = None
    if has_vertex_w:
        wlines = body[num_edges:]
        if len(wlines) < num_vertices:
            raise HypergraphFormatError(
                f"{path}: expected {num_vertices} vertex-weight lines, found {len(wlines)}"
            )
        vertex_weights = np.empty(num_vertices, dtype=np.float64)
        for v in range(num_vertices):
            lineno, tokens = wlines[v]
            vertex_weights[v] = parse_hmetis_vertex_weight(path, lineno, tokens)

    return Hypergraph(
        num_vertices,
        edges,
        vertex_weights=vertex_weights,
        edge_weights=edge_weights if has_edge_w else None,
        name=name or path.stem,
    )


def write_hmetis(hg: Hypergraph, path: "str | Path", *, write_weights: bool = False) -> None:
    """Write ``hg`` in hMetis format (1-based pins).

    ``write_weights=True`` emits fmt 11 with both weight sections; otherwise
    an unweighted fmt-0 file is produced.
    """
    path = Path(path)
    out = []
    fmt = " 11" if write_weights else ""
    out.append(f"{hg.num_edges} {hg.num_vertices}{fmt}")
    for e in range(hg.num_edges):
        pins = " ".join(str(int(v) + 1) for v in hg.edge(e))
        if write_weights:
            out.append(f"{_fmt_weight(hg.edge_weights[e])} {pins}")
        else:
            out.append(pins)
    if write_weights:
        out.extend(_fmt_weight(w) for w in hg.vertex_weights)
    path.write_text("\n".join(out) + "\n")


def _fmt_weight(w: float) -> str:
    return str(int(w)) if float(w).is_integer() else repr(float(w))


# ----------------------------------------------------------------------
# PaToH
# ----------------------------------------------------------------------
def read_patoh(path: "str | Path", *, name: str | None = None) -> Hypergraph:
    """Read a PaToH hypergraph file.

    Header: ``base |V| |E| pins [fmt]`` where ``base`` is the pin index base
    (0 or 1).  Then one line per net listing its pins.  Weight variants
    (fmt 1/2/3) are accepted but only unit weights are produced for fmt 0;
    fmt>0 files carry cell (vertex) weights appended to the net section
    which we parse when fmt is 1 or 3.
    """
    path = Path(path)
    lines = list(_data_lines(path.read_text()))
    if not lines:
        raise HypergraphFormatError(f"{path}: empty file")
    lineno, header = lines[0]
    if len(header) not in (4, 5):
        raise HypergraphFormatError(
            f"{path}:{lineno}: header must be 'base |V| |E| pins [fmt]'"
        )
    base, num_vertices, num_edges, num_pins = (int(x) for x in header[:4])
    fmt = int(header[4]) if len(header) == 5 else 0
    if base not in (0, 1):
        raise HypergraphFormatError(f"{path}:{lineno}: base must be 0 or 1")
    body = lines[1:]
    if len(body) < num_edges:
        raise HypergraphFormatError(
            f"{path}: expected {num_edges} net lines, found {len(body)}"
        )
    has_net_w = fmt in (2, 3)
    edges = []
    edge_weights = np.ones(num_edges, dtype=np.float64)
    total_pins = 0
    for e in range(num_edges):
        lineno, tokens = body[e]
        values = [int(t) for t in tokens]
        if has_net_w:
            edge_weights[e] = values[0]
            values = values[1:]
        pins = [v - base for v in values]
        if not pins:
            raise HypergraphFormatError(f"{path}:{lineno}: empty net")
        if min(pins) < 0 or max(pins) >= num_vertices:
            raise HypergraphFormatError(
                f"{path}:{lineno}: pin outside range for base {base}"
            )
        total_pins += len(pins)
        edges.append(pins)
    if total_pins != num_pins:
        raise HypergraphFormatError(
            f"{path}: header claims {num_pins} pins, nets contain {total_pins}"
        )
    vertex_weights = None
    if fmt in (1, 3):
        wtokens: list[str] = []
        for lineno, tokens in body[num_edges:]:
            wtokens.extend(tokens)
        if len(wtokens) < num_vertices:
            raise HypergraphFormatError(
                f"{path}: expected {num_vertices} cell weights, found {len(wtokens)}"
            )
        vertex_weights = np.asarray([float(t) for t in wtokens[:num_vertices]])
    return Hypergraph(
        num_vertices,
        edges,
        vertex_weights=vertex_weights,
        edge_weights=edge_weights if has_net_w else None,
        name=name or path.stem,
    )


def write_patoh(hg: Hypergraph, path: "str | Path") -> None:
    """Write ``hg`` in 0-based unweighted PaToH format."""
    path = Path(path)
    out = [f"0 {hg.num_vertices} {hg.num_edges} {hg.num_pins}"]
    for e in range(hg.num_edges):
        out.append(" ".join(str(int(v)) for v in hg.edge(e)))
    path.write_text("\n".join(out) + "\n")


# ----------------------------------------------------------------------
# MatrixMarket
# ----------------------------------------------------------------------
def read_matrix_market(
    path: "str | Path", *, model: str = "row-net", name: str | None = None
) -> Hypergraph:
    """Read a MatrixMarket sparse matrix and convert via row/column-net model."""
    path = Path(path)
    matrix = scipy.io.mmread(str(path))
    return Hypergraph.from_sparse(
        sp.csr_array(matrix), model=model, name=name or path.stem
    )


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def save_json(hg: Hypergraph, path: "str | Path") -> None:
    """Serialise losslessly to JSON (structure, weights, name)."""
    payload = {
        "name": hg.name,
        "num_vertices": hg.num_vertices,
        "edge_ptr": hg.edge_ptr.tolist(),
        "edge_pins": hg.edge_pins.tolist(),
        "vertex_weights": hg.vertex_weights.tolist(),
        "edge_weights": hg.edge_weights.tolist(),
    }
    Path(path).write_text(json.dumps(payload))


def load_json(path: "str | Path") -> Hypergraph:
    """Inverse of :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    return Hypergraph.from_csr_arrays(
        payload["num_vertices"],
        np.asarray(payload["edge_ptr"], dtype=np.int64),
        np.asarray(payload["edge_pins"], dtype=np.int64),
        vertex_weights=np.asarray(payload["vertex_weights"]),
        edge_weights=np.asarray(payload["edge_weights"]),
        name=payload["name"],
    )
