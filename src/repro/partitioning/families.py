"""Competitor partitioner families on the shared engine, plus the registry.

HyperPRAW's claim is that architecture-aware restreaming beats
architecture-blind streaming — which needs external competitors to beat,
not just its own ablations.  This module adds the two families ROADMAP
item 4 names, a quality-polish stage, and the registry that makes any of
them reachable from the Python API, the ``stream`` CLI and the service
``partitioner=`` knob with one entry:

* :class:`NeighborhoodExpansion` (``hype``) — HYPE-style neighbourhood
  expansion (Mayer et al.): visit vertices in fringe-expansion order
  (:class:`~repro.engine.blocks.FringeExpansionSource`), score with the
  external-neighbour-minimisation
  :class:`~repro.engine.scorers.HypeScorer`, and let the kernel's hard
  balance cap provide HYPE's part-size bound — parts fill neighbourhood
  by neighbourhood.
* :class:`MinMaxStreamer` (``minmax``) — the limited-memory min-max
  streaming family of Taşyaran et al. (arXiv:2103.05394): a greedy
  min-max net-connectivity objective
  (:class:`~repro.engine.scorers.MinMaxScorer` over
  :class:`MinMaxState`, a presence-gathering capped-LRU table), plus a
  similarity-ordered buffered variant (``buffer_size=``) that reorders
  each arrival window so vertices sharing nets are placed consecutively.
  Both run under the same ``max_tracked_edges`` bound as
  ``OnePassStreamer`` so memory-fairness comparisons are honest.
* :class:`PolishedStreamer` / :func:`refine_partition` — a
  post-streaming FM-style boundary refinement (Mt-KaHyPar lineage):
  propose positive-gain single-vertex moves in parallel over the
  :mod:`repro.engine.parallel` worker pool against a frozen snapshot,
  then apply them sequentially (re-validated, balance-capped) — so the
  result is identical for any worker count, forked or sequential.
  Attachable to *any* partitioner's output via ``refine=``.

The :data:`PARTITIONERS` registry is the single source of truth for
"what can the repo run": the service validates ``partitioner=`` against
it, the OpenAPI enum is generated from it, the ``stream`` CLI offers it,
and ``tests/test_invariants.py`` introspects it so every registered
family gets the randomized invariant matrix automatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.engine import (
    DenseKernelState,
    FringeExpansionSource,
    HypeScorer,
    InMemorySource,
    MinMaxScorer,
    VertexBlock,
    blocks_of,
    pass_kernel,
    run_tasks,
    segment_gather_index,
    shard_ranges,
    shard_ranges_by_pins,
)
from repro.hypergraph.model import Hypergraph
from repro.streaming.reader import DEFAULT_CHUNK_SIZE, HypergraphChunkStream
from repro.streaming.state import StreamingState, resolve_cost_matrix

__all__ = [
    "FamilySpec",
    "PARTITIONERS",
    "family_names",
    "get_family",
    "build_partitioner",
    "NeighborhoodExpansion",
    "MinMaxStreamer",
    "MinMaxState",
    "RefineConfig",
    "refine_partition",
    "refine_blocks",
    "PolishedStreamer",
    "materialise_stream",
]


def _parallel_mode(workers: int, num_tasks: int) -> str:
    """What :func:`repro.engine.parallel.run_tasks` will actually do."""
    from repro.engine import parallel

    if workers > 1 and num_tasks > 1 and parallel.fork_available():
        return "forked"
    return "sequential"


def materialise_stream(stream) -> Hypergraph:
    """Rebuild an in-memory :class:`Hypergraph` from a vertex chunk stream.

    The chunks carry the vertex-major CSR (per-vertex incident-edge
    lists); the edge-major direction is recovered with one stable sort.
    This is the adapter that lets an inherently in-memory family (HYPE
    needs random access for its fringe) serve the same replayed chunk
    stores as the out-of-core streamers.
    """
    degs_parts, edges_parts, weights_parts = [], [], []
    for chunk in stream:
        degs_parts.append(np.diff(np.asarray(chunk.vertex_ptr, dtype=np.int64)))
        edges_parts.append(np.asarray(chunk.vertex_edges, dtype=np.int64).copy())
        weights_parts.append(
            np.asarray(chunk.vertex_weights, dtype=np.float64).copy()
        )
    degs = (
        np.concatenate(degs_parts) if degs_parts else np.empty(0, dtype=np.int64)
    )
    vertex_edges = (
        np.concatenate(edges_parts)
        if edges_parts
        else np.empty(0, dtype=np.int64)
    )
    pins_vertex = np.repeat(
        np.arange(stream.num_vertices, dtype=np.int64), degs
    )
    order = np.argsort(vertex_edges, kind="stable")
    edge_counts = np.bincount(vertex_edges, minlength=stream.num_edges)
    edge_ptr = np.zeros(stream.num_edges + 1, dtype=np.int64)
    np.cumsum(edge_counts, out=edge_ptr[1:])
    return Hypergraph.from_csr_arrays(
        stream.num_vertices,
        edge_ptr,
        pins_vertex[order],
        vertex_weights=np.concatenate(weights_parts) if weights_parts else None,
        edge_weights=stream.edge_weights,
        name=getattr(stream, "name", "stream"),
    )


# ----------------------------------------------------------------------
# (i) HYPE-style neighbourhood expansion
# ----------------------------------------------------------------------
class NeighborhoodExpansion(Partitioner):
    """HYPE-style greedy neighbourhood-expansion partitioner.

    Visits vertices in fringe-expansion order and places each at the
    argmax of the external-neighbour-minimisation score under a hard
    balance cap: with no load term in the score, a part absorbs its seed
    vertex's whole neighbourhood until the cap forbids it, and the
    expansion spills into the next part — HYPE's grow-one-part-at-a-time
    behaviour expressed through the shared engine kernel.

    Parameters
    ----------
    balance_slack:
        hard cap on any part's load as a multiple of the balanced share
        (HYPE's part-size bound; must be > 1).
    expansion_penalty:
        weight on external neighbours in the score (``lambda`` of
        :class:`~repro.engine.scorers.HypeScorer`).
    chunk_size:
        vertices per kernel block (chunk-mode granularity).
    max_expand_net:
        hub-net guard for the fringe order (see
        :func:`~repro.engine.blocks.expansion_order`).
    max_tracked_edges:
        ``None`` (default) runs against the exact dense table; an
        integer swaps in the same capped-LRU
        :class:`~repro.streaming.state.StreamingState` the out-of-core
        streamers use — the fringe order is exactly the access pattern
        that stresses its eviction policy differently from sequential
        arrival.
    score_mode / kernel:
        kernel scoring mode and implementation, as in the streamers.
    workers:
        > 1 splits the expansion order into pin-balanced contiguous
        slices placed by forked workers on independent states (same
        merge semantics as phase-1 sharded streaming: disjoint vertex
        ranges, summed loads, per-shard caps that add up to the global
        cap).
    """

    name = "hype"

    def __init__(
        self,
        *,
        balance_slack: float = 1.05,
        expansion_penalty: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_expand_net: "int | None" = 256,
        max_tracked_edges: "int | None" = None,
        score_mode: str = "vertex",
        kernel: str = "auto",
        workers: int = 1,
    ) -> None:
        if balance_slack <= 1.0:
            raise ValueError(f"balance_slack must be > 1, got {balance_slack}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if score_mode not in ("vertex", "chunk"):
            raise ValueError(
                f"score_mode must be 'vertex' or 'chunk', got {score_mode!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kernel not in ("auto", "python", "njit"):
            raise ValueError(
                f"kernel must be 'auto', 'python' or 'njit', got {kernel!r}"
            )
        self.balance_slack = float(balance_slack)
        self.expansion_penalty = float(expansion_penalty)
        self.chunk_size = int(chunk_size)
        self.max_expand_net = max_expand_net
        self.max_tracked_edges = max_tracked_edges
        self.score_mode = score_mode
        self.kernel = kernel
        self.workers = int(workers)

    # ------------------------------------------------------------------
    def _make_state(self, num_parts: int, num_edges: int, shard_weight: float):
        if self.max_tracked_edges is None:
            return DenseKernelState.empty(num_edges, num_parts)
        return StreamingState(
            num_parts,
            expected_loads=np.full(
                num_parts, max(shard_weight, 1e-12) / num_parts
            ),
            max_tracked_edges=self.max_tracked_edges,
        )

    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Grow ``num_parts`` parts over ``hg`` by neighbourhood expansion."""
        del seed  # fully deterministic: order and score are seed-free
        self._check_args(hg, num_parts)
        t_start = time.perf_counter()
        p = num_parts
        # The score never reads C — HYPE is architecture-blind; resolve
        # only to validate the argument.
        resolve_cost_matrix(cost_matrix, p)
        source = FringeExpansionSource(
            hg, block_size=self.chunk_size, max_expand_net=self.max_expand_net
        )
        order = source.order
        total_weight = hg.total_vertex_weight()
        assignment = np.full(hg.num_vertices, -1, dtype=np.int64)
        scorer = HypeScorer(self.expansion_penalty)

        degs = np.diff(hg.vertex_ptr)
        # one "chunk" per kernel block of the expansion order, so worker
        # cuts land on block boundaries (pin-balanced, contiguous).
        block_pins = [
            int(degs[order[s : s + self.chunk_size]].sum())
            for s in range(0, order.size, self.chunk_size)
        ]
        ranges = shard_ranges_by_pins(block_pins, self.workers)
        bounds = [
            (lo * self.chunk_size, min(hi * self.chunk_size, order.size))
            for lo, hi in ranges
        ]

        def make_task(a: int, b: int):
            part_order = order[a:b]

            def task():
                shard_weight = float(hg.vertex_weights[part_order].sum())
                state = self._make_state(p, hg.num_edges, shard_weight)
                local = np.full(hg.num_vertices, -1, dtype=np.int64)
                cap = self.balance_slack * shard_weight / p
                kernel_mode = pass_kernel(
                    InMemorySource(
                        hg, order=part_order, block_size=self.chunk_size
                    ).blocks(),
                    state,
                    scorer,
                    local,
                    restream=False,
                    score_mode=self.score_mode,
                    cap=cap,
                    kernel=self.kernel,
                )
                return (
                    local[part_order],
                    state.loads.copy(),
                    kernel_mode,
                    getattr(state, "peak_tracked_edges", None),
                    getattr(state, "evictions", None),
                )

            return task

        tasks = [make_task(a, b) for a, b in bounds]
        parallel_mode = _parallel_mode(self.workers, len(tasks))
        results = run_tasks(tasks, self.workers)
        loads = np.zeros(p, dtype=np.float64)
        for (a, b), (parts, shard_loads, _, _, _) in zip(bounds, results):
            assignment[order[a:b]] = parts
            loads += shard_loads
        peaks = [r[3] for r in results if r[3] is not None]
        evictions = [r[4] for r in results if r[4] is not None]
        mean = loads.sum() / p
        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "single_pass": True,
                "expansion_penalty": self.expansion_penalty,
                "balance_slack": self.balance_slack,
                "max_expand_net": self.max_expand_net,
                "score_mode": self.score_mode,
                "kernel_mode": results[0][2],
                "workers": self.workers,
                "parallel_mode": parallel_mode,
                "max_tracked_edges": self.max_tracked_edges,
                "peak_tracked_edges": max(peaks) if peaks else None,
                "evictions": int(sum(evictions)) if evictions else None,
                "architecture_aware": False,
                "imbalance": float(loads.max() / mean) if mean else 1.0,
                "total_weight": total_weight,
                "wall_time_s": time.perf_counter() - t_start,
            },
        )

    def partition_stream(
        self,
        stream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Serve a chunk stream by materialising it first.

        HYPE needs random access for its fringe; replayed chunk stores
        are rebuilt into an in-memory hypergraph (one pass, vectorised)
        and partitioned there.  ``peak_resident_pins`` consequently
        reports the full pin count — the honest number for a family that
        is not out-of-core.
        """
        hg = materialise_stream(stream)
        result = self.partition(
            hg, num_parts, cost_matrix=cost_matrix, seed=seed
        )
        result.metadata["materialised_stream"] = True
        result.metadata["peak_resident_pins"] = int(hg.num_pins)
        return result


# ----------------------------------------------------------------------
# (ii) limited-memory min-max streaming
# ----------------------------------------------------------------------
class MinMaxState(StreamingState):
    """Capped-LRU presence table with a live per-part connectivity counter.

    Two deltas against the base table, both serving the min-max
    objective:

    * :meth:`gather`/:meth:`gather_block` return net **presence** counts
      — how many of the vertex's incident nets already have a pin in
      each part — instead of summed pin counts;
    * ``connectivity[i]`` tracks the number of *tracked* (net, part)
      incidences, the per-part connectivity load the objective caps.

    Under LRU eviction both keep the table's documented lower-bound
    semantics: an evicted net's incidences leave the counter, exactly as
    its counts leave the table.
    """

    def __init__(
        self,
        num_parts: int,
        *,
        expected_loads: np.ndarray,
        max_tracked_edges: "int | None" = None,
    ) -> None:
        super().__init__(
            num_parts,
            expected_loads=expected_loads,
            max_tracked_edges=max_tracked_edges,
        )
        self.connectivity = np.zeros(num_parts, dtype=np.int64)

    def _acquire(self, edge: int) -> int:
        slots = self._slots
        if (
            edge not in slots
            and self.max_tracked_edges is not None
            and len(slots) >= self.max_tracked_edges
        ):
            # the base class is about to zero the LRU row — retire its
            # tracked incidences from the connectivity counter first
            lru_slot = next(iter(slots.values()))
            self.connectivity -= self._table[lru_slot] > 0
        return super()._acquire(edge)

    def place(self, edges: np.ndarray, part: int, weight: float) -> None:
        for e in edges.tolist():
            slot = self._acquire(e)
            if self._table[slot, part] == 0:
                self.connectivity[part] += 1
            self._table[slot, part] += 1
        self.loads[part] += weight

    def remove(self, edges: np.ndarray, part: int, weight: float) -> None:
        slots = self._slots
        table = self._table
        for e in edges.tolist():
            slot = slots.get(e)
            if slot is not None and table[slot, part] > 0:
                slots.move_to_end(e)
                table[slot, part] -= 1
                if table[slot, part] == 0:
                    self.connectivity[part] -= 1
        self.loads[part] -= weight

    def gather(self, edges: np.ndarray) -> np.ndarray:
        X = np.zeros(self.num_parts, dtype=np.int64)
        slots = self._slots
        table = self._table
        for e in edges.tolist():
            slot = slots.get(e)
            if slot is not None:
                slots.move_to_end(e)
                X += table[slot] > 0
        return X

    def gather_block(
        self, rows_all: np.ndarray, vertex_ptr: np.ndarray
    ) -> np.ndarray:
        m = vertex_ptr.size - 1
        p = self.num_parts
        X = np.zeros((m, p), dtype=np.int64)
        if rows_all.size == 0:
            return X
        uniq, inverse = np.unique(rows_all, return_inverse=True)
        slots = self._slots
        slot_arr = np.empty(uniq.size, dtype=np.int64)
        for k, e in enumerate(uniq.tolist()):
            slot = slots.get(e)
            if slot is None:
                slot_arr[k] = -1
            else:
                slots.move_to_end(e)
                slot_arr[k] = slot
        presence_uniq = np.zeros((uniq.size, p), dtype=np.int64)
        tracked = slot_arr >= 0
        presence_uniq[tracked] = self._table[slot_arr[tracked]] > 0
        seg = presence_uniq[inverse]
        degs = np.diff(vertex_ptr)
        nonzero = degs > 0
        if nonzero.any():
            X[nonzero] = np.add.reduceat(seg, vertex_ptr[:-1][nonzero], axis=0)
        return X

    def _recount(self) -> None:
        n = len(self._slots)
        if n == 0:
            self.connectivity[:] = 0
            return
        slots = np.fromiter(self._slots.values(), dtype=np.int64, count=n)
        self.connectivity[:] = (self._table[slots] > 0).sum(axis=0)

    def seed_table(self, edges: np.ndarray, counts: np.ndarray) -> None:
        super().seed_table(edges, counts)
        self._recount()

    def set_rows(self, edges: np.ndarray, counts: np.ndarray) -> None:
        super().set_rows(edges, counts)
        self._recount()


class MinMaxStreamer(Partitioner):
    """Limited-memory min-max streaming partitioner (Taşyaran et al.).

    Single-pass placement at the argmax of the greedy min-max
    connectivity score, against :class:`MinMaxState` under the same
    ``max_tracked_edges`` capped-LRU bound as ``OnePassStreamer``.

    Parameters
    ----------
    chunk_size:
        vertices per arriving chunk when adapting an in-memory
        hypergraph.
    balance_slack:
        hard balance cap multiple (> 1).
    tie_penalty:
        load tie-break weight of the scorer.
    max_tracked_edges:
        presence-table cap (``None`` = unbounded / exact).
    buffer_size:
        ``None`` (default) places strictly in arrival order.  An integer
        enables the **similarity-ordered buffered variant**: vertices
        accumulate into windows of at least this many, and each window
        is reordered so vertices sharing their lowest incident net are
        placed consecutively (the cheap deterministic proxy for
        arXiv:2103.05394's similarity-based reordering) before the
        normal kernel pass places the window.
    score_mode / kernel:
        kernel scoring mode and implementation, as in the streamers.
    workers:
        > 1 splits the chunk stream into pin-balanced contiguous ranges
        streamed by forked workers on independent states (phase-1
        sharding: disjoint vertex ranges, summed loads, per-shard caps).
    """

    name = "stream-minmax"

    def __init__(
        self,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        balance_slack: float = 1.1,
        tie_penalty: float = 1e-3,
        max_tracked_edges: "int | None" = None,
        buffer_size: "int | None" = None,
        score_mode: str = "vertex",
        kernel: str = "auto",
        workers: int = 1,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if balance_slack <= 1.0:
            raise ValueError(f"balance_slack must be > 1, got {balance_slack}")
        if buffer_size is not None and buffer_size < 1:
            raise ValueError(
                f"buffer_size must be >= 1 or None, got {buffer_size}"
            )
        if score_mode not in ("vertex", "chunk"):
            raise ValueError(
                f"score_mode must be 'vertex' or 'chunk', got {score_mode!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kernel not in ("auto", "python", "njit"):
            raise ValueError(
                f"kernel must be 'auto', 'python' or 'njit', got {kernel!r}"
            )
        self.chunk_size = int(chunk_size)
        self.balance_slack = float(balance_slack)
        self.tie_penalty = float(tie_penalty)
        self.max_tracked_edges = max_tracked_edges
        self.buffer_size = buffer_size
        self.score_mode = score_mode
        self.kernel = kernel
        self.workers = int(workers)

    # ------------------------------------------------------------------
    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Stream an in-memory hypergraph chunk by chunk (adapter path)."""
        self._check_args(hg, num_parts)
        stream = HypergraphChunkStream(hg, self.chunk_size)
        return self.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )

    def partition_stream(
        self,
        stream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        """Place every vertex of ``stream`` in a single min-max pass."""
        del seed  # deterministic: the min-max greedy has no randomness
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if num_parts > stream.num_vertices:
            raise ValueError(
                f"cannot split {stream.num_vertices} vertices into {num_parts} parts"
            )
        t_start = time.perf_counter()
        p = num_parts
        C, aware = resolve_cost_matrix(cost_matrix, p)
        assignment = np.full(stream.num_vertices, -1, dtype=np.int64)

        del aware  # min-max is architecture-blind; C only feeds monitoring
        if self.workers > 1:
            return self._partition_sharded(stream, p, t_start)

        state, stats = self._run_shard(
            iter(stream),
            p,
            assignment,
            shard_weight=stream.total_vertex_weight,
        )
        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "single_pass": True,
                "objective": "minmax-connectivity",
                "score_mode": self.score_mode,
                "kernel_mode": stats["kernel_mode"],
                "pass_seconds": stats["pass_seconds"],
                "balance_slack": self.balance_slack,
                "buffer_size": self.buffer_size,
                "similarity_ordered": self.buffer_size is not None,
                "max_tracked_edges": self.max_tracked_edges,
                "peak_tracked_edges": state.peak_tracked_edges,
                "evictions": state.evictions,
                "max_connectivity": int(state.connectivity.max()),
                "monitored_pc_cost": state.pc_cost(
                    C, edge_weights=stream.edge_weights
                ),
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": False,
                "imbalance": state.imbalance(),
                "workers": 1,
                "wall_time_s": time.perf_counter() - t_start,
            },
        )

    # ------------------------------------------------------------------
    def _run_shard(
        self,
        chunks,
        num_parts: int,
        assignment: np.ndarray,
        *,
        shard_weight: float,
    ) -> "tuple[MinMaxState, dict]":
        p = num_parts
        state = MinMaxState(
            p,
            expected_loads=np.full(p, max(shard_weight, 1e-12) / p),
            max_tracked_edges=self.max_tracked_edges,
        )
        scorer = MinMaxScorer(
            state.connectivity, state.expected_loads, self.tie_penalty
        )
        cap = self.balance_slack * shard_weight / p
        t_pass = time.perf_counter()
        kernel_mode = pass_kernel(
            self._blocks(chunks),
            state,
            scorer,
            assignment,
            restream=False,
            score_mode=self.score_mode,
            cap=cap,
            kernel=self.kernel,
        )
        return state, {
            "kernel_mode": kernel_mode,
            "pass_seconds": time.perf_counter() - t_pass,
        }

    def _blocks(self, chunks):
        if self.buffer_size is None:
            return blocks_of(chunks)
        return self._similarity_blocks(chunks)

    def _similarity_blocks(self, chunks):
        """Window the arrivals and reorder each window by net similarity.

        Vertices are grouped by their lowest incident net id (stable,
        deterministic): vertices sharing that net become consecutive, so
        the presence rows they score against are the rows the previous
        placement just updated — the locality the buffered variants of
        arXiv:2103.05394 engineer with their similarity orders.
        """
        ids_parts: "list[np.ndarray]" = []
        degs_parts: "list[np.ndarray]" = []
        edges_parts: "list[np.ndarray]" = []
        weights_parts: "list[np.ndarray]" = []
        held = 0

        def flush():
            nonlocal held, ids_parts, degs_parts, edges_parts, weights_parts
            ids = np.concatenate(ids_parts)
            degs = np.concatenate(degs_parts)
            edges = np.concatenate(edges_parts)
            weights = np.concatenate(weights_parts)
            ptr = np.zeros(ids.size + 1, dtype=np.int64)
            np.cumsum(degs, out=ptr[1:])
            key = np.full(ids.size, np.iinfo(np.int64).max, dtype=np.int64)
            nonzero = degs > 0
            if nonzero.any():
                key[nonzero] = np.minimum.reduceat(edges, ptr[:-1][nonzero])
            order = np.lexsort((ids, key))
            new_degs = degs[order]
            new_ptr = np.zeros(ids.size + 1, dtype=np.int64)
            np.cumsum(new_degs, out=new_ptr[1:])
            block = VertexBlock(
                ids=ids[order],
                vertex_ptr=new_ptr,
                vertex_edges=edges[segment_gather_index(ptr[:-1][order], new_degs)],
                vertex_weights=weights[order],
            )
            ids_parts, degs_parts, edges_parts, weights_parts = [], [], [], []
            held = 0
            return block

        for chunk in chunks:
            ids_parts.append(
                np.arange(chunk.start, chunk.stop, dtype=np.int64)
            )
            degs_parts.append(
                np.diff(np.asarray(chunk.vertex_ptr, dtype=np.int64))
            )
            edges_parts.append(np.asarray(chunk.vertex_edges, dtype=np.int64))
            weights_parts.append(
                np.asarray(chunk.vertex_weights, dtype=np.float64)
            )
            held += int(chunk.stop - chunk.start)
            if held >= self.buffer_size:
                yield flush()
        if held:
            yield flush()

    # ------------------------------------------------------------------
    def _partition_sharded(self, stream, p, t_start):
        """Phase-1 sharding: disjoint chunk ranges on independent states."""
        chunk_pins = stream.chunk_pins()
        if chunk_pins is None or len(chunk_pins) != stream.num_chunks:
            ranges = shard_ranges(stream.num_chunks, self.workers)
        else:
            ranges = shard_ranges_by_pins(chunk_pins, self.workers)
        vertex_bounds = [
            (stream.chunk_bounds(lo)[0], stream.chunk_bounds(hi - 1)[1])
            for lo, hi in ranges
        ]
        vertex_weights = stream.vertex_weights
        shard_weights = [
            float(vertex_weights[a:b].sum()) for a, b in vertex_bounds
        ]

        def make_task(k: int):
            lo, hi = ranges[k]

            def task():
                local = np.full(stream.num_vertices, -1, dtype=np.int64)
                state, stats = self._run_shard(
                    stream.iter_range(lo, hi),
                    p,
                    local,
                    shard_weight=shard_weights[k],
                )
                a, b = vertex_bounds[k]
                return (
                    local[a:b],
                    state.loads.copy(),
                    state.peak_tracked_edges,
                    state.evictions,
                    int(state.connectivity.max()),
                    stats,
                )

            return task

        tasks = [make_task(k) for k in range(len(ranges))]
        parallel_mode = _parallel_mode(self.workers, len(tasks))
        results = run_tasks(tasks, self.workers)
        assignment = np.full(stream.num_vertices, -1, dtype=np.int64)
        loads = np.zeros(p, dtype=np.float64)
        for (a, b), res in zip(vertex_bounds, results):
            assignment[a:b] = res[0]
            loads += res[1]
        mean = loads.sum() / p
        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "single_pass": True,
                "objective": "minmax-connectivity",
                "score_mode": self.score_mode,
                "kernel_mode": results[0][5]["kernel_mode"],
                "pass_seconds": sum(r[5]["pass_seconds"] for r in results),
                "balance_slack": self.balance_slack,
                "buffer_size": self.buffer_size,
                "similarity_ordered": self.buffer_size is not None,
                "max_tracked_edges": self.max_tracked_edges,
                "peak_tracked_edges": max(r[2] for r in results),
                "evictions": int(sum(r[3] for r in results)),
                "max_connectivity": max(r[4] for r in results),
                "monitored_pc_cost": None,
                "peak_resident_pins": stream.peak_resident_pins,
                "architecture_aware": False,
                "imbalance": float(loads.max() / mean) if mean else 1.0,
                "workers": self.workers,
                "parallel_mode": parallel_mode,
                "wall_time_s": time.perf_counter() - t_start,
            },
        )


# ----------------------------------------------------------------------
# (iii) FM-style boundary refinement polish
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RefineConfig:
    """Knobs of the post-streaming boundary polish.

    Attributes
    ----------
    passes:
        maximum propose/apply rounds (a round applying zero moves stops
        early).
    balance_slack:
        hard cap multiple a move may not push its target part over
        (moves out of an *overloaded* part are additionally allowed when
        they strictly reduce the overload).
    workers:
        size of the :func:`repro.engine.parallel.run_tasks` pool the
        propose phase fans out over.  Results are identical for every
        worker count: proposals are computed against a frozen snapshot
        and applied sequentially in a deterministic order.
    min_gain:
        strict gain threshold a proposal must exceed (in weighted-cut
        units).
    """

    passes: int = 4
    balance_slack: float = 1.1
    workers: int = 1
    min_gain: float = 0.0

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise ValueError(f"passes must be >= 1, got {self.passes}")
        if self.balance_slack <= 1.0:
            raise ValueError(
                f"balance_slack must be > 1, got {self.balance_slack}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.min_gain < 0:
            raise ValueError(f"min_gain must be >= 0, got {self.min_gain}")


def _weighted_cut(counts: np.ndarray, edge_weights) -> float:
    """Weighted hyperedge cut from the dense per-edge count rows."""
    cut = (counts > 0).sum(axis=1) >= 2
    if edge_weights is None:
        return float(cut.sum())
    return float(edge_weights[cut].sum())


def _propose_moves(blocks, counts, assignment, edge_weights, cut_flags, min_gain):
    """Scan a shard of blocks against frozen counts; return candidates.

    A vertex is a candidate only if one of its nets is currently cut
    (``cut_flags``); for those, the exact weighted-cut delta of moving
    it to each other part is computed vectorised, and the best strictly
    positive move is proposed as ``(gain, v, src, dst, w_v, edges)``.
    """
    moves = []
    for block in blocks:
        for i in range(block.num_vertices):
            edges = block.edges_of(i)
            if edges.size == 0 or not cut_flags[edges].any():
                continue
            v = int(block.ids[i])
            a = int(assignment[v])
            rows = counts[edges]
            nnz = np.count_nonzero(rows, axis=1)
            own = rows[:, a]
            # cut state after moving v from a to each candidate target
            nnz_after = nnz[:, None] - (own == 1)[:, None] + (rows == 0)
            diff = (nnz >= 2)[:, None].astype(np.float64) - (nnz_after >= 2)
            if edge_weights is None:
                gains = diff.sum(axis=0)
            else:
                gains = (diff * edge_weights[edges][:, None]).sum(axis=0)
            gains[a] = -np.inf
            b = int(np.argmax(gains))
            gain = float(gains[b])
            if gain > min_gain:
                moves.append(
                    (gain, v, a, b, float(block.vertex_weights[i]), edges)
                )
    return moves


def _apply_moves(moves, counts, assignment, loads, edge_weights, cap, min_gain):
    """Apply proposals best-gain first, re-validated against live state."""
    applied = 0
    for gain0, v, a, b, w_v, edges in sorted(
        moves, key=lambda m: (-m[0], m[1])
    ):
        if int(assignment[v]) != a:  # defensive: one proposal per vertex
            continue
        rows = counts[edges]
        nnz = np.count_nonzero(rows, axis=1)
        own = rows[:, a]
        nnz_after = nnz - (own == 1) + (rows[:, b] == 0)
        diff = ((nnz >= 2).astype(np.float64) - (nnz_after >= 2)).astype(
            np.float64
        )
        if edge_weights is None:
            gain = float(diff.sum())
        else:
            gain = float((diff * edge_weights[edges]).sum())
        if gain <= min_gain:
            continue
        if loads[b] + w_v > cap and not (
            loads[a] > cap and loads[b] + w_v < loads[a]
        ):
            continue
        counts[edges, a] -= 1
        counts[edges, b] += 1
        loads[a] -= w_v
        loads[b] += w_v
        assignment[v] = b
        applied += 1
    return applied


def refine_blocks(
    blocks,
    assignment: np.ndarray,
    num_parts: int,
    *,
    num_edges: int,
    edge_weights: "np.ndarray | None" = None,
    refine: "RefineConfig | None" = None,
) -> "tuple[np.ndarray, dict]":
    """FM-style boundary refinement over a list of vertex blocks.

    Each pass proposes positive-gain single-vertex moves in parallel
    against a frozen snapshot of the dense per-edge counts (forked
    workers see a copy-on-write snapshot; the sequential fallback sees
    the same unmutated arrays), then applies them sequentially in
    best-gain order, re-validating every move against the live counts
    and the balance cap.  The propose/apply split is what makes the
    result independent of the worker count.

    ``assignment`` is mutated in place and also returned, together with
    a stats dict (``cut_before``/``cut_after`` in weighted-cut units).
    """
    refine = refine or RefineConfig()
    blocks = list(blocks)
    counts = np.zeros((num_edges, num_parts), dtype=np.int64)
    flat = counts.reshape(-1)
    loads = np.zeros(num_parts, dtype=np.float64)
    for block in blocks:
        parts = assignment[block.ids]
        degs = np.diff(block.vertex_ptr)
        keys = block.vertex_edges * num_parts + np.repeat(parts, degs)
        uniq, cnt = np.unique(keys, return_counts=True)
        flat[uniq] += cnt
        loads += np.bincount(
            parts, weights=block.vertex_weights, minlength=num_parts
        )
    total = float(loads.sum())
    cap = refine.balance_slack * total / num_parts
    cut_before = _weighted_cut(counts, edge_weights)

    block_pins = [b.num_pins for b in blocks]
    ranges = (
        shard_ranges_by_pins(block_pins, refine.workers) if blocks else []
    )
    t_start = time.perf_counter()
    parallel_mode = _parallel_mode(refine.workers, len(ranges))
    total_moves = 0
    passes_run = 0
    for _ in range(refine.passes):
        passes_run += 1
        cut_flags = (counts > 0).sum(axis=1) >= 2
        tasks = [
            (
                lambda lo=lo, hi=hi: _propose_moves(
                    blocks[lo:hi],
                    counts,
                    assignment,
                    edge_weights,
                    cut_flags,
                    refine.min_gain,
                )
            )
            for lo, hi in ranges
        ]
        proposals = run_tasks(tasks, refine.workers)
        moves = [m for sub in proposals for m in sub]
        applied = _apply_moves(
            moves, counts, assignment, loads, edge_weights, cap, refine.min_gain
        )
        total_moves += applied
        if applied == 0:
            break
    mean = loads.sum() / num_parts
    stats = {
        "refine_passes": passes_run,
        "refine_moves": total_moves,
        "refine_cut_before": cut_before,
        "refine_cut_after": _weighted_cut(counts, edge_weights),
        "refine_seconds": time.perf_counter() - t_start,
        "refine_workers": refine.workers,
        "refine_parallel_mode": parallel_mode,
        "imbalance": float(loads.max() / mean) if mean else 1.0,
    }
    return assignment, stats


def refine_partition(
    hg: Hypergraph,
    assignment: np.ndarray,
    num_parts: int,
    *,
    refine: "RefineConfig | None" = None,
) -> "tuple[np.ndarray, dict]":
    """Polish an in-memory partition with FM-style boundary moves.

    Returns a *new* assignment array (the input is not mutated) and the
    refinement stats of :func:`refine_blocks`.
    """
    refined = np.array(assignment, dtype=np.int64, copy=True)
    blocks = InMemorySource(hg, block_size=512).blocks()
    return refine_blocks(
        blocks,
        refined,
        num_parts,
        num_edges=hg.num_edges,
        edge_weights=hg.edge_weights,
        refine=refine,
    )


def _snapshot_block(block: VertexBlock) -> VertexBlock:
    """Deep-copy a block (stream chunks may reuse or unmap buffers)."""
    return VertexBlock(
        ids=np.array(block.ids, dtype=np.int64, copy=True),
        vertex_ptr=np.array(block.vertex_ptr, dtype=np.int64, copy=True),
        vertex_edges=np.array(block.vertex_edges, dtype=np.int64, copy=True),
        vertex_weights=np.array(
            block.vertex_weights, dtype=np.float64, copy=True
        ),
    )


class PolishedStreamer(Partitioner):
    """Attach the FM-style boundary polish to any partitioner via ``refine=``.

    Runs the wrapped partitioner, then refines its assignment
    (:func:`refine_blocks`) and reports the polish under ``refine_*``
    metadata keys.  Works on both faces: ``partition`` polishes against
    the in-memory hypergraph, ``partition_stream`` re-replays the
    (re-iterable) chunk stream to build the polish's block list — the
    polish is a shared-memory stage (dense ``E x p`` counts), which is
    the Mt-KaHyPar-lineage trade: memory for quality, after the bounded
    streaming pass has done the placement.
    """

    def __init__(
        self, base: Partitioner, *, refine: "RefineConfig | None" = None
    ) -> None:
        if not hasattr(base, "partition"):
            raise TypeError(f"base must be a Partitioner, got {type(base)!r}")
        self.base = base
        self.refine = refine or RefineConfig()
        self.name = f"{base.name}+fm"

    def partition(
        self,
        hg: Hypergraph,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        result = self.base.partition(
            hg, num_parts, cost_matrix=cost_matrix, seed=seed
        )
        refined, stats = refine_partition(
            hg, result.assignment, num_parts, refine=self.refine
        )
        return self._wrap(result, refined, num_parts, stats)

    def partition_stream(
        self,
        stream,
        num_parts: int,
        *,
        cost_matrix: "np.ndarray | None" = None,
        seed=None,
    ) -> PartitionResult:
        result = self.base.partition_stream(
            stream, num_parts, cost_matrix=cost_matrix, seed=seed
        )
        blocks = [_snapshot_block(b) for b in blocks_of(stream)]
        refined = np.array(result.assignment, dtype=np.int64, copy=True)
        refined, stats = refine_blocks(
            blocks,
            refined,
            num_parts,
            num_edges=stream.num_edges,
            edge_weights=stream.edge_weights,
            refine=self.refine,
        )
        return self._wrap(result, refined, num_parts, stats)

    def _wrap(self, result, refined, num_parts, stats) -> PartitionResult:
        return PartitionResult(
            assignment=refined,
            num_parts=num_parts,
            algorithm=self.name,
            iterations=result.iterations,
            metadata={**result.metadata, "refined": True, **stats},
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FamilySpec:
    """One registered partitioner family.

    Attributes
    ----------
    name:
        registry key — the ``partitioner=`` value the service accepts
        and the OpenAPI enum advertises.
    summary:
        one-line description (docs, CLI help).
    build:
        ``(spec, num_vertices) -> Partitioner`` — instantiate from a
        validated service request spec (see
        ``repro.service.handlers._partition_spec``).
    make:
        ``(hg, workers) -> Partitioner`` — the default-configuration
        factory the invariant matrix and benches use (``hg`` sizes
        windows; ``workers`` exercises the family's parallel path).
    imbalance_bound:
        hard bound on ``max/mean`` load the invariant matrix asserts at
        ``workers=1``.
    sharded_imbalance_bound:
        the (possibly looser) bound asserted at ``workers > 1``.
    """

    name: str
    summary: str
    build: Callable
    make: Callable
    imbalance_bound: float
    sharded_imbalance_bound: float

    def bound(self, workers: int) -> float:
        return (
            self.imbalance_bound
            if workers <= 1
            else self.sharded_imbalance_bound
        )


def _invariant_config():
    from repro.core.config import HyperPRAWConfig

    return HyperPRAWConfig(record_history=False, max_iterations=40)


def _build_onepass(spec: dict, num_vertices: int):
    from repro.streaming.onepass import OnePassStreamer

    return OnePassStreamer(
        scorer=spec["scorer"],
        gamma=spec["gamma"],
        kernel=spec["kernel"],
        workers=spec["workers"],
        shard_payload=spec["shard_payload"],
        shard_by=spec["shard_by"],
        max_tracked_edges=spec["max_tracked_edges"],
    )


def _build_buffered(spec: dict, num_vertices: int):
    from repro.core.config import HyperPRAWConfig
    from repro.streaming.restream import BufferedRestreamer

    config = HyperPRAWConfig(
        max_iterations=spec["max_iterations"],
        record_history=False,
        shard_payload=spec["shard_payload"],
        shard_by=spec["shard_by"],
        kernel=spec["kernel"],
    )
    buffer_size = spec["buffer_size"] or max(
        1, int(round(spec["buffer_fraction"] * num_vertices))
    )
    return BufferedRestreamer(
        config,
        buffer_size=buffer_size,
        max_tracked_edges=spec["max_tracked_edges"],
        workers=spec["workers"],
    )


def _build_hype(spec: dict, num_vertices: int):
    return NeighborhoodExpansion(
        kernel=spec["kernel"],
        workers=spec["workers"],
        max_tracked_edges=spec["max_tracked_edges"],
    )


def _build_minmax(spec: dict, num_vertices: int):
    return MinMaxStreamer(
        kernel=spec["kernel"],
        workers=spec["workers"],
        max_tracked_edges=spec["max_tracked_edges"],
        buffer_size=spec["buffer_size"],
    )


def _make_onepass(hg, workers: int = 1):
    from repro.streaming.onepass import OnePassStreamer

    return OnePassStreamer(chunk_size=32, workers=workers)


def _make_buffered(hg, workers: int = 1):
    from repro.streaming.restream import BufferedRestreamer

    return BufferedRestreamer(
        _invariant_config(),
        buffer_size=max(1, hg.num_vertices // 4),
        workers=workers,
    )


def _make_sharded(hg, workers: int = 1):
    from repro.streaming.restream import BufferedRestreamer
    from repro.streaming.sharded import ShardedStreamer

    return ShardedStreamer(
        BufferedRestreamer(
            _invariant_config(), buffer_size=max(1, hg.num_vertices // 4)
        ),
        workers=workers,
        chunk_size=32,
    )


def _make_hype(hg, workers: int = 1):
    return NeighborhoodExpansion(chunk_size=32, workers=workers)


def _make_minmax(hg, workers: int = 1):
    return MinMaxStreamer(chunk_size=32, workers=workers)


#: The partitioner registry: ``partitioner=`` knob -> family.  Order is
#: presentation order (docs, OpenAPI enum, CLI help).
PARTITIONERS: "dict[str, FamilySpec]" = {
    spec.name: spec
    for spec in (
        FamilySpec(
            name="onepass",
            summary=(
                "single-pass Eq. 1 / FENNEL streaming placement over the "
                "capped-LRU presence table"
            ),
            build=_build_onepass,
            make=_make_onepass,
            imbalance_bound=1.2,
            sharded_imbalance_bound=1.25,
        ),
        FamilySpec(
            name="buffered",
            summary=(
                "windowed HyperPRAW restreaming (BufferedRestreamer) — "
                "exact HyperPRAW at unbounded buffer"
            ),
            build=_build_buffered,
            make=_make_buffered,
            imbalance_bound=1.1,
            sharded_imbalance_bound=1.25,
        ),
        FamilySpec(
            name="sharded",
            summary=(
                "the buffered restreamer fanned out over forked workers "
                "with boundary-only merges"
            ),
            build=_build_buffered,
            make=_make_sharded,
            imbalance_bound=1.25,
            sharded_imbalance_bound=1.25,
        ),
        FamilySpec(
            name="hype",
            summary=(
                "HYPE-style neighbourhood expansion: fringe-ordered "
                "external-neighbour minimisation under a hard cap"
            ),
            build=_build_hype,
            make=_make_hype,
            imbalance_bound=1.1,
            sharded_imbalance_bound=1.1,
        ),
        FamilySpec(
            name="minmax",
            summary=(
                "limited-memory min-max connectivity streaming "
                "(similarity-ordered buffered variant via buffer_size)"
            ),
            build=_build_minmax,
            make=_make_minmax,
            imbalance_bound=1.15,
            sharded_imbalance_bound=1.15,
        ),
    )
}


def family_names() -> "tuple[str, ...]":
    """Registered ``partitioner=`` choices, in presentation order."""
    return tuple(PARTITIONERS)


def get_family(name: str) -> FamilySpec:
    """Look up a registered family; raise ``ValueError`` on unknowns."""
    try:
        return PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; registered: {family_names()}"
        ) from None


def build_partitioner(spec: dict, num_vertices: int) -> Partitioner:
    """Instantiate the requested family from a validated service spec.

    When the spec carries ``refine`` truthy, the built partitioner is
    wrapped in :class:`PolishedStreamer` — the polish is attachable to
    *any* registered family.
    """
    partitioner = get_family(spec["partitioner"]).build(spec, num_vertices)
    if spec.get("refine"):
        partitioner = PolishedStreamer(
            partitioner,
            refine=RefineConfig(
                passes=spec.get("refine_passes", 4),
                workers=spec.get("workers", 1),
            ),
        )
    return partitioner
