"""Multilevel recursive-bisection hypergraph partitioner (Zoltan stand-in).

The paper benchmarks against "a state-of-the-art multilevel recursive
bisection partitioning algorithm (Zoltan implementation)".  Zoltan itself
is a C library; this subpackage re-implements the same algorithm family
from scratch:

1. **Coarsening** (:mod:`~repro.partitioning.multilevel.coarsen`) —
   heavy-connectivity vertex matching: pairs of vertices sharing many
   small hyperedges are merged, identical nets are collapsed, singleton
   nets dropped, until the hypergraph is small.
2. **Initial bisection**
   (:mod:`~repro.partitioning.multilevel.initial`) — greedy hypergraph
   growing from random seeds, best of several trials.
3. **Refinement** (:mod:`~repro.partitioning.multilevel.fm`) —
   Fiduccia–Mattheyses single-vertex moves with a lazy priority queue,
   per-pass rollback to the best prefix, at every uncoarsening level.
4. **Recursive bisection**
   (:mod:`~repro.partitioning.multilevel.driver`) — split into
   ``ceil(k/2)`` / ``floor(k/2)`` with proportional target weights, then
   recurse on induced sub-hypergraphs.

Like Zoltan in the paper, the partitioner is architecture-blind: it
minimises (uniform-cost) hyperedge cut and ignores ``cost_matrix``.
"""

from repro.partitioning.multilevel.driver import MultilevelRB

__all__ = ["MultilevelRB"]
