"""Multilevel recursive bisection driver (the public Zoltan stand-in).

One **bisection** is the full multilevel pipeline: coarsen the hypergraph
to ~60 vertices, bisect the coarsest level with greedy hypergraph growing,
then project the bisection back up level by level, running FM refinement
at each level.  **k-way** partitioning recursively bisects with
proportional target weights (``ceil(k/2) : floor(k/2)``), extracting the
induced sub-hypergraph on each side (pins outside the side are dropped,
and nets with fewer than two remaining pins vanish — they can no longer
be cut inside the sub-problem).

Per-bisection balance slack is the k-way tolerance amortised over the
recursion depth, so the final k-way imbalance stays near the requested
tolerance — the same scheme hMetis uses.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.hypergraph.model import Hypergraph
from repro.partitioning.multilevel.coarsen import coarsen_hierarchy
from repro.partitioning.multilevel.fm import fm_refine
from repro.partitioning.multilevel.initial import greedy_growing_bisection
from repro.utils.rng import as_generator

__all__ = ["MultilevelRB", "induced_subhypergraph"]


def induced_subhypergraph(
    hg: Hypergraph, vertex_mask: np.ndarray
) -> tuple[Hypergraph, np.ndarray]:
    """Extract the sub-hypergraph induced by ``vertex_mask``.

    Pins outside the mask are removed from every net; nets left with
    fewer than two pins are dropped.  Returns ``(sub_hg, global_ids)``
    where ``global_ids[i]`` is the original id of sub-vertex ``i``.
    """
    vertex_mask = np.asarray(vertex_mask, dtype=bool)
    if vertex_mask.shape != (hg.num_vertices,):
        raise ValueError(
            f"vertex_mask must have shape ({hg.num_vertices},), got {vertex_mask.shape}"
        )
    global_ids = np.flatnonzero(vertex_mask)
    new_id = np.full(hg.num_vertices, -1, dtype=np.int64)
    new_id[global_ids] = np.arange(global_ids.size)

    pin_keep = vertex_mask[hg.edge_pins]
    if hg.num_edges:
        kept_per_edge = np.add.reduceat(
            pin_keep.astype(np.int64), hg.edge_ptr[:-1]
        )
        kept_per_edge[np.diff(hg.edge_ptr) == 0] = 0
    else:
        kept_per_edge = np.zeros(0, dtype=np.int64)
    keep_edges = kept_per_edge >= 2
    kept_ids = np.flatnonzero(keep_edges)
    lengths = kept_per_edge[kept_ids]
    ptr = np.zeros(kept_ids.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=ptr[1:])
    # Flat gather of the kept pins of the kept edges, in order.
    edge_ids = np.repeat(np.arange(hg.num_edges, dtype=np.int64), np.diff(hg.edge_ptr))
    take = pin_keep & keep_edges[edge_ids]
    pins = new_id[hg.edge_pins[take]]
    sub = Hypergraph.from_csr_arrays(
        global_ids.size if global_ids.size else 1,
        ptr,
        pins,
        vertex_weights=hg.vertex_weights[global_ids] if global_ids.size else None,
        edge_weights=hg.edge_weights[kept_ids] if kept_ids.size else None,
        name=f"{hg.name}-sub",
    )
    return sub, global_ids


class MultilevelRB(Partitioner):
    """Multilevel recursive-bisection partitioner.

    Parameters
    ----------
    imbalance_tolerance:
        final k-way max/mean load target (matches HyperPRAW's tolerance so
        the Figure 4/5 comparison is balanced-for-balanced).
    min_coarse_vertices:
        coarsening stops below this size.
    initial_trials:
        greedy-growing restarts at the coarsest level.
    fm_passes:
        FM passes per uncoarsening level.
    """

    name = "multilevel-rb"

    def __init__(
        self,
        *,
        imbalance_tolerance: float = 1.1,
        min_coarse_vertices: int = 60,
        initial_trials: int = 4,
        fm_passes: int = 3,
    ):
        if imbalance_tolerance < 1.0:
            raise ValueError(
                f"imbalance_tolerance must be >= 1, got {imbalance_tolerance}"
            )
        self.imbalance_tolerance = float(imbalance_tolerance)
        self.min_coarse_vertices = int(min_coarse_vertices)
        self.initial_trials = int(initial_trials)
        self.fm_passes = int(fm_passes)

    # ------------------------------------------------------------------
    def partition(self, hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult:
        """Partition ``hg``; ``cost_matrix`` is ignored (architecture-blind)."""
        self._check_args(hg, num_parts)
        rng = as_generator(seed)
        t0 = time.perf_counter()
        assignment = np.zeros(hg.num_vertices, dtype=np.int64)
        depth = max(1, math.ceil(math.log2(num_parts))) if num_parts > 1 else 1
        # Amortise the k-way tolerance over the bisection depth.
        slack = self.imbalance_tolerance ** (1.0 / depth)
        slack = max(slack, 1.02)  # numeric floor so FM has room to move
        self._recurse(hg, np.arange(hg.num_vertices), num_parts, 0, assignment, rng, slack)
        return PartitionResult(
            assignment=assignment,
            num_parts=num_parts,
            algorithm=self.name,
            metadata={
                "imbalance_tolerance": self.imbalance_tolerance,
                "bisection_slack": slack,
                "wall_time_s": time.perf_counter() - t0,
            },
        )

    # ------------------------------------------------------------------
    def _recurse(
        self,
        sub: Hypergraph,
        global_ids: np.ndarray,
        k: int,
        part_offset: int,
        assignment: np.ndarray,
        rng: np.random.Generator,
        slack: float,
    ) -> None:
        if k == 1 or sub.num_vertices == 0:
            assignment[global_ids] = part_offset
            return
        k0 = (k + 1) // 2
        k1 = k - k0
        total_w = sub.total_vertex_weight()
        target0 = total_w * (k0 / k)
        side = self._bisect(sub, target0, (target0, total_w - target0), rng, slack)
        mask0 = side == 0
        if mask0.all() or (~mask0).all():
            # Degenerate bisection (tiny sub-problem): force a weight split.
            order = np.argsort(-sub.vertex_weights, kind="stable")
            mask0 = np.zeros(sub.num_vertices, dtype=bool)
            acc = 0.0
            for v in order:
                if acc < target0:
                    mask0[v] = True
                    acc += sub.vertex_weights[v]
            if mask0.all():
                mask0[order[-1]] = False
        sub0, ids0 = induced_subhypergraph(sub, mask0)
        sub1, ids1 = induced_subhypergraph(sub, ~mask0)
        self._recurse(sub0, global_ids[ids0], k0, part_offset, assignment, rng, slack)
        self._recurse(sub1, global_ids[ids1], k1, part_offset + k0, assignment, rng, slack)

    def _bisect(
        self,
        sub: Hypergraph,
        target0: float,
        targets: tuple,
        rng: np.random.Generator,
        slack: float,
    ) -> np.ndarray:
        """Full multilevel bisection of ``sub``; returns a 0/1 side vector."""
        levels = coarsen_hierarchy(
            sub, min_vertices=self.min_coarse_vertices, seed=rng
        )
        coarsest = levels[-1].hypergraph if levels else sub
        # Coarse target weights scale with the *sub*-problem totals: the
        # coarsening preserves total vertex weight exactly.
        side = greedy_growing_bisection(
            coarsest, target0, trials=self.initial_trials, seed=rng
        )
        side, _ = fm_refine(
            coarsest, side, targets, slack=slack, max_passes=self.fm_passes
        )
        # Uncoarsen: project through each level's vertex_map and refine.
        for level in reversed(levels):
            side = side[level.vertex_map]
            fine = (
                sub
                if level is levels[0]
                else levels[levels.index(level) - 1].hypergraph
            )
            side, _ = fm_refine(
                fine, side, targets, slack=slack, max_passes=self.fm_passes
            )
        return np.asarray(side, dtype=np.int8)
