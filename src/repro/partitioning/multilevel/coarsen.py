"""Coarsening: heavy-connectivity matching and contraction.

Matching pairs vertices that communicate heavily.  The score of matching
``v`` with ``u`` is the standard heavy-connectivity weight

.. math:: \\sum_{e \\ni v, u} \\frac{w_e}{|e| - 1}

(each shared hyperedge contributes its weight spread over its pins), so
small nets — the ones a bisection can actually save — dominate the choice.
Very large nets are skipped during scoring (``max_scored_cardinality``):
they are cheap to cut per pin and scoring them costs O(|e|) per vertex.

Contraction merges matched pairs, sums vertex weights, re-maps every net,
de-duplicates pins, drops nets reduced to a single pin and collapses
parallel (identical) nets into one with summed weight — all standard
multilevel hygiene (hMetis, PaToH and Zoltan do the same).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator

__all__ = ["CoarseLevel", "heavy_connectivity_matching", "contract", "coarsen_hierarchy"]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``vertex_map[v_fine] -> v_coarse`` projects assignments back up during
    uncoarsening.
    """

    hypergraph: Hypergraph
    vertex_map: np.ndarray


def heavy_connectivity_matching(
    hg: Hypergraph,
    *,
    seed=None,
    max_scored_cardinality: int = 300,
) -> np.ndarray:
    """Greedy heavy-connectivity matching.

    Returns ``match`` with ``match[v] == u`` for matched pairs (symmetric)
    and ``match[v] == v`` for unmatched vertices.  Vertices are visited in
    a random order; each unmatched vertex greedily grabs the unmatched
    neighbour with the highest connectivity score.
    """
    n = hg.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    rng = as_generator(seed)
    order = rng.permutation(n)
    cards = hg.cardinalities()
    # Per-pin score contribution of each hyperedge: w_e / (|e| - 1).
    contrib = np.where(cards > 1, hg.edge_weights / np.maximum(cards - 1, 1), 0.0)
    scoreable = cards <= max_scored_cardinality

    for v in order:
        if match[v] != -1:
            continue
        rows = hg.edges_of(v)
        rows = rows[scoreable[rows]]
        best_u = -1
        if rows.size:
            # Gather all co-pins of v's (scoreable) hyperedges with their
            # per-edge contribution, then accumulate per candidate.
            starts = hg.edge_ptr[rows]
            ends = hg.edge_ptr[rows + 1]
            lengths = ends - starts
            pin_idx = np.concatenate(
                [np.arange(s, e) for s, e in zip(starts, ends)]
            )
            cands = hg.edge_pins[pin_idx]
            weights = np.repeat(contrib[rows], lengths)
            valid = (cands != v) & (match[cands] == -1)
            cands = cands[valid]
            if cands.size:
                weights = weights[valid]
                scores = np.bincount(cands, weights=weights)
                best_u = int(np.argmax(scores))
                if scores[best_u] <= 0:
                    best_u = -1
        if best_u >= 0:
            match[v] = best_u
            match[best_u] = v
        else:
            match[v] = v
    return match


def contract(hg: Hypergraph, match: np.ndarray) -> CoarseLevel:
    """Contract matched pairs into a coarser hypergraph."""
    match = np.asarray(match, dtype=np.int64)
    if match.shape != (hg.num_vertices,):
        raise ValueError(
            f"match must have shape ({hg.num_vertices},), got {match.shape}"
        )
    # Representative of each pair = smaller id; unique -> coarse ids.
    rep = np.minimum(match, np.arange(hg.num_vertices, dtype=np.int64))
    unique_reps, vertex_map = np.unique(rep, return_inverse=True)
    n_coarse = unique_reps.size
    coarse_vw = np.bincount(
        vertex_map, weights=hg.vertex_weights, minlength=n_coarse
    )

    # Re-map nets, de-duplicate pins per net, drop singletons, merge
    # parallel nets (dict keyed on the sorted pin tuple).
    mapped = vertex_map[hg.edge_pins]
    merged: dict[tuple, float] = {}
    for e in range(hg.num_edges):
        pins = np.unique(mapped[hg.edge_ptr[e] : hg.edge_ptr[e + 1]])
        if pins.size < 2:
            continue
        key = tuple(pins.tolist())
        merged[key] = merged.get(key, 0.0) + float(hg.edge_weights[e])

    if merged:
        keys = list(merged.keys())
        lengths = np.fromiter((len(k) for k in keys), dtype=np.int64, count=len(keys))
        ptr = np.zeros(len(keys) + 1, dtype=np.int64)
        np.cumsum(lengths, out=ptr[1:])
        pins_flat = np.fromiter(
            (p for k in keys for p in k), dtype=np.int64, count=int(ptr[-1])
        )
        ew = np.fromiter((merged[k] for k in keys), dtype=np.float64, count=len(keys))
    else:
        ptr = np.zeros(1, dtype=np.int64)
        pins_flat = np.empty(0, dtype=np.int64)
        ew = np.empty(0, dtype=np.float64)

    coarse = Hypergraph.from_csr_arrays(
        n_coarse,
        ptr,
        pins_flat,
        vertex_weights=coarse_vw,
        edge_weights=ew if ew.size else None,
        name=f"{hg.name}-coarse",
    )
    return CoarseLevel(hypergraph=coarse, vertex_map=vertex_map)


def coarsen_hierarchy(
    hg: Hypergraph,
    *,
    min_vertices: int = 60,
    max_levels: int = 25,
    stall_ratio: float = 0.95,
    seed=None,
) -> list[CoarseLevel]:
    """Build the full coarsening hierarchy.

    Level ``i``'s ``vertex_map`` maps level ``i-1`` vertices (level 0 maps
    the input hypergraph) to level ``i`` vertices.  Stops when the coarse
    hypergraph has at most ``min_vertices`` vertices, the reduction stalls
    (coarse/fine vertex ratio above ``stall_ratio``), or no nets remain.
    """
    rng = as_generator(seed)
    levels: list[CoarseLevel] = []
    current = hg
    for _ in range(max_levels):
        if current.num_vertices <= min_vertices or current.num_edges == 0:
            break
        match = heavy_connectivity_matching(current, seed=rng)
        level = contract(current, match)
        if level.hypergraph.num_vertices >= stall_ratio * current.num_vertices:
            break
        levels.append(level)
        current = level.hypergraph
    return levels
