"""Fiduccia–Mattheyses bisection refinement.

Classic FM with a lazy-invalidation priority queue: repeatedly move the
highest-gain unlocked vertex to the other side (respecting the balance
caps), lock it, update the gains of pins on *critical* nets, and at the
end of the pass roll back to the best prefix seen.  Passes repeat until a
pass yields no improvement.

Gain bookkeeping uses per-net side counts ``counts[e] = (pins in 0, pins
in 1)``: moving ``v`` from side ``s`` gains ``w_e`` for every net where
``v`` is the last ``s``-side pin (the net becomes uncut) and loses ``w_e``
for every net that had no pin on the other side (the net becomes cut).
Only nets whose counts pass near 0/1/2 can change other pins' gains, so
updates touch a small neighbourhood per move.

Balance: a move is feasible when the receiving side stays under its cap,
or when it strictly reduces the total overload (so FM can also *repair*
an unbalanced initial partition).  Best-prefix selection prefers balanced
prefixes, then lower cut.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.model import Hypergraph
from repro.partitioning.multilevel.initial import bisection_cut

__all__ = ["fm_refine", "initial_gains"]


def initial_gains(hg: Hypergraph, side: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorised FM gains for every vertex (one pass over all pins)."""
    if hg.num_edges == 0:
        return np.zeros(hg.num_vertices)
    edge_ids = np.repeat(
        np.arange(hg.num_edges, dtype=np.int64), np.diff(hg.edge_ptr)
    )
    pin_sides = side[hg.edge_pins].astype(np.int64)
    own = counts[edge_ids, pin_sides]
    other = counts[edge_ids, 1 - pin_sides]
    contrib = hg.edge_weights[edge_ids] * (
        (own == 1).astype(np.float64) - (other == 0).astype(np.float64)
    )
    return np.bincount(hg.edge_pins, weights=contrib, minlength=hg.num_vertices)


def _side_counts(hg: Hypergraph, side: np.ndarray) -> np.ndarray:
    counts = np.zeros((hg.num_edges, 2), dtype=np.int64)
    if hg.num_edges:
        edge_ids = np.repeat(
            np.arange(hg.num_edges, dtype=np.int64), np.diff(hg.edge_ptr)
        )
        keys = edge_ids * 2 + side[hg.edge_pins]
        counts[:] = np.bincount(keys, minlength=hg.num_edges * 2).reshape(-1, 2)
    return counts


def _recompute_gain(hg: Hypergraph, counts: np.ndarray, side: np.ndarray, u: int) -> float:
    rows = hg.edges_of(u)
    if rows.size == 0:
        return 0.0
    s = int(side[u])
    own = counts[rows, s]
    other = counts[rows, 1 - s]
    return float(
        (
            hg.edge_weights[rows]
            * ((own == 1).astype(np.float64) - (other == 0).astype(np.float64))
        ).sum()
    )


def fm_refine(
    hg: Hypergraph,
    side: np.ndarray,
    target_weights: tuple,
    *,
    slack: float = 1.05,
    max_passes: int = 4,
) -> tuple[np.ndarray, float]:
    """Refine a bisection in place; returns ``(side, cut)``.

    Parameters
    ----------
    hg:
        hypergraph being bisected.
    side:
        0/1 assignment; modified and also returned.
    target_weights:
        desired vertex-weight totals ``(w0, w1)``; caps are
        ``target * slack``.
    slack:
        per-bisection balance slack multiplier (> 1).
    max_passes:
        maximum FM passes; each pass ends on queue exhaustion and rolls
        back to its best prefix.
    """
    side = np.asarray(side, dtype=np.int8).copy()
    if slack <= 1.0:
        raise ValueError(f"slack must be > 1, got {slack}")
    w0, w1 = float(target_weights[0]), float(target_weights[1])
    caps = np.array([w0 * slack, w1 * slack])
    counts = _side_counts(hg, side)
    loads = np.array(
        [
            float(hg.vertex_weights[side == 0].sum()),
            float(hg.vertex_weights[side == 1].sum()),
        ]
    )
    cut = bisection_cut(hg, side)
    vw = hg.vertex_weights

    def overload(l) -> float:
        return max(0.0, l[0] - caps[0]) + max(0.0, l[1] - caps[1])

    for _ in range(max_passes):
        gains = initial_gains(hg, side, counts)
        locked = np.zeros(hg.num_vertices, dtype=bool)
        heap = [(-gains[v], v) for v in range(hg.num_vertices)]
        heapq.heapify(heap)
        moves: list[int] = []
        start_cut = cut
        start_overload = overload(loads)
        # Best prefix: (unbalanced?, cut, prefix length); prefix 0 = no move.
        best = (start_overload > 1e-9, start_cut, 0)
        while heap:
            neg_g, v = heapq.heappop(heap)
            if locked[v] or -neg_g != gains[v]:
                continue  # stale entry
            s = int(side[v])
            t = 1 - s
            new_loads = loads.copy()
            new_loads[s] -= vw[v]
            new_loads[t] += vw[v]
            feasible = new_loads[t] <= caps[t] or overload(new_loads) < overload(loads) - 1e-12
            if not feasible:
                locked[v] = True  # skip for the rest of this pass
                continue
            # apply the move
            rows = hg.edges_of(v)
            pre = counts[rows].copy()
            counts[rows, s] -= 1
            counts[rows, t] += 1
            loads[:] = new_loads
            side[v] = t
            cut -= gains[v]
            locked[v] = True
            moves.append(v)
            key = (overload(loads) > 1e-9, cut, len(moves))
            if key[:2] < best[:2]:
                best = key
            # update gains on critical nets
            for idx in range(rows.size):
                cs, ct = int(pre[idx, s]), int(pre[idx, t])
                if cs <= 2 or ct <= 1:
                    e = rows[idx]
                    for u in hg.edge(e):
                        if not locked[u]:
                            g = _recompute_gain(hg, counts, side, u)
                            if g != gains[u]:
                                gains[u] = g
                                heapq.heappush(heap, (-g, int(u)))
        # roll back to the best prefix
        for v in reversed(moves[best[2] :]):
            t = int(side[v])
            s = 1 - t
            rows = hg.edges_of(v)
            counts[rows, t] -= 1
            counts[rows, s] += 1
            loads[t] -= vw[v]
            loads[s] += vw[v]
            side[v] = s
        cut = best[1]
        improved = (cut < start_cut - 1e-12) or (overload(loads) < start_overload - 1e-12)
        if not improved:
            break
    return side, float(cut)
