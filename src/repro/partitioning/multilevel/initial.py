"""Initial bisection of the coarsest hypergraph.

Greedy hypergraph growing (GHG, as in PaToH): seed part 0 with a random
vertex and repeatedly absorb the unassigned vertex most connected to part
0 until it reaches its target weight; everything else is part 1.  Several
trials from different seeds are scored by (cut, balance violation) and the
best kept.  A weight-aware random bisection is used as fallback when the
coarsest hypergraph has no nets at all.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator

__all__ = ["greedy_growing_bisection", "random_bisection", "bisection_cut"]


def bisection_cut(hg: Hypergraph, side: np.ndarray) -> float:
    """Weighted cut of a two-way assignment (0/1 vector)."""
    side = np.asarray(side)
    pin_sides = side[hg.edge_pins]
    # A net is cut iff its pins' sides are not all equal: detect via
    # per-net min != max using reduceat over the CSR layout.
    if hg.num_edges == 0:
        return 0.0
    mins = np.minimum.reduceat(pin_sides, hg.edge_ptr[:-1])
    maxs = np.maximum.reduceat(pin_sides, hg.edge_ptr[:-1])
    return float(hg.edge_weights[mins != maxs].sum())


def random_bisection(hg: Hypergraph, target_w0: float, *, seed=None) -> np.ndarray:
    """Weight-aware random split: shuffle, then fill part 0 to its target."""
    rng = as_generator(seed)
    order = rng.permutation(hg.num_vertices)
    side = np.ones(hg.num_vertices, dtype=np.int8)
    acc = 0.0
    for v in order:
        if acc >= target_w0:
            break
        side[v] = 0
        acc += hg.vertex_weights[v]
    return side


def greedy_growing_bisection(
    hg: Hypergraph,
    target_w0: float,
    *,
    trials: int = 4,
    seed=None,
) -> np.ndarray:
    """Best-of-``trials`` greedy hypergraph growing bisection.

    Returns a 0/1 side vector.  Balance is primary (GHG stops exactly at
    the target weight), cut is the tie-breaker across trials.
    """
    if hg.num_vertices < 2:
        return np.zeros(hg.num_vertices, dtype=np.int8)
    rng = as_generator(seed)
    if hg.num_edges == 0:
        return random_bisection(hg, target_w0, seed=rng)

    cards = hg.cardinalities()
    contrib = np.where(cards > 1, hg.edge_weights / np.maximum(cards - 1, 1), 0.0)
    best_side: np.ndarray | None = None
    best_key: tuple | None = None

    for _ in range(max(1, trials)):
        side = np.ones(hg.num_vertices, dtype=np.int8)
        in_part0 = np.zeros(hg.num_vertices, dtype=bool)
        gain = np.zeros(hg.num_vertices, dtype=np.float64)
        seed_v = int(rng.integers(hg.num_vertices))
        frontier_seeded = False
        acc = 0.0
        while acc < target_w0:
            if not frontier_seeded:
                v = seed_v
                frontier_seeded = True
            else:
                masked = np.where(in_part0, -np.inf, gain)
                v = int(np.argmax(masked))
                if not np.isfinite(masked[v]):
                    break
                if masked[v] <= 0:
                    # Disconnected frontier: jump to a fresh random seed.
                    unassigned = np.flatnonzero(~in_part0)
                    if unassigned.size == 0:
                        break
                    v = int(rng.choice(unassigned))
            if in_part0[v]:
                break
            in_part0[v] = True
            side[v] = 0
            acc += hg.vertex_weights[v]
            # Raise connectivity scores of co-pins.
            for e in hg.edges_of(v):
                pins = hg.edge(e)
                gain[pins] += contrib[e]
        cut = bisection_cut(hg, side)
        balance_err = abs(acc - target_w0)
        key = (cut, balance_err)
        if best_key is None or key < best_key:
            best_key = key
            best_side = side
    assert best_side is not None
    return best_side
