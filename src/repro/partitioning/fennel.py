"""FENNEL-style single-pass streaming baseline, generalised to hypergraphs.

FENNEL (Tsourakakis et al., 2012) streams a *graph* once, placing each
vertex at ``argmax_i |N(v) cap S_i| - alpha * gamma * |S_i|^{gamma - 1}``.
The hypergraph generalisation here scores partition ``i`` by the number of
hyperedge-neighbours already in ``i`` minus the same interpolated load
penalty.  It is the algorithm HyperPRAW descends from: one pass, no
tempering, no refinement, no architecture term — so the gap between
``fennel`` and ``hyperpraw-basic`` isolates what *restreaming* adds, and
the gap between ``hyperpraw-basic`` and ``hyperpraw-aware`` isolates what
*architecture-awareness* adds.

The pass itself runs on the shared engine
(:func:`repro.engine.kernel.pass_kernel` in place-only mode with a
:class:`~repro.engine.scorers.FennelScorer`), which also gives FENNEL the
vectorised chunk-scoring hot path via ``chunk_size``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.core.schedule import initial_alpha
from repro.engine import DenseKernelState, FennelScorer, InMemorySource, pass_kernel
from repro.utils.rng import as_generator

__all__ = ["FennelStreaming"]


class FennelStreaming(Partitioner):
    """One-pass greedy hypergraph streaming with FENNEL's load penalty.

    Parameters
    ----------
    gamma:
        load-penalty exponent (FENNEL's default 1.5).
    alpha:
        load-penalty scale; ``None`` derives the FENNEL formula
        ``sqrt(p) * |E| / |V|^{3/2}``.
    stream_order:
        ``"natural"`` or ``"shuffled"`` (seeded).
    balance_slack:
        hard cap on any partition's vertex-weight as a multiple of the
        perfectly balanced share; prevents the degenerate all-in-one
        assignment on hub-dominated instances.
    chunk_size:
        ``None`` (default) scores one vertex at a time against the live
        state, exactly as published.  A positive value switches to the
        engine's vectorised chunk scoring (neighbour terms frozen at
        block start, load penalty live) — faster, with intra-block
        staleness in the neighbour term.
    kernel:
        inner-loop implementation — ``"auto"`` (compiled when numba is
        installed, silently python otherwise), ``"python"`` or
        ``"njit"`` (warned fallback); see
        :func:`repro.engine.resolve_kernel`.
    """

    name = "fennel"

    def __init__(
        self,
        *,
        gamma: float = 1.5,
        alpha: "float | None" = None,
        stream_order: str = "natural",
        balance_slack: float = 1.2,
        chunk_size: "int | None" = None,
        kernel: str = "auto",
    ):
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if stream_order not in ("natural", "shuffled"):
            raise ValueError(f"unknown stream_order {stream_order!r}")
        if balance_slack <= 1.0:
            raise ValueError(f"balance_slack must be > 1, got {balance_slack}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1 or None, got {chunk_size}")
        if kernel not in ("auto", "python", "njit"):
            raise ValueError(
                f"kernel must be 'auto', 'python' or 'njit', got {kernel!r}"
            )
        self.gamma = float(gamma)
        self.alpha = alpha
        self.stream_order = stream_order
        self.balance_slack = float(balance_slack)
        self.chunk_size = chunk_size
        self.kernel = kernel

    def partition(self, hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult:
        self._check_args(hg, num_parts)
        p = num_parts
        alpha = (
            float(self.alpha)
            if self.alpha is not None
            else initial_alpha(hg, p, "fennel")
        )
        order = np.arange(hg.num_vertices, dtype=np.int64)
        if self.stream_order == "shuffled":
            as_generator(seed).shuffle(order)

        # Streaming state: hyperedge -> per-partition pin counts of the
        # vertices streamed so far (unseen vertices count nowhere).
        state = DenseKernelState.empty(hg.num_edges, p)
        assignment = np.full(hg.num_vertices, -1, dtype=np.int64)
        cap = self.balance_slack * hg.total_vertex_weight() / p
        source = InMemorySource(hg, order=order, block_size=self.chunk_size)
        t_pass = time.perf_counter()
        kernel_mode = pass_kernel(
            source.blocks(),
            state,
            FennelScorer(alpha, self.gamma),
            assignment,
            restream=False,
            score_mode="chunk" if self.chunk_size is not None else "vertex",
            cap=cap,
            kernel=self.kernel,
        )
        pass_seconds = time.perf_counter() - t_pass

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={
                "alpha": alpha,
                "gamma": self.gamma,
                "single_pass": True,
                "chunk_size": self.chunk_size,
                "kernel_mode": kernel_mode,
                "pass_seconds": pass_seconds,
            },
        )
