"""FENNEL-style single-pass streaming baseline, generalised to hypergraphs.

FENNEL (Tsourakakis et al., 2012) streams a *graph* once, placing each
vertex at ``argmax_i |N(v) cap S_i| - alpha * gamma * |S_i|^{gamma - 1}``.
The hypergraph generalisation here scores partition ``i`` by the number of
hyperedge-neighbours already in ``i`` minus the same interpolated load
penalty.  It is the algorithm HyperPRAW descends from: one pass, no
tempering, no refinement, no architecture term — so the gap between
``fennel`` and ``hyperpraw-basic`` isolates what *restreaming* adds, and
the gap between ``hyperpraw-basic`` and ``hyperpraw-aware`` isolates what
*architecture-awareness* adds.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.core.schedule import initial_alpha
from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator

__all__ = ["FennelStreaming"]


class FennelStreaming(Partitioner):
    """One-pass greedy hypergraph streaming with FENNEL's load penalty.

    Parameters
    ----------
    gamma:
        load-penalty exponent (FENNEL's default 1.5).
    alpha:
        load-penalty scale; ``None`` derives the FENNEL formula
        ``sqrt(p) * |E| / |V|^{3/2}``.
    stream_order:
        ``"natural"`` or ``"shuffled"`` (seeded).
    balance_slack:
        hard cap on any partition's vertex-weight as a multiple of the
        perfectly balanced share; prevents the degenerate all-in-one
        assignment on hub-dominated instances.
    """

    name = "fennel"

    def __init__(
        self,
        *,
        gamma: float = 1.5,
        alpha: "float | None" = None,
        stream_order: str = "natural",
        balance_slack: float = 1.2,
    ):
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if stream_order not in ("natural", "shuffled"):
            raise ValueError(f"unknown stream_order {stream_order!r}")
        if balance_slack <= 1.0:
            raise ValueError(f"balance_slack must be > 1, got {balance_slack}")
        self.gamma = float(gamma)
        self.alpha = alpha
        self.stream_order = stream_order
        self.balance_slack = float(balance_slack)

    def partition(self, hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult:
        self._check_args(hg, num_parts)
        p = num_parts
        alpha = (
            float(self.alpha)
            if self.alpha is not None
            else initial_alpha(hg, p, "fennel")
        )
        order = np.arange(hg.num_vertices, dtype=np.int64)
        if self.stream_order == "shuffled":
            as_generator(seed).shuffle(order)

        # Streaming state: hyperedge -> per-partition pin counts of the
        # vertices streamed so far (unseen vertices count nowhere).
        counts = np.zeros((hg.num_edges, p), dtype=np.int64)
        loads = np.zeros(p, dtype=np.float64)
        assignment = np.full(hg.num_vertices, -1, dtype=np.int64)
        cap = self.balance_slack * hg.total_vertex_weight() / p
        gamma = self.gamma
        vptr, vedges, weights = hg.vertex_ptr, hg.vertex_edges, hg.vertex_weights

        for v in order:
            rows = vedges[vptr[v] : vptr[v + 1]]
            if rows.size:
                neigh = counts[rows].sum(axis=0, dtype=np.float64)
            else:
                neigh = np.zeros(p)
            penalty = alpha * gamma * np.power(loads, gamma - 1.0)
            score = neigh - penalty
            # Enforce the hard cap by masking full partitions.
            full = loads + weights[v] > cap
            if full.all():
                full = loads != loads.min()  # place on the emptiest
            score[full] = -np.inf
            j = int(np.argmax(score))
            assignment[v] = j
            loads[j] += weights[v]
            if rows.size:
                counts[rows, j] += 1

        return PartitionResult(
            assignment=assignment,
            num_parts=p,
            algorithm=self.name,
            metadata={"alpha": alpha, "gamma": gamma, "single_pass": True},
        )
