"""Trivial baseline partitioners.

These are controls, not contenders: random assignment bounds the worst
case, round-robin is HyperPRAW's own initialisation (so comparing against
it isolates what the streaming passes add), and contiguous chunking is
near-optimal for banded mesh instances (their natural ordering is already
a good partition) — a useful sanity reference for the mesh stand-ins.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Partitioner
from repro.core.result import PartitionResult
from repro.hypergraph.model import Hypergraph
from repro.utils.rng import as_generator

__all__ = ["RandomPartitioner", "RoundRobinPartitioner", "ContiguousPartitioner"]


class RandomPartitioner(Partitioner):
    """Uniform random assignment (seeded)."""

    name = "random"

    def partition(self, hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult:
        self._check_args(hg, num_parts)
        rng = as_generator(seed)
        assignment = rng.integers(0, num_parts, size=hg.num_vertices, dtype=np.int64)
        return PartitionResult(
            assignment=assignment,
            num_parts=num_parts,
            algorithm=self.name,
            metadata={"seed": None if seed is None else int(seed) if isinstance(seed, (int, np.integer)) else "generator"},
        )


class RoundRobinPartitioner(Partitioner):
    """``v -> v mod p`` — HyperPRAW's initial state (Algorithm 1, line 1)."""

    name = "round-robin"

    def partition(self, hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult:
        self._check_args(hg, num_parts)
        assignment = np.arange(hg.num_vertices, dtype=np.int64) % num_parts
        return PartitionResult(
            assignment=assignment, num_parts=num_parts, algorithm=self.name
        )


class ContiguousPartitioner(Partitioner):
    """Split the vertex id range into ``p`` weight-balanced contiguous chunks.

    For row-net matrices with banded structure this is the classic 1-D
    block distribution; it serves as a locality-preserving reference.
    """

    name = "contiguous"

    def partition(self, hg, num_parts, *, cost_matrix=None, seed=None) -> PartitionResult:
        self._check_args(hg, num_parts)
        cumw = np.cumsum(hg.vertex_weights)
        total = cumw[-1]
        # Chunk k ends at the first vertex whose cumulative weight reaches
        # k/p of the total (that vertex included); searchsorted gives
        # balanced contiguous blocks even with heterogeneous weights.
        targets = total * (np.arange(1, num_parts, dtype=np.float64) / num_parts)
        boundaries = np.searchsorted(cumw, targets, side="left") + 1
        assignment = np.zeros(hg.num_vertices, dtype=np.int64)
        for k, b in enumerate(boundaries, start=1):
            assignment[b:] = k
        return PartitionResult(
            assignment=assignment, num_parts=num_parts, algorithm=self.name
        )
