"""Baseline partitioners.

The paper benchmarks HyperPRAW against Zoltan's multilevel recursive
bisection; we re-implement that family from scratch plus two cheaper
baselines used in tests and ablations:

* :class:`~repro.partitioning.multilevel.MultilevelRB` — multilevel
  recursive bisection: heavy-connectivity coarsening, greedy hypergraph
  growing initial bisection, Fiduccia–Mattheyses boundary refinement at
  every level (the Zoltan/PaToH/hMetis algorithm family).
* :class:`~repro.partitioning.fennel.FennelStreaming` — single-pass
  FENNEL-style streaming baseline generalised to hypergraphs.
* :mod:`~repro.partitioning.simple` — random, round-robin and contiguous-
  chunk assignments (controls and worst/best-case references).
"""

from repro.partitioning.multilevel import MultilevelRB
from repro.partitioning.fennel import FennelStreaming
from repro.partitioning.simple import (
    RandomPartitioner,
    RoundRobinPartitioner,
    ContiguousPartitioner,
)

__all__ = [
    "MultilevelRB",
    "FennelStreaming",
    "RandomPartitioner",
    "RoundRobinPartitioner",
    "ContiguousPartitioner",
]
