"""Baseline partitioners.

The paper benchmarks HyperPRAW against Zoltan's multilevel recursive
bisection; we re-implement that family from scratch plus two cheaper
baselines used in tests and ablations:

* :class:`~repro.partitioning.multilevel.MultilevelRB` — multilevel
  recursive bisection: heavy-connectivity coarsening, greedy hypergraph
  growing initial bisection, Fiduccia–Mattheyses boundary refinement at
  every level (the Zoltan/PaToH/hMetis algorithm family).
* :class:`~repro.partitioning.fennel.FennelStreaming` — single-pass
  FENNEL-style streaming baseline generalised to hypergraphs.
* :mod:`~repro.partitioning.simple` — random, round-robin and contiguous-
  chunk assignments (controls and worst/best-case references).

The out-of-core streamers of :mod:`repro.streaming` —
:class:`~repro.streaming.onepass.OnePassStreamer` and
:class:`~repro.streaming.restream.BufferedRestreamer` — are re-exported
here: they implement the same ``partition(hg, ...)`` interface (streaming
the hypergraph to themselves chunk by chunk) and belong in the same
roster for experiments, even though their native entry point is
``partition_stream`` over a disk-backed chunk stream.  So is
:class:`~repro.cluster.coordinator.DistributedStreamer`, the multi-node
variant that drives the same sharded protocol over TCP workers
(docs/cluster.md).

:mod:`~repro.partitioning.families` adds the competitor families that run
on the same engine — HYPE-style neighbourhood expansion
(:class:`~repro.partitioning.families.NeighborhoodExpansion`),
limited-memory min-max streaming
(:class:`~repro.partitioning.families.MinMaxStreamer`) and the FM-style
post-streaming polish (:class:`~repro.partitioning.families.PolishedStreamer`)
— together with :data:`~repro.partitioning.families.PARTITIONERS`, the
registry the service, CLI and invariant tests all introspect.
"""

from repro.partitioning.multilevel import MultilevelRB
from repro.partitioning.fennel import FennelStreaming
from repro.partitioning.simple import (
    RandomPartitioner,
    RoundRobinPartitioner,
    ContiguousPartitioner,
)
from repro.streaming import BufferedRestreamer, OnePassStreamer, ShardedStreamer
from repro.cluster import DistributedStreamer
from repro.partitioning.families import (
    PARTITIONERS,
    FamilySpec,
    MinMaxStreamer,
    NeighborhoodExpansion,
    PolishedStreamer,
    RefineConfig,
    build_partitioner,
    family_names,
    get_family,
    refine_partition,
)

__all__ = [
    "MultilevelRB",
    "FennelStreaming",
    "RandomPartitioner",
    "RoundRobinPartitioner",
    "ContiguousPartitioner",
    "OnePassStreamer",
    "BufferedRestreamer",
    "ShardedStreamer",
    "DistributedStreamer",
    "NeighborhoodExpansion",
    "MinMaxStreamer",
    "PolishedStreamer",
    "RefineConfig",
    "refine_partition",
    "FamilySpec",
    "PARTITIONERS",
    "family_names",
    "get_family",
    "build_partitioner",
]
