"""Length-prefixed, versioned binary wire protocol for the cluster layer.

Every message travels as one **frame**::

    +--------+---------+---------+--------------+------------------+
    | magic  | version | flags   | payload_len  | payload bytes    |
    | 4s     | u16     | u16     | u64          | payload_len      |
    +--------+---------+---------+--------------+------------------+
    little-endian, header = struct "<4sHHQ" (16 bytes)

and the payload is a self-describing body::

    +----------+------------+---------------------------------------+
    | json_len | JSON       | raw array/bytes sections, in order    |
    | u32      | json_len   | (concatenated, offsets from manifest) |
    +----------+------------+---------------------------------------+

The JSON part is ``{"body": <message>, "nd": [<section manifest>]}``
where numpy arrays in the message are replaced by ``{"__nd__": i}``
placeholders (and raw ``bytes`` by ``{"__bytes__": i}``), each pointing
at a section manifest entry ``{"dtype", "shape", "nbytes"}``.  Array
data crosses the wire as raw little-endian buffers — the same
convention as the chunk store (``docs/formats.md``) — so a shard's
boundary rows and load vectors (the PR 4 payload protocol) ship without
pickling, and raw text blocks feed the byte-source readers
(``repro.streaming.reader``) straight off the socket.

Failure taxonomy (all subclasses of :class:`ProtocolError`):

* :class:`TruncatedFrameError` — the peer hung up mid-frame.
* :class:`ConnectionClosedError` — the peer hung up *between* frames
  (a clean EOF; distinct because a worker session may legitimately end
  there while a half-frame never is legitimate).
* :class:`VersionMismatchError` — frame header carries a different
  protocol version; negotiation is deliberately absent (v1).
* :class:`OversizedFrameError` — declared payload exceeds the receiver's
  ``max_frame`` bound; the frame is rejected *before* allocation, and
  the connection is unusable afterwards (the stream is mid-frame).
* :class:`BadMagicError` — the peer is not speaking this protocol.

:func:`base_from_spec` decodes the JSON-safe recipe produced by the
base partitioners' ``_shard_spec`` so a remote worker can rebuild an
equivalent single-worker base and run the identical
:func:`~repro.streaming.sharded.shard_stream_task`.
"""

from __future__ import annotations

import json
import struct

import numpy as np

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "HEADER",
    "DEFAULT_MAX_FRAME",
    "ProtocolError",
    "TruncatedFrameError",
    "ConnectionClosedError",
    "VersionMismatchError",
    "OversizedFrameError",
    "BadMagicError",
    "encode_payload",
    "decode_payload",
    "frame",
    "send_message",
    "recv_message",
    "base_from_spec",
]

PROTOCOL_MAGIC = b"HPCL"
PROTOCOL_VERSION = 1
#: frame header: magic, version, flags, payload length (little-endian)
HEADER = struct.Struct("<4sHHQ")
_JSON_LEN = struct.Struct("<I")
#: default per-frame payload bound (1 GiB) — a sanity rail against a
#: corrupt or hostile length prefix, not a streaming chunk size.
DEFAULT_MAX_FRAME = 1 << 30


class ProtocolError(RuntimeError):
    """Base class for every cluster wire-protocol failure."""


class TruncatedFrameError(ProtocolError):
    """The peer disconnected in the middle of a frame."""


class ConnectionClosedError(ProtocolError):
    """The peer disconnected cleanly between frames."""


class VersionMismatchError(ProtocolError):
    """The peer speaks a different protocol version."""


class OversizedFrameError(ProtocolError):
    """A frame declared a payload larger than the receiver allows."""


class BadMagicError(ProtocolError):
    """The first bytes were not the ``HPCL`` magic."""


# ----------------------------------------------------------------------
# payload codec
# ----------------------------------------------------------------------
def _pack(obj, sections: list):
    """Recursively replace arrays/bytes with section placeholders."""
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        sections.append(arr)
        return {"__nd__": len(sections) - 1}
    if isinstance(obj, (bytes, bytearray, memoryview)):
        sections.append(np.frombuffer(bytes(obj), dtype=np.uint8))
        return {"__bytes__": len(sections) - 1}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _pack(v, sections) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_pack(v, sections) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ProtocolError(f"cannot encode {type(obj).__name__} on the wire")


def _unpack(obj, arrays: list):
    """Inverse of :func:`_pack` over a decoded JSON body.

    The placeholder key — not the section dtype — decides whether a
    section comes back as an array or as ``bytes`` (a raw text block
    for the byte-source readers is stored as uint8 like any other
    section; only its placeholder differs).
    """
    if isinstance(obj, dict):
        if "__nd__" in obj and len(obj) == 1:
            return arrays[obj["__nd__"]]
        if "__bytes__" in obj and len(obj) == 1:
            return arrays[obj["__bytes__"]].tobytes()
        return {k: _unpack(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_unpack(v, arrays) for v in obj]
    return obj


def encode_payload(message) -> bytes:
    """Serialise ``message`` (JSON-safe values + numpy arrays + bytes)."""
    sections: "list[np.ndarray]" = []
    body = _pack(message, sections)
    manifest = [
        {
            "dtype": s.dtype.str,
            "shape": list(s.shape),
            "nbytes": int(s.nbytes),
        }
        for s in sections
    ]
    head = json.dumps(
        {"body": body, "nd": manifest}, separators=(",", ":")
    ).encode("utf-8")
    parts = [_JSON_LEN.pack(len(head)), head]
    parts.extend(s.tobytes() for s in sections)
    return b"".join(parts)


def decode_payload(payload: bytes):
    """Inverse of :func:`encode_payload`.

    Arrays come back as fresh *writable* copies (``np.frombuffer`` views
    are read-only and the round protocol mutates e.g. merged boundary
    counts in place).
    """
    if len(payload) < _JSON_LEN.size:
        raise TruncatedFrameError("payload shorter than its JSON length")
    (json_len,) = _JSON_LEN.unpack_from(payload)
    if len(payload) < _JSON_LEN.size + json_len:
        raise TruncatedFrameError("payload shorter than its JSON header")
    head = json.loads(payload[_JSON_LEN.size : _JSON_LEN.size + json_len])
    offset = _JSON_LEN.size + json_len
    arrays: "list[np.ndarray]" = []
    for meta in head["nd"]:
        nbytes = meta["nbytes"]
        if offset + nbytes > len(payload):
            raise TruncatedFrameError("payload shorter than its sections")
        buf = payload[offset : offset + nbytes]
        offset += nbytes
        arrays.append(
            np.frombuffer(buf, dtype=np.dtype(meta["dtype"]))
            .reshape(meta["shape"])
            .copy()
        )
    return _unpack(head["body"], arrays)


def frame(payload: bytes, *, version: int = PROTOCOL_VERSION) -> bytes:
    """Wrap an encoded payload in the length-prefixed frame header."""
    return HEADER.pack(PROTOCOL_MAGIC, version, 0, len(payload)) + payload


# ----------------------------------------------------------------------
# socket helpers
# ----------------------------------------------------------------------
def _recv_exact(sock, n: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``n`` bytes; EOF raises the appropriate error."""
    chunks = []
    got = 0
    while got < n:
        block = sock.recv(min(n - got, 1 << 20))
        if not block:
            if at_boundary and got == 0:
                raise ConnectionClosedError("peer closed the connection")
            raise TruncatedFrameError(
                f"peer closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(block)
        got += len(block)
    return b"".join(chunks)


def send_message(sock, message, *, version: int = PROTOCOL_VERSION) -> int:
    """Encode, frame and send; returns the bytes put on the wire."""
    data = frame(encode_payload(message), version=version)
    sock.sendall(data)
    return len(data)


def recv_message(sock, *, max_frame: int = DEFAULT_MAX_FRAME):
    """Receive one frame; returns ``(message, wire_bytes)``.

    Raises the :class:`ProtocolError` family on malformed input; a
    ``socket.timeout`` from the underlying socket propagates unchanged
    (the straggler-timeout rail belongs to the caller).
    """
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    magic, version, _flags, payload_len = HEADER.unpack(header)
    if magic != PROTOCOL_MAGIC:
        raise BadMagicError(f"expected {PROTOCOL_MAGIC!r}, got {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"peer speaks protocol v{version}, this build speaks "
            f"v{PROTOCOL_VERSION}"
        )
    if payload_len > max_frame:
        raise OversizedFrameError(
            f"frame declares {payload_len} payload bytes, over the "
            f"{max_frame}-byte bound"
        )
    payload = _recv_exact(sock, payload_len, at_boundary=False)
    return decode_payload(payload), HEADER.size + payload_len


# ----------------------------------------------------------------------
# base partitioner reconstruction
# ----------------------------------------------------------------------
def base_from_spec(spec: dict):
    """Rebuild a single-worker base partitioner from its wire spec.

    The inverse of ``OnePassStreamer._shard_spec`` /
    ``BufferedRestreamer._shard_spec``; the result implements the
    sharding contract (``_run_shard``/``_shard_profile``) with the same
    scoring parameters as the coordinator's base, which is what makes a
    remote shard bit-identical to a forked one.
    """
    kind = spec.get("kind")
    if kind == "onepass":
        from repro.streaming.onepass import OnePassStreamer

        return OnePassStreamer(
            alpha=spec["alpha"],
            presence_threshold=spec["presence_threshold"],
            balance_slack=spec["balance_slack"],
            max_tracked_edges=spec["max_tracked_edges"],
            score_mode=spec["score_mode"],
            scorer=spec["scorer"],
            gamma=spec["gamma"],
            # .get: specs written before the kernel knob existed decode
            # to the default rather than failing the session.
            kernel=spec.get("kernel", "auto"),
        )
    if kind == "buffered":
        from repro.core.config import HyperPRAWConfig
        from repro.streaming.restream import BufferedRestreamer

        return BufferedRestreamer(
            HyperPRAWConfig(**spec["config"]),
            buffer_size=spec["buffer_size"],
            max_tracked_edges=spec["max_tracked_edges"],
            workers=1,
        )
    raise ProtocolError(f"unknown base partitioner spec kind {kind!r}")
