"""Length-prefixed, versioned binary wire protocol for the cluster layer.

Every message travels as one **frame**::

    +--------+---------+---------+--------------+------------------+
    | magic  | version | flags   | payload_len  | payload bytes    |
    | 4s     | u16     | u16     | u64          | payload_len      |
    +--------+---------+---------+--------------+------------------+
    little-endian, header = struct "<4sHHQ" (16 bytes)

and the payload is a self-describing body::

    +----------+------------+---------------------------------------+
    | json_len | JSON       | raw array/bytes sections, in order    |
    | u32      | json_len   | (concatenated, offsets from manifest) |
    +----------+------------+---------------------------------------+

The JSON part is ``{"body": <message>, "nd": [<section manifest>]}``
where numpy arrays in the message are replaced by ``{"__nd__": i}``
placeholders (and raw ``bytes`` by ``{"__bytes__": i}``), each pointing
at a section manifest entry ``{"dtype", "shape", "nbytes"}``.  Array
data crosses the wire as raw little-endian buffers — the same
convention as the chunk store (``docs/formats.md``) — so a shard's
boundary rows and load vectors (the PR 4 payload protocol) ship without
pickling, and raw text blocks feed the byte-source readers
(``repro.streaming.reader``) straight off the socket.

Protocol **v2** adds a frame-level compression flag
(:data:`FLAG_ZLIB`: the payload bytes are one zlib stream, decompressed
before the normal payload decode) and in-band version negotiation: the
coordinator's ``hello`` advertises ``max_version`` (and, optionally,
``compress``), the worker answers ``hello_ack`` with the *negotiated*
session version ``min(peer max, ours)``, and both sides frame at that
version afterwards.  The ``hello`` itself always travels as an
uncompressed v1 frame, which is what makes a v2 coordinator
interoperable with a v1 worker (and vice versa — a v1 ``hello``
carries no ``max_version`` and negotiates down to 1).  Compression is
only legal on v2 frames; unknown flag bits are rejected.

Failure taxonomy (all subclasses of :class:`ProtocolError`):

* :class:`TruncatedFrameError` — the peer hung up mid-frame, or a
  payload declares sections longer than the bytes that arrived.
* :class:`ConnectionClosedError` — the peer hung up *between* frames
  (a clean EOF; distinct because a worker session may legitimately end
  there while a half-frame never is legitimate).
* :class:`VersionMismatchError` — frame header carries a version this
  build does not speak (outside :data:`SUPPORTED_VERSIONS`).
* :class:`OversizedFrameError` — declared payload exceeds the receiver's
  ``max_frame`` bound; the frame is rejected *before* allocation, and
  the connection is unusable afterwards (the stream is mid-frame).
* :class:`BadMagicError` — the peer is not speaking this protocol.
* :class:`CorruptFrameError` — the frame arrived whole but its payload
  does not decode (bad flags, broken zlib stream, malformed JSON
  header, bogus section manifest).  Bit corruption on a hostile
  network lands here instead of leaking ``json``/``zlib``/``numpy``
  internals (fuzz-tested in ``tests/test_cluster_protocol.py``).
* :class:`AuthError` — the PSK handshake failed (missing, wrong, or
  unanswered); carries the peer's stable error ``code`` when one was
  reported (``auth_required`` / ``auth_failed``).

PSK authentication (v2): when both ends share a pre-shared key, the
``hello`` carries a coordinator nonce, the worker interposes an
``auth_challenge`` (its own nonce plus an HMAC-SHA256 proof over both),
and the coordinator answers ``auth_response`` with the complementary
proof before the session continues — mutual, replay-safe, and cheap.
:func:`hmac_proof` / :func:`fresh_nonce` / :func:`load_psk` are the
shared primitives; rejected peers receive a stable
``{"type": "error", "code": ...}`` frame.

:func:`base_from_spec` decodes the JSON-safe recipe produced by the
base partitioners' ``_shard_spec`` so a remote worker can rebuild an
equivalent single-worker base and run the identical
:func:`~repro.streaming.sharded.shard_stream_task`.
"""

from __future__ import annotations

import hmac
import hashlib
import json
import os
import struct
import zlib

import numpy as np

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "FLAG_ZLIB",
    "HEADER",
    "DEFAULT_MAX_FRAME",
    "ProtocolError",
    "TruncatedFrameError",
    "ConnectionClosedError",
    "VersionMismatchError",
    "OversizedFrameError",
    "BadMagicError",
    "CorruptFrameError",
    "AuthError",
    "encode_payload",
    "decode_payload",
    "frame",
    "send_message",
    "recv_message",
    "negotiate_version",
    "fresh_nonce",
    "hmac_proof",
    "load_psk",
    "base_from_spec",
]

PROTOCOL_MAGIC = b"HPCL"
PROTOCOL_VERSION = 2
#: frame versions this build can receive (negotiation picks the send one)
SUPPORTED_VERSIONS = (1, 2)
#: frame header: magic, version, flags, payload length (little-endian)
HEADER = struct.Struct("<4sHHQ")
#: header flag bit: the payload bytes are one zlib stream (v2 frames only)
FLAG_ZLIB = 0x1
_KNOWN_FLAGS = FLAG_ZLIB
_JSON_LEN = struct.Struct("<I")
#: default per-frame payload bound (1 GiB) — a sanity rail against a
#: corrupt or hostile length prefix, not a streaming chunk size.
DEFAULT_MAX_FRAME = 1 << 30
#: frames smaller than this are never compressed (the zlib header would
#: cost more than it saves, and the flag stays honest either way)
COMPRESS_MIN_BYTES = 128


class ProtocolError(RuntimeError):
    """Base class for every cluster wire-protocol failure."""


class TruncatedFrameError(ProtocolError):
    """The peer disconnected in the middle of a frame."""


class ConnectionClosedError(ProtocolError):
    """The peer disconnected cleanly between frames."""


class VersionMismatchError(ProtocolError):
    """The peer speaks a different protocol version."""


class OversizedFrameError(ProtocolError):
    """A frame declared a payload larger than the receiver allows."""


class BadMagicError(ProtocolError):
    """The first bytes were not the ``HPCL`` magic."""


class CorruptFrameError(ProtocolError):
    """A whole frame arrived but its payload does not decode."""


class AuthError(ProtocolError):
    """The PSK handshake failed or was refused by the peer."""

    def __init__(self, message: str, *, code: str = "auth_failed"):
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# payload codec
# ----------------------------------------------------------------------
def _pack(obj, sections: list):
    """Recursively replace arrays/bytes with section placeholders."""
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        sections.append(arr)
        return {"__nd__": len(sections) - 1}
    if isinstance(obj, (bytes, bytearray, memoryview)):
        sections.append(np.frombuffer(bytes(obj), dtype=np.uint8))
        return {"__bytes__": len(sections) - 1}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _pack(v, sections) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_pack(v, sections) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ProtocolError(f"cannot encode {type(obj).__name__} on the wire")


def _unpack(obj, arrays: list):
    """Inverse of :func:`_pack` over a decoded JSON body.

    The placeholder key — not the section dtype — decides whether a
    section comes back as an array or as ``bytes`` (a raw text block
    for the byte-source readers is stored as uint8 like any other
    section; only its placeholder differs).
    """
    if isinstance(obj, dict):
        if "__nd__" in obj and len(obj) == 1:
            return arrays[obj["__nd__"]]
        if "__bytes__" in obj and len(obj) == 1:
            return arrays[obj["__bytes__"]].tobytes()
        return {k: _unpack(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_unpack(v, arrays) for v in obj]
    return obj


def encode_payload(message) -> bytes:
    """Serialise ``message`` (JSON-safe values + numpy arrays + bytes)."""
    sections: "list[np.ndarray]" = []
    body = _pack(message, sections)
    manifest = [
        {
            "dtype": s.dtype.str,
            "shape": list(s.shape),
            "nbytes": int(s.nbytes),
        }
        for s in sections
    ]
    head = json.dumps(
        {"body": body, "nd": manifest}, separators=(",", ":")
    ).encode("utf-8")
    parts = [_JSON_LEN.pack(len(head)), head]
    parts.extend(s.tobytes() for s in sections)
    return b"".join(parts)


def decode_payload(payload: bytes):
    """Inverse of :func:`encode_payload`.

    Arrays come back as fresh *writable* copies (``np.frombuffer`` views
    are read-only and the round protocol mutates e.g. merged boundary
    counts in place).
    """
    if len(payload) < _JSON_LEN.size:
        raise TruncatedFrameError("payload shorter than its JSON length")
    (json_len,) = _JSON_LEN.unpack_from(payload)
    if len(payload) < _JSON_LEN.size + json_len:
        raise TruncatedFrameError("payload shorter than its JSON header")
    try:
        head = json.loads(
            payload[_JSON_LEN.size : _JSON_LEN.size + json_len]
        )
    except (ValueError, UnicodeDecodeError) as exc:
        raise CorruptFrameError(f"payload JSON does not parse: {exc}")
    if not isinstance(head, dict) or "body" not in head or "nd" not in head:
        raise CorruptFrameError("payload JSON is not a {body, nd} envelope")
    manifest = head["nd"]
    if not isinstance(manifest, list):
        raise CorruptFrameError("payload section manifest is not a list")
    offset = _JSON_LEN.size + json_len
    arrays: "list[np.ndarray]" = []
    for meta in manifest:
        try:
            nbytes = int(meta["nbytes"])
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(d) for d in meta["shape"])
        except (TypeError, KeyError, ValueError) as exc:
            raise CorruptFrameError(f"bad section manifest entry: {exc}")
        if nbytes < 0 or offset + nbytes > len(payload):
            raise TruncatedFrameError("payload shorter than its sections")
        buf = payload[offset : offset + nbytes]
        offset += nbytes
        try:
            arrays.append(
                np.frombuffer(buf, dtype=dtype).reshape(shape).copy()
            )
        except (TypeError, ValueError) as exc:
            raise CorruptFrameError(f"section does not decode: {exc}")
    try:
        return _unpack(head["body"], arrays)
    except (IndexError, TypeError) as exc:
        raise CorruptFrameError(f"body references bad sections: {exc}")


def frame(
    payload: bytes,
    *,
    version: int = PROTOCOL_VERSION,
    compress: bool = False,
) -> bytes:
    """Wrap an encoded payload in the length-prefixed frame header.

    With ``compress=True`` (v2 frames only) the payload is deflated and
    the :data:`FLAG_ZLIB` header bit set — unless the payload is tiny or
    incompressible, in which case the flag stays clear and the raw bytes
    ship (the receiver trusts the flag, not the intent).
    """
    flags = 0
    if compress and version >= 2 and len(payload) >= COMPRESS_MIN_BYTES:
        packed = zlib.compress(payload, 1)
        if len(packed) < len(payload):
            payload = packed
            flags |= FLAG_ZLIB
    return HEADER.pack(PROTOCOL_MAGIC, version, flags, len(payload)) + payload


# ----------------------------------------------------------------------
# socket helpers
# ----------------------------------------------------------------------
def _recv_exact(sock, n: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``n`` bytes; EOF raises the appropriate error."""
    chunks = []
    got = 0
    while got < n:
        block = sock.recv(min(n - got, 1 << 20))
        if not block:
            if at_boundary and got == 0:
                raise ConnectionClosedError("peer closed the connection")
            raise TruncatedFrameError(
                f"peer closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(block)
        got += len(block)
    return b"".join(chunks)


def send_message(
    sock,
    message,
    *,
    version: int = PROTOCOL_VERSION,
    compress: bool = False,
) -> int:
    """Encode, frame and send; returns the bytes put on the wire."""
    data = frame(encode_payload(message), version=version, compress=compress)
    sock.sendall(data)
    return len(data)


def recv_message(sock, *, max_frame: int = DEFAULT_MAX_FRAME):
    """Receive one frame; returns ``(message, wire_bytes)``.

    Raises the :class:`ProtocolError` family on malformed input; a
    ``socket.timeout`` from the underlying socket propagates unchanged
    (the straggler-timeout rail belongs to the caller).
    """
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    magic, version, flags, payload_len = HEADER.unpack(header)
    if magic != PROTOCOL_MAGIC:
        raise BadMagicError(f"expected {PROTOCOL_MAGIC!r}, got {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise VersionMismatchError(
            f"peer speaks protocol v{version}, this build speaks "
            f"v{'/v'.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )
    if flags & ~_KNOWN_FLAGS:
        raise CorruptFrameError(f"unknown frame flags 0x{flags:04x}")
    if flags & FLAG_ZLIB and version < 2:
        raise CorruptFrameError("compressed flag on a v1 frame")
    if payload_len > max_frame:
        raise OversizedFrameError(
            f"frame declares {payload_len} payload bytes, over the "
            f"{max_frame}-byte bound"
        )
    payload = _recv_exact(sock, payload_len, at_boundary=False)
    wire = HEADER.size + payload_len
    if flags & FLAG_ZLIB:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptFrameError(f"zlib payload does not inflate: {exc}")
        if len(payload) > max_frame:
            raise OversizedFrameError(
                f"payload inflates to {len(payload)} bytes, over the "
                f"{max_frame}-byte bound"
            )
    return decode_payload(payload), wire


def negotiate_version(peer_max) -> int:
    """Session version from a peer's advertised ``max_version``.

    A v1 peer advertises nothing (``None``) and negotiates down to 1;
    anything else clamps into ``[1, PROTOCOL_VERSION]`` so a future v3
    coordinator still lands on the highest version we both speak.
    """
    if peer_max is None:
        return 1
    try:
        peer_max = int(peer_max)
    except (TypeError, ValueError):
        raise CorruptFrameError(f"bad max_version {peer_max!r}")
    return max(1, min(peer_max, PROTOCOL_VERSION))


# ----------------------------------------------------------------------
# PSK authentication primitives
# ----------------------------------------------------------------------
def fresh_nonce() -> bytes:
    """A 16-byte random nonce for the HMAC challenge exchange."""
    return os.urandom(16)


def hmac_proof(psk: bytes, role: str, nonce_c: bytes, nonce_w: bytes) -> bytes:
    """HMAC-SHA256 proof over both handshake nonces.

    ``role`` ("worker" or "coord") is baked into the MAC so one side's
    proof can never be replayed as the other's — that is what makes the
    challenge-response mutual.
    """
    mac = hmac.new(psk, role.encode("ascii"), hashlib.sha256)
    mac.update(nonce_c)
    mac.update(nonce_w)
    return mac.digest()


def load_psk(path) -> bytes:
    """Read a pre-shared key file (whitespace-stripped raw bytes)."""
    with open(path, "rb") as fh:
        psk = fh.read().strip()
    if not psk:
        raise ValueError(f"PSK file {path} is empty")
    return psk


# ----------------------------------------------------------------------
# base partitioner reconstruction
# ----------------------------------------------------------------------
def base_from_spec(spec: dict):
    """Rebuild a single-worker base partitioner from its wire spec.

    The inverse of ``OnePassStreamer._shard_spec`` /
    ``BufferedRestreamer._shard_spec``; the result implements the
    sharding contract (``_run_shard``/``_shard_profile``) with the same
    scoring parameters as the coordinator's base, which is what makes a
    remote shard bit-identical to a forked one.
    """
    kind = spec.get("kind")
    if kind == "onepass":
        from repro.streaming.onepass import OnePassStreamer

        return OnePassStreamer(
            alpha=spec["alpha"],
            presence_threshold=spec["presence_threshold"],
            balance_slack=spec["balance_slack"],
            max_tracked_edges=spec["max_tracked_edges"],
            score_mode=spec["score_mode"],
            scorer=spec["scorer"],
            gamma=spec["gamma"],
            # .get: specs written before the kernel knob existed decode
            # to the default rather than failing the session.
            kernel=spec.get("kernel", "auto"),
        )
    if kind == "buffered":
        from repro.core.config import HyperPRAWConfig
        from repro.streaming.restream import BufferedRestreamer

        return BufferedRestreamer(
            HyperPRAWConfig(**spec["config"]),
            buffer_size=spec["buffer_size"],
            max_tracked_edges=spec["max_tracked_edges"],
            workers=1,
        )
    raise ProtocolError(f"unknown base partitioner spec kind {kind!r}")
