"""Multi-node distributed partitioning over TCP sockets.

The cluster layer takes the sharded streaming contract (PR 2/4) across
machines: a coordinator assigns contiguous chunk ranges to long-lived
worker processes, ships each shard straight over its socket (decoded
chunk frames, or raw text blocks into the byte-source readers), and
drives the boundary merge + restream rounds over a length-prefixed,
versioned binary protocol.  Loopback runs are bit-identical to the
forked :class:`~repro.streaming.sharded.ShardedStreamer`.

* :mod:`repro.cluster.protocol` — frames, payload codec, error family.
* :mod:`repro.cluster.worker` — the long-lived shard server.
* :mod:`repro.cluster.coordinator` — :class:`DistributedStreamer` and
  the remote round pool.
"""

from repro.cluster.coordinator import ClusterRounds, DistributedStreamer
from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    BadMagicError,
    ConnectionClosedError,
    OversizedFrameError,
    ProtocolError,
    TruncatedFrameError,
    VersionMismatchError,
    base_from_spec,
)
from repro.cluster.worker import ClusterWorker

__all__ = [
    "ClusterRounds",
    "ClusterWorker",
    "DistributedStreamer",
    "DEFAULT_MAX_FRAME",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "BadMagicError",
    "ConnectionClosedError",
    "OversizedFrameError",
    "TruncatedFrameError",
    "VersionMismatchError",
    "base_from_spec",
]
