"""Coordinator side of distributed partitioning: remote shard rounds.

:class:`DistributedStreamer` is :class:`~repro.streaming.sharded.
ShardedStreamer` with the worker pool swapped out: instead of forking,
:meth:`DistributedStreamer._make_pool` builds a :class:`ClusterRounds`
that connects to long-lived :class:`~repro.cluster.worker.ClusterWorker`
processes over TCP, ships each its chunk range, and drives the same
barrier-synchronised rounds over the wire.  Range assignment, the
boundary-only merge, and the tempering/refinement schedule are all
*inherited* — the distributed layer changes transport, never algorithm —
which is why ``hosts=["localhost:P"]*N`` loopback runs are bit-identical
to ``ShardedStreamer(workers=N)`` (golden-tested).

Failure semantics (the "straggler timeout + reconnect-or-degrade"
contract):

* every socket operation is bounded by ``timeout`` — a killed or hung
  worker surfaces as an exception, never a deadlock;
* on worker loss with ``on_loss="degrade"`` the coordinator first
  re-dials the same endpoint once and **replays** the recorded round
  history (rounds are deterministic functions of the shipped inputs, so
  replayed replies equal the ones already merged and are discarded);
  if the endpoint stays dead, the shard's generator runs locally from
  the same replay — either way the final result is unchanged;
* ``on_loss="fail"`` raises immediately instead (loud, bounded).
"""

from __future__ import annotations

import hmac
import socket
import threading

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    AuthError,
    ProtocolError,
    VersionMismatchError,
    fresh_nonce,
    hmac_proof,
    recv_message,
    send_message,
)
from repro.streaming.reader import DEFAULT_CHUNK_SIZE, ChunkStream
from repro.streaming.sharded import ShardedStreamer

__all__ = ["DistributedStreamer", "ClusterRounds"]

#: exceptions that count as "worker lost" rather than coordinator bugs
_LINK_ERRORS = (OSError, socket.timeout, ProtocolError)


class _WorkerLink:
    """One coordinator-to-worker connection with wire accounting.

    ``version``/``compress`` start at the pre-negotiation defaults (v1
    frames, uncompressed — what any peer must accept) and are switched
    by the handshake once the worker's ``hello_ack`` lands.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float, max_frame: int
    ) -> None:
        self.host, self.port = host, port
        self.max_frame = max_frame
        self.wire_bytes = 0
        self.version = 1
        self.compress = False
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)

    def send(self, message) -> None:
        self.wire_bytes += send_message(
            self.sock,
            message,
            version=self.version,
            compress=self.compress,
        )

    def recv(self):
        message, nbytes = recv_message(self.sock, max_frame=self.max_frame)
        self.wire_bytes += nbytes
        if isinstance(message, dict) and message.get("type") == "error":
            code = message.get("code")
            where = f"worker {self.host}:{self.port}"
            if code in ("auth_required", "auth_failed"):
                raise AuthError(
                    f"{where} refused the handshake: {message['error']}",
                    code=code,
                )
            raise ProtocolError(f"{where} reported: {message['error']}")
        return message

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ClusterRounds:
    """Drive remote shard generators through barrier rounds over TCP.

    Drop-in for :class:`~repro.engine.parallel.ShardRounds` (``start`` /
    ``exchange`` / ``stop`` / ``close`` / ``run_metadata``), built from:

    ``attach(k)``
        connect + handshake + ship shard ``k``; returns a
        :class:`_WorkerLink` whose *next* received frame is the shard's
        phase-1 reply.
    ``local_tasks[k]``
        zero-arg callable returning the shard's generator locally — the
        degrade target, exact by construction because remote and forked
        shards run the same generator on the same inputs.
    """

    def __init__(
        self,
        *,
        endpoints: "list[tuple[str, int]]",
        attach,
        local_tasks: list,
        on_loss: str = "degrade",
        reconnect: bool = True,
        orphan_meter: "dict | None" = None,
    ) -> None:
        n = len(endpoints)
        if len(local_tasks) != n:
            raise ValueError("one local fallback task per endpoint required")
        self.endpoints = endpoints
        self._attach = attach
        self._local_tasks = list(local_tasks)
        self.on_loss = on_loss
        self.reconnect = reconnect
        # Bytes put on the wire by attach() attempts that never returned
        # a link (handshake or shipping died mid-way) — shared with the
        # attach closure so cluster_wire_bytes never undercounts.
        self.orphan_meter = (
            orphan_meter if orphan_meter is not None else {"bytes": 0}
        )
        self._links: "list[_WorkerLink | None]" = [None] * n
        self._link_info: "list[dict | None]" = [None] * n
        self._gens: list = [None] * n
        self._history: "list[list]" = [[] for _ in range(n)]
        self._tried_reconnect = [False] * n
        self.degraded_shards: "set[int]" = set()
        self.reconnected_shards: "set[int]" = set()
        self._closed_wire_bytes = 0

    # ------------------------------------------------------------------
    @property
    def _n(self) -> int:
        return len(self.endpoints)

    def _note(self, k: int, link: "_WorkerLink") -> None:
        """Record a live link (and its negotiated session facts)."""
        self._links[k] = link
        self._link_info[k] = {
            "version": link.version,
            "compress": link.compress,
        }

    def _lose(self, k: int, exc: Exception) -> None:
        """Mark worker ``k`` lost; raise instead under ``on_loss="fail"``.

        An :class:`AuthError` is never degradable: a refused PSK means a
        configuration (or adversary) problem that running the shard
        locally would silently paper over.
        """
        link = self._links[k]
        if link is not None:
            self._closed_wire_bytes += link.wire_bytes
            link.close()
            self._links[k] = None
        if isinstance(exc, AuthError):
            self.close()
            raise exc
        if self.on_loss == "fail":
            self.close()
            raise RuntimeError(
                f"cluster worker {self.endpoints[k][0]}:"
                f"{self.endpoints[k][1]} lost (shard {k}): {exc}"
            ) from exc

    @staticmethod
    def _drive(gen, message):
        """Send one round message to a local generator; stop-safe."""
        try:
            return gen.send(message)
        except StopIteration as stop_exc:
            return stop_exc.value

    def _fallback(self, k: int, message):
        """Deliver ``message`` to shard ``k`` after its worker was lost.

        Tries one reconnect (full re-handshake + re-ship + history
        replay over the wire); failing that, replays the history into a
        local generator.  Replay replies are discarded — determinism
        makes them byte-for-byte the values already merged.
        """
        if self._gens[k] is None and self.reconnect and not self._tried_reconnect[k]:
            self._tried_reconnect[k] = True
            link = None
            try:
                link = self._attach(k)
                link.recv()  # phase-1 replay, discarded
                for past in self._history[k]:
                    link.send(
                        {"type": "round", "kind": past[0], "ctl": past[1]}
                    )
                    link.recv()  # replayed round, discarded
                link.send(
                    {"type": "round", "kind": message[0], "ctl": message[1]}
                )
                reply = link.recv()
                self._note(k, link)
                self.reconnected_shards.add(k)
                return reply["body"]
            except AuthError:
                if link is not None:
                    self._closed_wire_bytes += link.wire_bytes
                    link.close()
                self.close()
                raise
            except _LINK_ERRORS:
                if link is not None:
                    self._closed_wire_bytes += link.wire_bytes
                    link.close()
        if self._gens[k] is None:
            gen = self._local_tasks[k]()
            next(gen)  # phase-1 replay, discarded
            for past in self._history[k]:
                self._drive(gen, past)
            self._gens[k] = gen
            self.degraded_shards.add(k)
        return self._drive(self._gens[k], message)

    # ------------------------------------------------------------------
    def start(self) -> list:
        """Attach every worker, ship shards, collect phase-1 results."""
        n = self._n
        for k in range(n):
            try:
                self._note(k, self._attach(k))
            except _LINK_ERRORS as exc:
                self._lose(k, exc)
        firsts = [None] * n
        for k in range(n):
            link = self._links[k]
            if link is not None:
                try:
                    firsts[k] = link.recv()["body"]
                    continue
                except _LINK_ERRORS as exc:
                    self._lose(k, exc)
            # Lost before or during phase 1: run the shard locally.
            gen = self._local_tasks[k]()
            firsts[k] = next(gen)
            self._gens[k] = gen
            self.degraded_shards.add(k)
        return firsts

    def exchange(self, messages: list) -> list:
        return self._round(messages)

    def stop(self, messages: list) -> list:
        outs = self._round(messages)
        self.close()
        return outs

    def close(self) -> None:
        for k, link in enumerate(self._links):
            if link is not None:
                self._closed_wire_bytes += link.wire_bytes
                link.close()
                self._links[k] = None

    def __enter__(self) -> "ClusterRounds":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run_metadata(self) -> dict:
        """Pool facts the driver surfaces in result metadata."""
        live = sum(link.wire_bytes for link in self._links if link is not None)
        return {
            "parallel_mode": "distributed",
            "hosts": [f"{h}:{p}" for h, p in self.endpoints],
            "cluster_wire_bytes": int(
                self._closed_wire_bytes + live + self.orphan_meter["bytes"]
            ),
            "cluster_wire_versions": [
                info["version"] if info is not None else None
                for info in self._link_info
            ],
            "cluster_compress": [
                info["compress"] if info is not None else None
                for info in self._link_info
            ],
            "degraded_shards": sorted(self.degraded_shards),
            "reconnected_shards": sorted(self.reconnected_shards),
        }

    # ------------------------------------------------------------------
    def _round(self, messages: list) -> list:
        # Pipelined sends: a sender thread encodes and ships the round
        # frames in shard order while this thread collects replies in
        # the same order — serialisation (and zlib) for shard k+1
        # overlaps both shard k's compute and its reply in flight.
        # The sender only ever touches links the collector has not yet
        # reached (it stays ahead by construction: the collector waits
        # on ``sent[k]`` before acting on shard ``k``).
        n = self._n
        send_errs: "list[Exception | None]" = [None] * n
        sent = [threading.Event() for _ in range(n)]

        def pump() -> None:
            for k in range(n):
                link = self._links[k]
                if link is not None:
                    try:
                        link.send(
                            {
                                "type": "round",
                                "kind": messages[k][0],
                                "ctl": messages[k][1],
                            }
                        )
                    except _LINK_ERRORS as exc:
                        send_errs[k] = exc
                sent[k].set()

        sender = threading.Thread(
            target=pump, name="cluster-round-sender", daemon=True
        )
        sender.start()
        outs = []
        try:
            for k in range(n):
                sent[k].wait()
                link = self._links[k]
                if send_errs[k] is not None:
                    self._lose(k, send_errs[k])
                    outs.append(self._fallback(k, messages[k]))
                elif link is not None:
                    try:
                        outs.append(link.recv()["body"])
                    except _LINK_ERRORS as exc:
                        self._lose(k, exc)
                        outs.append(self._fallback(k, messages[k]))
                elif self._gens[k] is not None:
                    outs.append(self._drive(self._gens[k], messages[k]))
                else:
                    outs.append(self._fallback(k, messages[k]))
                self._history[k].append(messages[k])
        finally:
            sender.join()
        return outs


class DistributedStreamer(ShardedStreamer):
    """Sharded streaming across worker processes on other hosts.

    Parameters (beyond :class:`ShardedStreamer`'s)
    ----------
    hosts:
        worker endpoints, as ``"host:port"`` strings or ``(host, port)``
        pairs; the worker count *is* ``len(hosts)`` (clamped to the
        stream's chunk count exactly like forked workers).
    ship:
        how each worker receives its shard: ``"chunks"`` (default)
        sends decoded CSR chunk frames for exactly its range;
        ``"text"`` broadcasts the raw source file in byte blocks and
        the worker ingests through the byte-source readers (requires a
        text-backed stream with uniform chunking, i.e. a recorded
        ``source_path`` and no ``pin_budget``).
    timeout:
        per-socket-operation straggler bound in seconds.
    on_loss:
        ``"degrade"`` (default) reconnect-or-run-locally on worker
        loss; ``"fail"`` raise immediately.
    reconnect:
        whether degrade mode attempts one re-dial before going local.
    max_frame:
        protocol frame bound for received replies.
    compress:
        offer zlib frame compression in the handshake (default
        ``True``).  Only takes effect when the worker negotiates
        protocol v2 and accepts; a v1 worker silently gets
        uncompressed frames.  Compression changes bytes on the wire,
        never decoded content — assignments are bit-identical.
    psk:
        pre-shared key bytes for the mutual HMAC handshake (``None``
        disables auth).  Workers started with a ``--psk-file`` refuse
        unauthenticated coordinators with a stable error frame, and
        vice versa a wrong key raises :class:`AuthError` here —
        auth failures never silently degrade to a local run.
    """

    name = "stream-cluster"

    def __init__(
        self,
        base=None,
        *,
        hosts,
        ship: str = "chunks",
        timeout: float = 30.0,
        on_loss: str = "degrade",
        reconnect: bool = True,
        max_frame: int = DEFAULT_MAX_FRAME,
        compress: bool = True,
        psk: "bytes | None" = None,
        boundary_max_iterations: "int | None" = (
            ShardedStreamer.DEFAULT_BOUNDARY_MAX_ITERATIONS
        ),
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        payload: str = "boundary",
        shard_by: str = "pins",
        tailored: bool = True,
    ) -> None:
        endpoints = [self._parse_host(h) for h in hosts]
        if not endpoints:
            raise ValueError("hosts must name at least one worker endpoint")
        if ship not in ("chunks", "text"):
            raise ValueError(f"ship must be 'chunks' or 'text', got {ship!r}")
        if on_loss not in ("degrade", "fail"):
            raise ValueError(
                f"on_loss must be 'degrade' or 'fail', got {on_loss!r}"
            )
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        super().__init__(
            base,
            workers=len(endpoints),
            boundary_max_iterations=boundary_max_iterations,
            chunk_size=chunk_size,
            payload=payload,
            shard_by=shard_by,
            tailored=tailored,
        )
        if not hasattr(self.base, "_shard_spec"):
            raise TypeError(
                f"{type(self.base).__name__} cannot be shipped to remote "
                "workers (no _shard_spec)"
            )
        self.hosts = endpoints
        self.ship = ship
        self.timeout = float(timeout)
        self.on_loss = on_loss
        self.reconnect = bool(reconnect)
        self.max_frame = int(max_frame)
        self.compress = bool(compress)
        self.psk = bytes(psk) if psk is not None else None

    @staticmethod
    def _parse_host(value) -> "tuple[str, int]":
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return str(value[0]), int(value[1])
        text = str(value)
        host, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"host must be 'host:port' or (host, port), got {value!r}"
            )
        return host, int(port)

    # ------------------------------------------------------------------
    def _make_pool(self, stream: ChunkStream, seed, ctx: dict):
        """Build the TCP round pool (overrides the forked default)."""
        nshards = len(ctx["ranges"])
        endpoints = self.hosts[:nshards]
        text_format = text_model = source_path = None
        if self.ship == "text":
            source_path = getattr(stream, "source_path", None)
            if source_path is None:
                raise ValueError(
                    "ship='text' needs a text-backed stream with a "
                    "recorded source_path; use ship='chunks' for "
                    f"{type(stream).__name__}"
                )
            if stream.pin_budget is not None:
                raise ValueError(
                    "ship='text' requires uniform chunking (no "
                    "pin_budget): workers must re-derive identical "
                    "chunk boundaries from the text alone"
                )
            kind = type(stream).__name__
            if kind == "HmetisChunkStream":
                text_format = "hmetis"
            elif kind == "MatrixMarketChunkStream":
                text_format = "mm"
                text_model = stream.model
            else:
                raise ValueError(
                    f"ship='text' does not support {kind} streams"
                )
        common = {
            "type": "hello",
            "version": PROTOCOL_VERSION,
            "max_version": PROTOCOL_VERSION,
            "compress": self.compress,
            "nshards": nshards,
            "num_parts": ctx["num_parts"],
            "num_vertices": int(stream.num_vertices),
            "counts": [int(ctx["counts"][0]), int(ctx["counts"][1])],
            "total_weight": float(ctx["total_weight"]),
            "seed_entropy": seed.entropy,
            "seed_spawn_key": [int(x) for x in seed.spawn_key],
            "base": self.base._shard_spec(),
            "profile": ctx["profile"],
            "C": ctx["C"],
            "edge_weights": stream.edge_weights,
            "edge_degrees": ctx["edge_degrees"],
            "boundary_ship": ctx["boundary_ship"],
            "ship": self.ship,
            "chunk_size": int(stream.chunk_size),
            "text_format": text_format,
            "text_model": text_model,
        }

        orphan_meter = {"bytes": 0}
        psk = self.psk

        def attach(k: int) -> _WorkerLink:
            host, port = endpoints[k]
            link = _WorkerLink(
                host, port, timeout=self.timeout, max_frame=self.max_frame
            )
            try:
                lo, hi = ctx["ranges"][k]
                v_lo, v_hi = ctx["vertex_bounds"][k]
                hello = dict(
                    common,
                    shard_index=k,
                    lo=int(lo),
                    hi=int(hi),
                    v_lo=int(v_lo),
                    v_hi=int(v_hi),
                    shard_weight=float(ctx["shard_weights"][k]),
                )
                nonce_c = None
                if psk is not None:
                    nonce_c = fresh_nonce()
                    hello["auth"] = True
                    hello["nonce"] = nonce_c
                # The hello (and the whole auth exchange) is framed at
                # v1 — the one dialect every peer speaks — so a v1
                # worker can read it and negotiate down.
                link.send(hello)
                ack = link.recv()
                if psk is not None:
                    if ack.get("type") != "auth_challenge":
                        raise AuthError(
                            f"worker {host}:{port} did not answer the "
                            f"auth challenge (got {ack.get('type')!r}); "
                            "is it running with the same --psk-file?",
                            code="auth_required",
                        )
                    nonce_w = ack["nonce"]
                    want = hmac_proof(psk, "worker", nonce_c, nonce_w)
                    if not hmac.compare_digest(ack["proof"], want):
                        link.send(
                            {
                                "type": "error",
                                "code": "auth_failed",
                                "error": "bad worker proof",
                            }
                        )
                        raise AuthError(
                            f"worker {host}:{port} presented a bad PSK "
                            "proof",
                        )
                    link.send(
                        {
                            "type": "auth_response",
                            "proof": hmac_proof(
                                psk, "coord", nonce_c, nonce_w
                            ),
                        }
                    )
                    ack = link.recv()
                if ack.get("type") != "hello_ack":
                    raise ProtocolError(
                        f"expected hello_ack, got {ack.get('type')!r}"
                    )
                negotiated = ack.get("version")
                if negotiated not in SUPPORTED_VERSIONS:
                    raise VersionMismatchError(
                        f"worker {host}:{port} negotiated protocol "
                        f"v{negotiated}, coordinator speaks "
                        f"v{'/v'.join(str(v) for v in SUPPORTED_VERSIONS)}"
                    )
                link.version = int(negotiated)
                link.compress = bool(
                    self.compress
                    and link.version >= 2
                    and ack.get("compress", False)
                )
                if self.ship == "chunks":
                    for chunk in stream.iter_range(lo, hi):
                        link.send(
                            {
                                "type": "chunk",
                                "start": int(chunk.start),
                                "stop": int(chunk.stop),
                                "vertex_ptr": chunk.vertex_ptr,
                                "vertex_edges": chunk.vertex_edges,
                                "vertex_weights": chunk.vertex_weights,
                            }
                        )
                else:
                    with open(source_path, "rb") as fh:
                        while True:
                            block = fh.read(1 << 20)
                            if not block:
                                break
                            link.send({"type": "blocks", "data": block})
                link.send({"type": "ingest_done"})
            except BaseException:
                # The attempt still cost wire bytes; without this the
                # meter undercounts every failed handshake/ship.
                orphan_meter["bytes"] += link.wire_bytes
                link.close()
                raise
            return link

        return ClusterRounds(
            endpoints=endpoints,
            attach=attach,
            local_tasks=self._local_tasks(stream, ctx),
            on_loss=self.on_loss,
            reconnect=self.reconnect,
            orphan_meter=orphan_meter,
        )
